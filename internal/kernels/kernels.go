// Package kernels contains Photon's vectorized execution kernels (§4.2):
// tight loops over one or more vectors of data, specialized on two
// batch-level properties — whether the batch contains NULLs and whether all
// rows are active (Listing 2). In the paper these are C++ template
// parameters whose branches compile away; here each (nulls × activity)
// combination is a separate tight Go loop selected by one dispatch per
// batch, which is the same costs-amortized-once structure.
//
// Conventions:
//   - sel == nil means all rows [0, n) are active (dense);
//   - nulls slices hold one byte per row, 1 = NULL; hasNulls gates all NULL
//     branching;
//   - "VV" kernels combine two vectors, "VS" a vector and a scalar;
//   - selection kernels append surviving row indices to an out position
//     list and return it — filters only ever shrink position lists;
//   - kernels never write to inactive rows (their data may still be live).
package kernels

// Numeric is the set of fixed-width arithmetic element types.
type Numeric interface {
	~int32 | ~int64 | ~float64
}

// Ordered adds orderable element types used by comparison kernels.
type Ordered interface {
	~int32 | ~int64 | ~float64
}

// orNulls merges two null byte vectors over the active rows into out.
// Returns whether any active output row is NULL.
func orNulls(nulls1, nulls2, out []byte, sel []int32, n int) bool {
	any := byte(0)
	if sel == nil {
		a, b, o := nulls1[:n], nulls2[:n], out[:n]
		for i := range o {
			o[i] = a[i] | b[i]
			any |= o[i]
		}
	} else {
		for _, i := range sel {
			out[i] = nulls1[i] | nulls2[i]
			any |= out[i]
		}
	}
	return any != 0
}

// copyNulls copies a null byte vector over the active rows into out.
func copyNulls(nulls, out []byte, sel []int32, n int) bool {
	any := byte(0)
	if sel == nil {
		a, o := nulls[:n], out[:n]
		for i := range o {
			o[i] = a[i]
			any |= o[i]
		}
	} else {
		for _, i := range sel {
			out[i] = nulls[i]
			any |= out[i]
		}
	}
	return any != 0
}

// CopyNulls is the exported form used by expression wrappers.
func CopyNulls(nulls, out []byte, sel []int32, n int) bool {
	return copyNulls(nulls, out, sel, n)
}

// OrNulls is the exported form used by expression wrappers.
func OrNulls(nulls1, nulls2, out []byte, sel []int32, n int) bool {
	return orNulls(nulls1, nulls2, out, sel, n)
}
