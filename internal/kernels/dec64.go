package kernels

import (
	"math"
	"math/bits"

	"photon/internal/types"
)

// Narrow-decimal (int64) kernel family. TPC-H decimals (prices, discounts,
// quantities) almost always fit in 64 bits even when typed DECIMAL(38,s), so
// the expr layer runs decimal arithmetic on native int64 lanes whenever the
// values allow — the same batch-level adaptivity as the ASCII and no-NULLs
// metadata (§4.6) — with every kernel overflow-checked so execution can
// escape back to the 128-bit family with identical results.
//
// Conventions: a value is "narrow" when its high limb is the sign extension
// of its low limb (types.Fits64). Lane vectors hold the low limb as int64;
// NULL slots are zeroed at extraction (Dec64NarrowV) so garbage can never
// trigger a spurious overflow escape. Arithmetic kernels return ok=false the
// moment any computed row overflows int64; the caller then discards the
// narrow attempt and re-runs the 128-bit path.

// Dec64CheckV reports whether every active non-NULL value is narrow. The
// NULL-free path is a branch-free accumulation over Hi ^ sext(Lo); the
// nullable path exits early on the first wide value.
func Dec64CheckV(a []types.Decimal128, nulls []byte, hasNulls bool, sel []int32, n int) bool {
	if !hasNulls {
		var acc uint64
		if sel == nil {
			a := a[:n]
			for i := range a {
				acc |= uint64(a[i].Hi ^ (int64(a[i].Lo) >> 63))
			}
		} else {
			for _, i := range sel {
				acc |= uint64(a[i].Hi ^ (int64(a[i].Lo) >> 63))
			}
		}
		return acc == 0
	}
	if sel == nil {
		for i := 0; i < n; i++ {
			if nulls[i] == 0 && a[i].Hi != int64(a[i].Lo)>>63 {
				return false
			}
		}
		return true
	}
	for _, i := range sel {
		if nulls[i] == 0 && a[i].Hi != int64(a[i].Lo)>>63 {
			return false
		}
	}
	return true
}

// Dec64NarrowV extracts the int64 lanes of a narrow decimal vector. NULL
// rows write 0 so downstream arithmetic on masked slots cannot overflow.
func Dec64NarrowV(a []types.Decimal128, out []int64, nulls []byte, hasNulls bool, sel []int32, n int) {
	if !hasNulls {
		if sel == nil {
			a, o := a[:n], out[:n]
			for i := range o {
				o[i] = int64(a[i].Lo)
			}
			return
		}
		for _, i := range sel {
			out[i] = int64(a[i].Lo)
		}
		return
	}
	if sel == nil {
		for i := 0; i < n; i++ {
			if nulls[i] != 0 {
				out[i] = 0
			} else {
				out[i] = int64(a[i].Lo)
			}
		}
		return
	}
	for _, i := range sel {
		if nulls[i] != 0 {
			out[i] = 0
		} else {
			out[i] = int64(a[i].Lo)
		}
	}
}

// Dec64WidenV sign-extends int64 lanes back to canonical Decimal128.
func Dec64WidenV(a []int64, out []types.Decimal128, sel []int32, n int) {
	if sel == nil {
		a, o := a[:n], out[:n]
		for i := range o {
			o[i] = types.Decimal128{Hi: a[i] >> 63, Lo: uint64(a[i])}
		}
		return
	}
	for _, i := range sel {
		out[i] = types.Decimal128{Hi: a[i] >> 63, Lo: uint64(a[i])}
	}
}

// Dec64AddVV computes out[i] = a[i] + b[i], reporting ok=false if any
// active row overflowed int64. Overflow sign-bits accumulate branch-free.
func Dec64AddVV(a, b, out []int64, sel []int32, n int) bool {
	var ovf uint64
	if sel == nil {
		a, b, o := a[:n], b[:n], out[:n]
		for i := range o {
			s := a[i] + b[i]
			ovf |= uint64((a[i] ^ s) & (b[i] ^ s))
			o[i] = s
		}
	} else {
		for _, i := range sel {
			s := a[i] + b[i]
			ovf |= uint64((a[i] ^ s) & (b[i] ^ s))
			out[i] = s
		}
	}
	return int64(ovf) >= 0
}

// Dec64SubVV computes out[i] = a[i] - b[i] with overflow detection.
func Dec64SubVV(a, b, out []int64, sel []int32, n int) bool {
	var ovf uint64
	if sel == nil {
		a, b, o := a[:n], b[:n], out[:n]
		for i := range o {
			d := a[i] - b[i]
			ovf |= uint64((a[i] ^ b[i]) & (a[i] ^ d))
			o[i] = d
		}
	} else {
		for _, i := range sel {
			d := a[i] - b[i]
			ovf |= uint64((a[i] ^ b[i]) & (a[i] ^ d))
			out[i] = d
		}
	}
	return int64(ovf) >= 0
}

// Dec64AddVS computes out[i] = a[i] + s with overflow detection.
func Dec64AddVS(a []int64, s int64, out []int64, sel []int32, n int) bool {
	var ovf uint64
	if sel == nil {
		a, o := a[:n], out[:n]
		for i := range o {
			r := a[i] + s
			ovf |= uint64((a[i] ^ r) & (s ^ r))
			o[i] = r
		}
	} else {
		for _, i := range sel {
			r := a[i] + s
			ovf |= uint64((a[i] ^ r) & (s ^ r))
			out[i] = r
		}
	}
	return int64(ovf) >= 0
}

// Dec64SubSV computes out[i] = s - a[i] with overflow detection.
func Dec64SubSV(s int64, a, out []int64, sel []int32, n int) bool {
	var ovf uint64
	if sel == nil {
		a, o := a[:n], out[:n]
		for i := range o {
			d := s - a[i]
			ovf |= uint64((s ^ a[i]) & (s ^ d))
			o[i] = d
		}
	} else {
		for _, i := range sel {
			d := s - a[i]
			ovf |= uint64((s ^ a[i]) & (s ^ d))
			out[i] = d
		}
	}
	return int64(ovf) >= 0
}

// mulOvf64 returns x*y truncated to 64 bits plus an overflow tag that is 0
// iff the full signed product fits in int64: one unsigned Mul64 with a
// high-word sign correction, compared against the sign extension of the low
// word.
func mulOvf64(x, y int64) (lo int64, tag uint64) {
	uhi, ulo := bits.Mul64(uint64(x), uint64(y))
	shi := int64(uhi) - ((x >> 63) & y) - ((y >> 63) & x)
	return int64(ulo), uint64(shi ^ (int64(ulo) >> 63))
}

// Dec64MulVV computes out[i] = a[i] * b[i] with overflow detection.
func Dec64MulVV(a, b, out []int64, sel []int32, n int) bool {
	var ovf uint64
	if sel == nil {
		a, b, o := a[:n], b[:n], out[:n]
		for i := range o {
			r, tag := mulOvf64(a[i], b[i])
			ovf |= tag
			o[i] = r
		}
	} else {
		for _, i := range sel {
			r, tag := mulOvf64(a[i], b[i])
			ovf |= tag
			out[i] = r
		}
	}
	return ovf == 0
}

// Dec64MulVS computes out[i] = a[i] * s with overflow detection.
func Dec64MulVS(a []int64, s int64, out []int64, sel []int32, n int) bool {
	var ovf uint64
	if sel == nil {
		a, o := a[:n], out[:n]
		for i := range o {
			r, tag := mulOvf64(a[i], s)
			ovf |= tag
			o[i] = r
		}
	} else {
		for _, i := range sel {
			r, tag := mulOvf64(a[i], s)
			ovf |= tag
			out[i] = r
		}
	}
	return ovf == 0
}

// Dec-input variants: the same checked loops, but reading the int64 lane
// straight from a canonical narrow Decimal128 vector's low limbs. The expr
// layer uses these for NULL-free qualified column leaves (every high limb is
// the sign extension of its low limb), skipping the Dec64NarrowV extraction
// pass entirely.

// Dec64AddDecS computes out[i] = a[i].lane + s with overflow detection.
func Dec64AddDecS(a []types.Decimal128, s int64, out []int64, sel []int32, n int) bool {
	var ovf uint64
	if sel == nil {
		a, o := a[:n], out[:n]
		for i := range o {
			x := int64(a[i].Lo)
			r := x + s
			ovf |= uint64((x ^ r) & (s ^ r))
			o[i] = r
		}
	} else {
		for _, i := range sel {
			x := int64(a[i].Lo)
			r := x + s
			ovf |= uint64((x ^ r) & (s ^ r))
			out[i] = r
		}
	}
	return int64(ovf) >= 0
}

// Dec64SubSDec computes out[i] = s - a[i].lane with overflow detection.
func Dec64SubSDec(s int64, a []types.Decimal128, out []int64, sel []int32, n int) bool {
	var ovf uint64
	if sel == nil {
		a, o := a[:n], out[:n]
		for i := range o {
			x := int64(a[i].Lo)
			d := s - x
			ovf |= uint64((s ^ x) & (s ^ d))
			o[i] = d
		}
	} else {
		for _, i := range sel {
			x := int64(a[i].Lo)
			d := s - x
			ovf |= uint64((s ^ x) & (s ^ d))
			out[i] = d
		}
	}
	return int64(ovf) >= 0
}

// Dec64MulDecV computes out[i] = a[i].lane * b[i] with overflow detection.
func Dec64MulDecV(a []types.Decimal128, b, out []int64, sel []int32, n int) bool {
	var ovf uint64
	if sel == nil {
		a, b, o := a[:n], b[:n], out[:n]
		for i := range o {
			r, tag := mulOvf64(int64(a[i].Lo), b[i])
			ovf |= tag
			o[i] = r
		}
	} else {
		for _, i := range sel {
			r, tag := mulOvf64(int64(a[i].Lo), b[i])
			ovf |= tag
			out[i] = r
		}
	}
	return ovf == 0
}

// Dec64MulDecS computes out[i] = a[i].lane * s with overflow detection.
func Dec64MulDecS(a []types.Decimal128, s int64, out []int64, sel []int32, n int) bool {
	var ovf uint64
	if sel == nil {
		a, o := a[:n], out[:n]
		for i := range o {
			r, tag := mulOvf64(int64(a[i].Lo), s)
			ovf |= tag
			o[i] = r
		}
	} else {
		for _, i := range sel {
			r, tag := mulOvf64(int64(a[i].Lo), s)
			ovf |= tag
			out[i] = r
		}
	}
	return ovf == 0
}

// Dec64RescaleV rescales each active lane from one scale to another,
// multiplying by 10^(to-from) (overflow-checked) when scaling up and
// dividing with round-half-away-from-zero when scaling down — bit-identical
// to Decimal128.Rescale for narrow values. Returns ok=false on overflow or
// when the shift exceeds the int64 power-of-ten range.
func Dec64RescaleV(a, out []int64, from, to int, sel []int32, n int) bool {
	switch {
	case to == from:
		if sel == nil {
			copy(out[:n], a[:n])
		} else {
			for _, i := range sel {
				out[i] = a[i]
			}
		}
		return true
	case to > from:
		shift := to - from
		if shift > 18 {
			return false
		}
		return Dec64MulVS(a, types.Pow10(shift).ToInt64(), out, sel, n)
	default:
		shift := from - to
		if shift > 18 {
			return false
		}
		div := types.Pow10(shift).ToInt64()
		body := func(i int32) {
			x := a[i]
			q, r := x/div, x%div
			if r < 0 {
				r = -r
			}
			if r*2 >= div { // round half away from zero
				if x >= 0 {
					q++
				} else {
					q--
				}
			}
			out[i] = q
		}
		if sel == nil {
			for i := 0; i < n; i++ {
				body(int32(i))
			}
		} else {
			for _, i := range sel {
				body(i)
			}
		}
		return true
	}
}

// Dec64DivVV computes out[i] = (a[i] * 10^shift) / b[i] truncated toward
// zero (matching DecDivVV), marking zero-divisor rows NULL. Returns ok=false
// when any scaled numerator or the MinInt64/-1 quotient overflows int64.
func Dec64DivVV(a, b []int64, shift int, out []int64, outNulls []byte, sel []int32, n int) (ok, produced bool) {
	if shift < 0 || shift > 18 {
		return false, false
	}
	m := types.Pow10(shift).ToInt64()
	body := func(i int32) bool {
		if outNulls[i] != 0 {
			return true
		}
		if b[i] == 0 {
			outNulls[i] = 1
			produced = true
			return true
		}
		num, tag := mulOvf64(a[i], m)
		if tag != 0 || (num == math.MinInt64 && b[i] == -1) {
			return false
		}
		out[i] = num / b[i]
		return true
	}
	if sel == nil {
		for i := 0; i < n; i++ {
			if !body(int32(i)) {
				return false, produced
			}
		}
		return true, produced
	}
	for _, i := range sel {
		if !body(i) {
			return false, produced
		}
	}
	return true, produced
}

// Dec64RescaleDecV rescales a narrow canonical decimal vector in place of
// DecRescaleV — int64 lane arithmetic on the low limbs, sign-extended back —
// without materializing lane vectors (the CAST dispatch shape). NULL rows
// are skipped so masked garbage cannot force a fallback. Returns ok=false on
// overflow or an out-of-range shift; the caller then runs DecRescaleV.
func Dec64RescaleDecV(a, out []types.Decimal128, from, to int, nulls []byte, hasNulls bool, sel []int32, n int) bool {
	shift := from - to
	if shift < 0 {
		shift = -shift
	}
	if shift > 18 {
		return false
	}
	if to == from {
		if sel == nil {
			copy(out[:n], a[:n])
		} else {
			for _, i := range sel {
				out[i] = a[i]
			}
		}
		return true
	}
	var body func(i int32) bool
	if to > from {
		m := types.Pow10(to - from).ToInt64()
		body = func(i int32) bool {
			if hasNulls && nulls[i] != 0 {
				return true
			}
			r, tag := mulOvf64(int64(a[i].Lo), m)
			if tag != 0 {
				return false
			}
			out[i] = types.Decimal128{Hi: r >> 63, Lo: uint64(r)}
			return true
		}
	} else {
		div := types.Pow10(from - to).ToInt64()
		body = func(i int32) bool {
			if hasNulls && nulls[i] != 0 {
				return true
			}
			x := int64(a[i].Lo)
			q, r := x/div, x%div
			if r < 0 {
				r = -r
			}
			if r*2 >= div { // round half away from zero
				if x >= 0 {
					q++
				} else {
					q--
				}
			}
			out[i] = types.Decimal128{Hi: q >> 63, Lo: uint64(q)}
			return true
		}
	}
	if sel == nil {
		for i := 0; i < n; i++ {
			if !body(int32(i)) {
				return false
			}
		}
		return true
	}
	for _, i := range sel {
		if !body(i) {
			return false
		}
	}
	return true
}

// SelCmpDec64VS appends rows where the narrow value int64(a[i].Lo) <op> s.
// The vector must carry Dec64All metadata; s must itself be narrow. Unlike
// arithmetic, comparison needs no escape: NULL rows never match, and all
// active non-NULL rows are narrow by contract.
func SelCmpDec64VS(op CmpOp, a []types.Decimal128, s int64, nulls []byte, hasNulls bool, sel []int32, n int, out []int32) []int32 {
	appendIf := func(pred func(int64) bool) {
		if !hasNulls {
			if sel == nil {
				for i := 0; i < n; i++ {
					if pred(int64(a[i].Lo)) {
						out = append(out, int32(i))
					}
				}
				return
			}
			for _, i := range sel {
				if pred(int64(a[i].Lo)) {
					out = append(out, i)
				}
			}
			return
		}
		if sel == nil {
			for i := 0; i < n; i++ {
				if nulls[i] == 0 && pred(int64(a[i].Lo)) {
					out = append(out, int32(i))
				}
			}
			return
		}
		for _, i := range sel {
			if nulls[i] == 0 && pred(int64(a[i].Lo)) {
				out = append(out, i)
			}
		}
	}
	switch op {
	case CmpEq:
		appendIf(func(v int64) bool { return v == s })
	case CmpNe:
		appendIf(func(v int64) bool { return v != s })
	case CmpLt:
		appendIf(func(v int64) bool { return v < s })
	case CmpLe:
		appendIf(func(v int64) bool { return v <= s })
	case CmpGt:
		appendIf(func(v int64) bool { return v > s })
	case CmpGe:
		appendIf(func(v int64) bool { return v >= s })
	}
	return out
}

// SelCmpDec64VV appends rows where int64(a[i].Lo) <op> int64(b[i].Lo). Both
// vectors must carry Dec64All metadata and share a scale.
func SelCmpDec64VV(op CmpOp, a, b []types.Decimal128, nulls1, nulls2 []byte, hasNulls bool, sel []int32, n int, out []int32) []int32 {
	appendIf := func(pred func(x, y int64) bool) {
		if !hasNulls {
			if sel == nil {
				for i := 0; i < n; i++ {
					if pred(int64(a[i].Lo), int64(b[i].Lo)) {
						out = append(out, int32(i))
					}
				}
				return
			}
			for _, i := range sel {
				if pred(int64(a[i].Lo), int64(b[i].Lo)) {
					out = append(out, i)
				}
			}
			return
		}
		if sel == nil {
			for i := 0; i < n; i++ {
				if nulls1[i]|nulls2[i] == 0 && pred(int64(a[i].Lo), int64(b[i].Lo)) {
					out = append(out, int32(i))
				}
			}
			return
		}
		for _, i := range sel {
			if nulls1[i]|nulls2[i] == 0 && pred(int64(a[i].Lo), int64(b[i].Lo)) {
				out = append(out, i)
			}
		}
	}
	switch op {
	case CmpEq:
		appendIf(func(x, y int64) bool { return x == y })
	case CmpNe:
		appendIf(func(x, y int64) bool { return x != y })
	case CmpLt:
		appendIf(func(x, y int64) bool { return x < y })
	case CmpLe:
		appendIf(func(x, y int64) bool { return x <= y })
	case CmpGt:
		appendIf(func(x, y int64) bool { return x > y })
	case CmpGe:
		appendIf(func(x, y int64) bool { return x >= y })
	}
	return out
}

// dec64HashNegK is the two's-complement negation of the decimal hash-lane
// multiplier 0x9e3779b97f4a7c15.
const dec64HashNegK uint64 = 0x61c8864680b583eb

// Dec64HashLanes fills the decimal key-hash input lanes for a narrow vector
// without touching the high limbs: for narrow values Hi is sext(Lo), so the
// wide lane Lo ^ uint64(Hi)*K collapses to Lo ^ (signMask & -K) — byte
// identical, branch-free, and half the memory traffic.
func Dec64HashLanes(a []types.Decimal128, out []uint64, n int) {
	a, o := a[:n], out[:n]
	for i := range o {
		lo := a[i].Lo
		o[i] = lo ^ (uint64(int64(lo)>>63) & dec64HashNegK)
	}
}
