package kernels

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"photon/internal/mem"
)

func TestAddVVDenseAndSel(t *testing.T) {
	a := []int64{1, 2, 3, 4}
	b := []int64{10, 20, 30, 40}
	out := make([]int64, 4)
	AddVV(a, b, out, nil, 4)
	for i, want := range []int64{11, 22, 33, 44} {
		if out[i] != want {
			t.Errorf("dense out[%d]=%d", i, out[i])
		}
	}
	out2 := make([]int64, 4)
	AddVV(a, b, out2, []int32{1, 3}, 4)
	if out2[1] != 22 || out2[3] != 44 {
		t.Errorf("sel results wrong: %v", out2)
	}
	if out2[0] != 0 || out2[2] != 0 {
		t.Errorf("inactive rows were written: %v", out2)
	}
}

func TestDivVVZeroProducesNull(t *testing.T) {
	a := []float64{10, 20, 30}
	b := []float64{2, 0, 5}
	out := make([]float64, 3)
	nulls := make([]byte, 3)
	produced := DivVV(a, b, out, nulls, nil, 3)
	if !produced {
		t.Error("expected NULL production")
	}
	if nulls[1] != 1 || nulls[0] != 0 || nulls[2] != 0 {
		t.Errorf("nulls = %v", nulls)
	}
	if out[0] != 5 || out[2] != 6 {
		t.Errorf("out = %v", out)
	}
}

func TestModVV(t *testing.T) {
	a := []int64{10, 7, 5}
	b := []int64{3, 0, 5}
	out := make([]int64, 3)
	nulls := make([]byte, 3)
	if !ModVV(a, b, out, nulls, nil, 3) {
		t.Error("expected NULL on mod by zero")
	}
	if out[0] != 1 || nulls[1] != 1 || out[2] != 0 {
		t.Errorf("out=%v nulls=%v", out, nulls)
	}
}

func TestSelCmpVSAllOps(t *testing.T) {
	a := []int32{5, 10, 15, 20}
	cases := []struct {
		op   CmpOp
		want []int32
	}{
		{CmpEq, []int32{1}},
		{CmpNe, []int32{0, 2, 3}},
		{CmpLt, []int32{0}},
		{CmpLe, []int32{0, 1}},
		{CmpGt, []int32{2, 3}},
		{CmpGe, []int32{1, 2, 3}},
	}
	for _, c := range cases {
		got := SelCmpVS(c.op, a, 10, nil, false, nil, 4, nil)
		if !eqSel(got, c.want) {
			t.Errorf("op %d: got %v want %v", c.op, got, c.want)
		}
	}
	// With nulls: row 1 null.
	nulls := []byte{0, 1, 0, 0}
	got := SelCmpVS(CmpGe, a, 10, nulls, true, nil, 4, nil)
	if !eqSel(got, []int32{2, 3}) {
		t.Errorf("null filtering: got %v", got)
	}
	// Under selection.
	got = SelCmpVS(CmpGt, a, 5, nil, false, []int32{0, 2}, 4, nil)
	if !eqSel(got, []int32{2}) {
		t.Errorf("sel: got %v", got)
	}
}

func TestSelBetweenMatchesUnfused(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	vals := make([]int32, 500)
	nulls := make([]byte, 500)
	for i := range vals {
		vals[i] = int32(rng.Intn(100))
		if rng.Intn(10) == 0 {
			nulls[i] = 1
		}
	}
	fused := SelBetweenVS(vals, 20, 60, nulls, true, nil, 500, nil)
	step1 := SelCmpVS(CmpGe, vals, 20, nulls, true, nil, 500, nil)
	unfused := SelCmpVS(CmpLe, vals, 60, nulls, true, step1, 500, nil)
	if !eqSel(fused, unfused) {
		t.Errorf("fused %d rows, unfused %d rows", len(fused), len(unfused))
	}
}

func TestSelCmpBytes(t *testing.T) {
	vals := [][]byte{[]byte("apple"), []byte("banana"), []byte("cherry")}
	got := SelCmpBytesVS(CmpGt, vals, []byte("avocado"), nil, false, nil, 3, nil)
	if !eqSel(got, []int32{1, 2}) {
		t.Errorf("bytes VS: %v", got)
	}
	b := [][]byte{[]byte("apple"), []byte("zzz"), []byte("cherry")}
	got = SelCmpBytesVV(CmpEq, vals, b, nil, nil, false, nil, 3, nil)
	if !eqSel(got, []int32{0, 2}) {
		t.Errorf("bytes VV: %v", got)
	}
}

func TestUnionDiffDenseSel(t *testing.T) {
	a := []int32{1, 3, 5}
	b := []int32{2, 3, 6}
	if got := UnionSel(a, b, nil); !eqSel(got, []int32{1, 2, 3, 5, 6}) {
		t.Errorf("union: %v", got)
	}
	parent := []int32{1, 2, 3, 5, 6}
	if got := DiffSel(parent, a, nil); !eqSel(got, []int32{2, 6}) {
		t.Errorf("diff: %v", got)
	}
	if got := DenseSel(3, nil); !eqSel(got, []int32{0, 1, 2}) {
		t.Errorf("dense: %v", got)
	}
}

func TestSelIsNullNotNull(t *testing.T) {
	nulls := []byte{0, 1, 0, 1}
	if got := SelIsNull(nulls, true, nil, 4, nil); !eqSel(got, []int32{1, 3}) {
		t.Errorf("isnull: %v", got)
	}
	if got := SelIsNotNull(nulls, true, nil, 4, nil); !eqSel(got, []int32{0, 2}) {
		t.Errorf("isnotnull: %v", got)
	}
	if got := SelIsNull(nulls, false, nil, 4, nil); len(got) != 0 {
		t.Errorf("isnull no-null fast path: %v", got)
	}
	if got := SelIsNotNull(nulls, false, []int32{1, 2}, 4, nil); !eqSel(got, []int32{1, 2}) {
		t.Errorf("isnotnull passthrough: %v", got)
	}
}

func TestIsASCIISWAR(t *testing.T) {
	cases := []struct {
		s    string
		want bool
	}{
		{"", true},
		{"hello", true},
		{"hello world this is a longer ascii string!", true},
		{"héllo", false},
		{"exactly8", true},
		{"exactly8bytes€", false},
		{strings.Repeat("x", 1000), true},
		{strings.Repeat("x", 999) + "é", false},
	}
	for _, c := range cases {
		if got := IsASCII([]byte(c.s)); got != c.want {
			t.Errorf("IsASCII(%q) = %v", c.s, got)
		}
	}
}

func TestUpperLowerSWARMatchesReference(t *testing.T) {
	f := func(s string) bool {
		// Constrain to ASCII for the SWAR path.
		b := make([]byte, len(s))
		for i := 0; i < len(s); i++ {
			b[i] = s[i] & 0x7f
		}
		up := make([]byte, len(b))
		UpperASCIIInto(up, b)
		lo := make([]byte, len(b))
		LowerASCIIInto(lo, b)
		return string(up) == strings.ToUpper(string(b)) && string(lo) == strings.ToLower(string(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestUpperASCIIEdgeBytes(t *testing.T) {
	// Bytes adjacent to the letter ranges must not flip.
	in := []byte("`az{@AZ[0129 \t~")
	out := make([]byte, len(in))
	UpperASCIIInto(out, in)
	if string(out) != "`AZ{@AZ[0129 \t~" {
		t.Errorf("edge bytes: %q", out)
	}
	LowerASCIIInto(out, in)
	if string(out) != "`az{@az[0129 \t~" {
		t.Errorf("edge bytes lower: %q", out)
	}
}

func TestUpperKernelsPreserveInactive(t *testing.T) {
	arena := mem.NewArena(0)
	vals := [][]byte{[]byte("aa"), []byte("bb"), []byte("cc")}
	out := make([][]byte, 3)
	out[1] = []byte("keep") // inactive row holds live data
	UpperASCIIV(vals, nil, false, []int32{0, 2}, 3, arena, out)
	if string(out[0]) != "AA" || string(out[2]) != "CC" {
		t.Errorf("active rows wrong: %q %q", out[0], out[2])
	}
	if string(out[1]) != "keep" {
		t.Errorf("inactive row overwritten: %q", out[1])
	}
}

func TestLikePatterns(t *testing.T) {
	cases := []struct {
		pattern string
		s       string
		want    bool
	}{
		{"hello", "hello", true},
		{"hello", "hell", false},
		{"he%", "hello", true},
		{"he%", "ahello", false},
		{"%llo", "hello", true},
		{"%ell%", "hello", true},
		{"%xyz%", "hello", false},
		{"h_llo", "hello", true},
		{"h_llo", "hallo", true},
		{"h_llo", "hllo", false},
		{"%o_l%", "world", true},
		{"a%b%c", "aXbYc", true},
		{"a%b%c", "acb", false},
		{"%", "anything", true},
		{"%", "", true},
		{"_", "", false},
		{"_", "x", true},
		{"special%request", "special request", true}, // % matches the space
		{"special%requests", "specialrequest", false},
		{"ab%ab", "ab", false}, // segments may not overlap
	}
	for _, c := range cases {
		p := CompileLike(c.pattern)
		if got := p.Match([]byte(c.s)); got != c.want {
			t.Errorf("LIKE %q on %q = %v, want %v", c.pattern, c.s, got, c.want)
		}
	}
}

func TestSubstr(t *testing.T) {
	s := []byte("hello world")
	if got := substrOne(s, 1, 5, true); string(got) != "hello" {
		t.Errorf("substr(1,5) = %q", got)
	}
	if got := substrOne(s, 7, 100, true); string(got) != "world" {
		t.Errorf("substr(7,100) = %q", got)
	}
	if got := substrOne(s, -5, 5, true); string(got) != "world" {
		t.Errorf("substr(-5,5) = %q", got)
	}
	if got := substrOne(s, 100, 5, true); len(got) != 0 {
		t.Errorf("substr past end = %q", got)
	}
	u := []byte("héllo")
	if got := substrOne(u, 2, 3, false); string(got) != "éll" {
		t.Errorf("utf8 substr = %q", got)
	}
}

func TestHashDeterminismAndSpread(t *testing.T) {
	vals := make([]uint64, 100)
	for i := range vals {
		vals[i] = uint64(i)
	}
	out1 := make([]uint64, 100)
	out2 := make([]uint64, 100)
	HashU64(vals, nil, false, nil, 100, out1)
	HashU64(vals, nil, false, nil, 100, out2)
	seen := make(map[uint64]bool)
	for i := range out1 {
		if out1[i] != out2[i] {
			t.Fatal("hash not deterministic")
		}
		if seen[out1[i]] {
			t.Fatalf("hash collision among first 100 ints at %d", i)
		}
		seen[out1[i]] = true
	}
	// Null rows hash to the null seed consistently.
	nulls := make([]byte, 2)
	nulls[0] = 1
	out := make([]uint64, 2)
	HashU64([]uint64{123, 123}, nulls, true, nil, 2, out)
	if out[0] == out[1] {
		t.Error("null should hash differently from value")
	}
}

func TestRehashOrderMatters(t *testing.T) {
	out1 := make([]uint64, 1)
	out2 := make([]uint64, 1)
	HashU64([]uint64{1}, nil, false, nil, 1, out1)
	RehashU64([]uint64{2}, nil, false, nil, 1, out1)
	HashU64([]uint64{2}, nil, false, nil, 1, out2)
	RehashU64([]uint64{1}, nil, false, nil, 1, out2)
	if out1[0] == out2[0] {
		t.Error("(1,2) and (2,1) should hash differently")
	}
}

func TestHashBytes(t *testing.T) {
	a := HashBytesOne([]byte("hello"))
	b := HashBytesOne([]byte("hellp"))
	c := HashBytesOne([]byte("hello"))
	if a == b {
		t.Error("distinct strings collided")
	}
	if a != c {
		t.Error("same string hashed differently")
	}
	if HashBytesOne(nil) != HashBytesOne([]byte{}) {
		t.Error("nil vs empty mismatch")
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[uint64]uint64{0: 1, 1: 1, 2: 2, 3: 4, 5: 8, 1024: 1024, 1025: 2048}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func eqSel(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
