package kernels

import (
	"encoding/binary"
	"strings"
	"unicode"
	"unicode/utf8"

	"photon/internal/mem"
)

// String kernels. The ASCII check and ASCII upper-casing use SWAR (SIMD
// within a register, 8 bytes per step) as this build's stand-in for the
// paper's hand-written SIMD intrinsics (§6.1, Fig. 6): ASCII strings are
// uppercased with byte-wise arithmetic while general UTF-8 goes through the
// Unicode-table path, exactly the specialization Photon adapts between at
// runtime based on per-vector ASCII metadata (§4.6).

const hiBits = 0x8080808080808080

// IsASCII reports whether b contains only bytes < 0x80, scanning 8 bytes at
// a time.
func IsASCII(b []byte) bool {
	for len(b) >= 8 {
		if binary.LittleEndian.Uint64(b)&hiBits != 0 {
			return false
		}
		b = b[8:]
	}
	for _, c := range b {
		if c >= 0x80 {
			return false
		}
	}
	return true
}

// CheckASCII scans the active strings and reports whether all are ASCII.
// Operators cache the result as vector-level metadata.
func CheckASCII(vals [][]byte, nulls []byte, hasNulls bool, sel []int32, n int) bool {
	body := func(i int32) bool {
		if hasNulls && nulls[i] != 0 {
			return true
		}
		return IsASCII(vals[i])
	}
	if sel == nil {
		for i := 0; i < n; i++ {
			if !body(int32(i)) {
				return false
			}
		}
		return true
	}
	for _, i := range sel {
		if !body(i) {
			return false
		}
	}
	return true
}

// upperASCII8 uppercases 8 ASCII bytes at once: for each byte in 'a'..'z',
// clear bit 5. Classic SWAR range test: a byte c is in [lo,hi] iff
// (c + (0x80-lo-? ...)) — implemented as (c >= lo) AND (c <= hi) via
// borrow/carry tricks on the high bit.
func upperASCII8(v uint64) uint64 {
	// ge: high bit set for bytes >= 'a'
	ge := (v | hiBits) - (0x6161616161616161 &^ hiBits) // v - 'a' with saturating borrow into bit 7
	ge &= hiBits
	// le: high bit set for bytes <= 'z'  <=>  NOT (bytes >= '{')
	gt := (v | hiBits) - (0x7b7b7b7b7b7b7b7b &^ hiBits)
	le := ^gt & hiBits
	mask := (ge & le) >> 2 // 0x80 -> 0x20 per lowercase byte
	return v &^ mask
}

// lowerASCII8 lowercases 8 ASCII bytes at once ('A'..'Z' gain bit 5).
func lowerASCII8(v uint64) uint64 {
	ge := (v | hiBits) - (0x4141414141414141 &^ hiBits)
	ge &= hiBits
	gt := (v | hiBits) - (0x5b5b5b5b5b5b5b5b &^ hiBits)
	le := ^gt & hiBits
	mask := (ge & le) >> 2
	return v | mask
}

// UpperASCIIInto uppercases ASCII src into dst (same length) with SWAR.
func UpperASCIIInto(dst, src []byte) {
	n := len(src)
	i := 0
	for ; i+8 <= n; i += 8 {
		binary.LittleEndian.PutUint64(dst[i:], upperASCII8(binary.LittleEndian.Uint64(src[i:])))
	}
	for ; i < n; i++ {
		c := src[i]
		if c >= 'a' && c <= 'z' {
			c -= 32
		}
		dst[i] = c
	}
}

// LowerASCIIInto lowercases ASCII src into dst with SWAR.
func LowerASCIIInto(dst, src []byte) {
	n := len(src)
	i := 0
	for ; i+8 <= n; i += 8 {
		binary.LittleEndian.PutUint64(dst[i:], lowerASCII8(binary.LittleEndian.Uint64(src[i:])))
	}
	for ; i < n; i++ {
		c := src[i]
		if c >= 'A' && c <= 'Z' {
			c += 32
		}
		dst[i] = c
	}
}

// UpperASCIIV uppercases active rows via the SWAR fast path, allocating
// output payloads from the arena.
func UpperASCIIV(vals [][]byte, nulls []byte, hasNulls bool, sel []int32, n int, arena *mem.Arena, out [][]byte) {
	body := func(i int32) {
		if hasNulls && nulls[i] != 0 {
			return
		}
		src := vals[i]
		dst := arena.Alloc(len(src))
		UpperASCIIInto(dst, src)
		out[i] = dst
	}
	if sel == nil {
		for i := 0; i < n; i++ {
			body(int32(i))
		}
	} else {
		for _, i := range sel {
			body(i)
		}
	}
}

// LowerASCIIV lowercases active rows via the SWAR fast path.
func LowerASCIIV(vals [][]byte, nulls []byte, hasNulls bool, sel []int32, n int, arena *mem.Arena, out [][]byte) {
	body := func(i int32) {
		if hasNulls && nulls[i] != 0 {
			return
		}
		src := vals[i]
		dst := arena.Alloc(len(src))
		LowerASCIIInto(dst, src)
		out[i] = dst
	}
	if sel == nil {
		for i := 0; i < n; i++ {
			body(int32(i))
		}
	} else {
		for _, i := range sel {
			body(i)
		}
	}
}

// UpperUTF8V is the general Unicode-table path ("ICU" in the paper's Fig. 6
// baseline): decode each rune, map through the Unicode case tables,
// re-encode. Used when the vector's ASCII metadata says mixed, or when
// adaptivity is disabled for ablation.
func UpperUTF8V(vals [][]byte, nulls []byte, hasNulls bool, sel []int32, n int, out [][]byte) {
	body := func(i int32) {
		if hasNulls && nulls[i] != 0 {
			return
		}
		out[i] = []byte(strings.ToUpper(string(vals[i])))
	}
	if sel == nil {
		for i := 0; i < n; i++ {
			body(int32(i))
		}
	} else {
		for _, i := range sel {
			body(i)
		}
	}
}

// LowerUTF8V is the general Unicode lower-casing path.
func LowerUTF8V(vals [][]byte, nulls []byte, hasNulls bool, sel []int32, n int, out [][]byte) {
	body := func(i int32) {
		if hasNulls && nulls[i] != 0 {
			return
		}
		out[i] = []byte(strings.ToLower(string(vals[i])))
	}
	if sel == nil {
		for i := 0; i < n; i++ {
			body(int32(i))
		}
	} else {
		for _, i := range sel {
			body(i)
		}
	}
}

// LengthV computes character length per active row: byte length on the
// ASCII fast path, rune count on the general path.
func LengthV(vals [][]byte, nulls []byte, hasNulls bool, ascii bool, sel []int32, n int, out []int32) {
	body := func(i int32) {
		if hasNulls && nulls[i] != 0 {
			return
		}
		if ascii {
			out[i] = int32(len(vals[i]))
		} else {
			out[i] = int32(utf8.RuneCount(vals[i]))
		}
	}
	if sel == nil {
		for i := 0; i < n; i++ {
			body(int32(i))
		}
	} else {
		for _, i := range sel {
			body(i)
		}
	}
}

// SubstrV computes SUBSTRING(s, start, length) with 1-based start (SQL
// semantics) per active row, slicing bytes on the ASCII fast path.
func SubstrV(vals [][]byte, nulls []byte, hasNulls bool, ascii bool, start, length int, sel []int32, n int, out [][]byte) {
	body := func(i int32) {
		if hasNulls && nulls[i] != 0 {
			return
		}
		out[i] = substrOne(vals[i], start, length, ascii)
	}
	if sel == nil {
		for i := 0; i < n; i++ {
			body(int32(i))
		}
	} else {
		for _, i := range sel {
			body(i)
		}
	}
}

func substrOne(s []byte, start, length int, ascii bool) []byte {
	if length <= 0 {
		return s[:0]
	}
	if ascii {
		from := start - 1
		if start <= 0 { // SQL: start 0 behaves as 1; negative counts from end
			if start == 0 {
				from = 0
			} else {
				from = len(s) + start
				if from < 0 {
					length += from
					from = 0
					if length <= 0 {
						return s[:0]
					}
				}
			}
		}
		if from >= len(s) {
			return s[:0]
		}
		to := from + length
		if to > len(s) {
			to = len(s)
		}
		return s[from:to]
	}
	// Rune-aware general path.
	runes := []rune(string(s))
	from := start - 1
	if start <= 0 {
		if start == 0 {
			from = 0
		} else {
			from = len(runes) + start
			if from < 0 {
				length += from
				from = 0
				if length <= 0 {
					return s[:0]
				}
			}
		}
	}
	if from >= len(runes) {
		return s[:0]
	}
	to := from + length
	if to > len(runes) {
		to = len(runes)
	}
	return []byte(string(runes[from:to]))
}

// ConcatVV concatenates two string vectors per active row via the arena.
func ConcatVV(a, b [][]byte, outNulls []byte, sel []int32, n int, arena *mem.Arena, out [][]byte) {
	body := func(i int32) {
		if outNulls[i] != 0 {
			return
		}
		dst := arena.Alloc(len(a[i]) + len(b[i]))
		copy(dst, a[i])
		copy(dst[len(a[i]):], b[i])
		out[i] = dst
	}
	if sel == nil {
		for i := 0; i < n; i++ {
			body(int32(i))
		}
	} else {
		for _, i := range sel {
			body(i)
		}
	}
}

// TrimV trims leading/trailing ASCII spaces per active row.
func TrimV(vals [][]byte, nulls []byte, hasNulls bool, sel []int32, n int, out [][]byte) {
	body := func(i int32) {
		if hasNulls && nulls[i] != 0 {
			return
		}
		s := vals[i]
		for len(s) > 0 && s[0] == ' ' {
			s = s[1:]
		}
		for len(s) > 0 && s[len(s)-1] == ' ' {
			s = s[:len(s)-1]
		}
		out[i] = s
	}
	if sel == nil {
		for i := 0; i < n; i++ {
			body(int32(i))
		}
	} else {
		for _, i := range sel {
			body(i)
		}
	}
}

// LikePattern is a compiled SQL LIKE pattern: literal segments separated by
// multi-char wildcards, with single-char wildcards inside segments encoded
// as 0x00 placeholders (input strings containing NUL are matched via the
// slow path).
type LikePattern struct {
	Raw      string
	segments [][]byte // literal pieces between % wildcards
	hasUnder bool
	// Fast-path classification.
	kind      likeKind
	needle    []byte
	anyBefore bool
}

type likeKind uint8

const (
	likeGeneric  likeKind = iota
	likeExact             // no wildcards
	likePrefix            // lit%
	likeSuffix            // %lit
	likeContains          // %lit%
)

// CompileLike parses a LIKE pattern (wildcards % and _, no escape).
func CompileLike(pattern string) *LikePattern {
	p := &LikePattern{Raw: pattern}
	var segs [][]byte
	cur := []byte{}
	for i := 0; i < len(pattern); i++ {
		switch pattern[i] {
		case '%':
			segs = append(segs, cur)
			cur = []byte{}
		case '_':
			p.hasUnder = true
			cur = append(cur, 0)
		default:
			cur = append(cur, pattern[i])
		}
	}
	segs = append(segs, cur)
	p.segments = segs
	if !p.hasUnder {
		switch {
		case len(segs) == 1:
			p.kind = likeExact
			p.needle = segs[0]
		case len(segs) == 2 && len(segs[0]) > 0 && len(segs[1]) == 0:
			p.kind = likePrefix
			p.needle = segs[0]
		case len(segs) == 2 && len(segs[0]) == 0 && len(segs[1]) > 0:
			p.kind = likeSuffix
			p.needle = segs[1]
		case len(segs) == 3 && len(segs[0]) == 0 && len(segs[2]) == 0:
			p.kind = likeContains
			p.needle = segs[1]
		default:
			p.kind = likeGeneric
		}
	}
	return p
}

// Match reports whether s matches the pattern.
func (p *LikePattern) Match(s []byte) bool {
	switch p.kind {
	case likeExact:
		return string(s) == string(p.needle)
	case likePrefix:
		return len(s) >= len(p.needle) && string(s[:len(p.needle)]) == string(p.needle)
	case likeSuffix:
		return len(s) >= len(p.needle) && string(s[len(s)-len(p.needle):]) == string(p.needle)
	case likeContains:
		return indexBytes(s, p.needle) >= 0
	}
	return p.matchGeneric(s)
}

func (p *LikePattern) matchGeneric(s []byte) bool {
	segs := p.segments
	// First segment must anchor at the start.
	if !segMatchAt(s, segs[0], 0) {
		return false
	}
	pos := len(segs[0])
	// Middle segments float; last must anchor at the end.
	for k := 1; k < len(segs)-1; k++ {
		found := -1
		for i := pos; i+len(segs[k]) <= len(s); i++ {
			if segMatchAt(s, segs[k], i) {
				found = i
				break
			}
		}
		if found < 0 {
			return false
		}
		pos = found + len(segs[k])
	}
	last := segs[len(segs)-1]
	if len(segs) == 1 {
		return pos == len(s)
	}
	if len(s)-pos < len(last) {
		return false
	}
	return segMatchAt(s, last, len(s)-len(last))
}

// segMatchAt matches a segment (with 0x00 = any single byte) at position i.
func segMatchAt(s, seg []byte, i int) bool {
	if i+len(seg) > len(s) {
		return false
	}
	for j, c := range seg {
		if c == 0 {
			continue
		}
		if s[i+j] != c {
			return false
		}
	}
	return true
}

func indexBytes(s, needle []byte) int {
	if len(needle) == 0 {
		return 0
	}
	for i := 0; i+len(needle) <= len(s); i++ {
		if s[i] == needle[0] && string(s[i:i+len(needle)]) == string(needle) {
			return i
		}
	}
	return -1
}

// SelLike appends active rows matching the LIKE pattern.
func SelLike(p *LikePattern, vals [][]byte, nulls []byte, hasNulls bool, sel []int32, n int, out []int32) []int32 {
	body := func(i int32) {
		if hasNulls && nulls[i] != 0 {
			return
		}
		if p.Match(vals[i]) {
			out = append(out, i)
		}
	}
	if sel == nil {
		for i := 0; i < n; i++ {
			body(int32(i))
		}
	} else {
		for _, i := range sel {
			body(i)
		}
	}
	return out
}

// UpperRuneSlow is a deliberately rune-at-a-time reference implementation
// used by tests to validate the SWAR kernels.
func UpperRuneSlow(s []byte) []byte {
	out := make([]rune, 0, len(s))
	for _, r := range string(s) {
		out = append(out, unicode.ToUpper(r))
	}
	return []byte(string(out))
}
