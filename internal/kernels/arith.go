package kernels

import "photon/internal/types"

// Arithmetic kernels. Each op has four specializations following Listing 2:
// {dense, selective} × {NULL-free, nullable}. The NULL-free dense loop is
// the branch-free fast path the Go compiler keeps tight (bounds-check
// elimination via re-slicing); the nullable variants skip computing NULL
// rows so division never faults on garbage inputs.

// AddVV computes out[i] = a[i] + b[i] over the active rows.
func AddVV[T Numeric](a, b, out []T, sel []int32, n int) {
	if sel == nil {
		a, b, o := a[:n], b[:n], out[:n]
		for i := range o {
			o[i] = a[i] + b[i]
		}
		return
	}
	for _, i := range sel {
		out[i] = a[i] + b[i]
	}
}

// AddVVNulls is AddVV skipping NULL rows (nulls already merged into outNulls).
func AddVVNulls[T Numeric](a, b, out []T, outNulls []byte, sel []int32, n int) {
	if sel == nil {
		for i := 0; i < n; i++ {
			if outNulls[i] == 0 {
				out[i] = a[i] + b[i]
			}
		}
		return
	}
	for _, i := range sel {
		if outNulls[i] == 0 {
			out[i] = a[i] + b[i]
		}
	}
}

// SubVV computes out[i] = a[i] - b[i] over the active rows.
func SubVV[T Numeric](a, b, out []T, sel []int32, n int) {
	if sel == nil {
		a, b, o := a[:n], b[:n], out[:n]
		for i := range o {
			o[i] = a[i] - b[i]
		}
		return
	}
	for _, i := range sel {
		out[i] = a[i] - b[i]
	}
}

// SubVVNulls is SubVV skipping NULL rows.
func SubVVNulls[T Numeric](a, b, out []T, outNulls []byte, sel []int32, n int) {
	if sel == nil {
		for i := 0; i < n; i++ {
			if outNulls[i] == 0 {
				out[i] = a[i] - b[i]
			}
		}
		return
	}
	for _, i := range sel {
		if outNulls[i] == 0 {
			out[i] = a[i] - b[i]
		}
	}
}

// MulVV computes out[i] = a[i] * b[i] over the active rows.
func MulVV[T Numeric](a, b, out []T, sel []int32, n int) {
	if sel == nil {
		a, b, o := a[:n], b[:n], out[:n]
		for i := range o {
			o[i] = a[i] * b[i]
		}
		return
	}
	for _, i := range sel {
		out[i] = a[i] * b[i]
	}
}

// MulVVNulls is MulVV skipping NULL rows.
func MulVVNulls[T Numeric](a, b, out []T, outNulls []byte, sel []int32, n int) {
	if sel == nil {
		for i := 0; i < n; i++ {
			if outNulls[i] == 0 {
				out[i] = a[i] * b[i]
			}
		}
		return
	}
	for _, i := range sel {
		if outNulls[i] == 0 {
			out[i] = a[i] * b[i]
		}
	}
}

// DivVV computes out[i] = a[i] / b[i] over the active rows, marking rows
// with a zero divisor NULL (SQL semantics). Returns whether any NULL was
// produced.
func DivVV[T Numeric](a, b, out []T, outNulls []byte, sel []int32, n int) bool {
	produced := false
	if sel == nil {
		for i := 0; i < n; i++ {
			if outNulls[i] != 0 {
				continue
			}
			if b[i] == 0 {
				outNulls[i] = 1
				produced = true
				continue
			}
			out[i] = a[i] / b[i]
		}
		return produced
	}
	for _, i := range sel {
		if outNulls[i] != 0 {
			continue
		}
		if b[i] == 0 {
			outNulls[i] = 1
			produced = true
			continue
		}
		out[i] = a[i] / b[i]
	}
	return produced
}

// AddVS computes out[i] = a[i] + s over the active rows.
func AddVS[T Numeric](a []T, s T, out []T, sel []int32, n int) {
	if sel == nil {
		a, o := a[:n], out[:n]
		for i := range o {
			o[i] = a[i] + s
		}
		return
	}
	for _, i := range sel {
		out[i] = a[i] + s
	}
}

// SubVS computes out[i] = a[i] - s over the active rows.
func SubVS[T Numeric](a []T, s T, out []T, sel []int32, n int) {
	AddVS(a, -s, out, sel, n)
}

// SubSV computes out[i] = s - a[i] over the active rows.
func SubSV[T Numeric](s T, a []T, out []T, sel []int32, n int) {
	if sel == nil {
		a, o := a[:n], out[:n]
		for i := range o {
			o[i] = s - a[i]
		}
		return
	}
	for _, i := range sel {
		out[i] = s - a[i]
	}
}

// MulVS computes out[i] = a[i] * s over the active rows.
func MulVS[T Numeric](a []T, s T, out []T, sel []int32, n int) {
	if sel == nil {
		a, o := a[:n], out[:n]
		for i := range o {
			o[i] = a[i] * s
		}
		return
	}
	for _, i := range sel {
		out[i] = a[i] * s
	}
}

// ModVV computes out[i] = a[i] % b[i] for integer types, NULL on zero.
func ModVV[T ~int32 | ~int64](a, b, out []T, outNulls []byte, sel []int32, n int) bool {
	produced := false
	body := func(i int32) {
		if outNulls[i] != 0 {
			return
		}
		if b[i] == 0 {
			outNulls[i] = 1
			produced = true
			return
		}
		out[i] = a[i] % b[i]
	}
	if sel == nil {
		for i := 0; i < n; i++ {
			body(int32(i))
		}
	} else {
		for _, i := range sel {
			body(i)
		}
	}
	return produced
}

// NegV computes out[i] = -a[i] over the active rows.
func NegV[T Numeric](a, out []T, sel []int32, n int) {
	if sel == nil {
		a, o := a[:n], out[:n]
		for i := range o {
			o[i] = -a[i]
		}
		return
	}
	for _, i := range sel {
		out[i] = -a[i]
	}
}

// Decimal arithmetic kernels — native 128-bit integer loops. This is the
// machinery behind TPC-H Q1's 23x (§6.2): the baseline pays per-row
// arbitrary-precision arithmetic, Photon runs these.

// DecAddVV computes out[i] = a[i] + b[i]; operands must share a scale.
func DecAddVV(a, b, out []types.Decimal128, sel []int32, n int) {
	if sel == nil {
		a, b, o := a[:n], b[:n], out[:n]
		for i := range o {
			o[i] = a[i].Add(b[i])
		}
		return
	}
	for _, i := range sel {
		out[i] = a[i].Add(b[i])
	}
}

// DecSubVV computes out[i] = a[i] - b[i].
func DecSubVV(a, b, out []types.Decimal128, sel []int32, n int) {
	if sel == nil {
		a, b, o := a[:n], b[:n], out[:n]
		for i := range o {
			o[i] = a[i].Sub(b[i])
		}
		return
	}
	for _, i := range sel {
		out[i] = a[i].Sub(b[i])
	}
}

// DecMulVV computes out[i] = a[i] * b[i] (scales add at the expr layer).
func DecMulVV(a, b, out []types.Decimal128, sel []int32, n int) {
	if sel == nil {
		a, b, o := a[:n], b[:n], out[:n]
		for i := range o {
			o[i] = a[i].Mul(b[i])
		}
		return
	}
	for _, i := range sel {
		out[i] = a[i].Mul(b[i])
	}
}

// DecAddVS computes out[i] = a[i] + s.
func DecAddVS(a []types.Decimal128, s types.Decimal128, out []types.Decimal128, sel []int32, n int) {
	if sel == nil {
		a, o := a[:n], out[:n]
		for i := range o {
			o[i] = a[i].Add(s)
		}
		return
	}
	for _, i := range sel {
		out[i] = a[i].Add(s)
	}
}

// DecSubSV computes out[i] = s - a[i].
func DecSubSV(s types.Decimal128, a, out []types.Decimal128, sel []int32, n int) {
	if sel == nil {
		a, o := a[:n], out[:n]
		for i := range o {
			o[i] = s.Sub(a[i])
		}
		return
	}
	for _, i := range sel {
		out[i] = s.Sub(a[i])
	}
}

// DecDivVV computes out[i] = (a[i] * mul) / b[i] over the active rows,
// marking rows with a zero divisor NULL (SQL semantics). mul is the hoisted
// scale multiplier 10^(outScale - aScale + bScale) so the quotient lands on
// the result scale directly. Division truncates toward zero, matching
// Decimal128.Div. Returns whether any NULL was produced.
func DecDivVV(a, b []types.Decimal128, mul types.Decimal128, out []types.Decimal128, outNulls []byte, sel []int32, n int) bool {
	produced := false
	body := func(i int32) {
		if outNulls[i] != 0 {
			return
		}
		if b[i].IsZero() {
			outNulls[i] = 1
			produced = true
			return
		}
		out[i] = a[i].Mul(mul).Div(b[i])
	}
	if sel == nil {
		for i := 0; i < n; i++ {
			body(int32(i))
		}
	} else {
		for _, i := range sel {
			body(i)
		}
	}
	return produced
}

// DecRescaleV rescales each active value from one scale to another.
func DecRescaleV(a, out []types.Decimal128, from, to int, sel []int32, n int) {
	if sel == nil {
		a, o := a[:n], out[:n]
		for i := range o {
			o[i] = a[i].Rescale(from, to)
		}
		return
	}
	for _, i := range sel {
		out[i] = a[i].Rescale(from, to)
	}
}
