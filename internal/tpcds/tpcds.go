// Package tpcds provides the TPC-DS subset the paper's adaptivity
// experiment uses: the store_sales / store_returns / item / store /
// customer tables and a Q24-shaped query ("customers who returned items
// of a particular color bought at a particular market's stores"). Q24 is
// the paper's Fig. 9 workload: a selective filter leaves probe batches
// sparse before large hash-table probes, which is where adaptive batch
// compaction matters.
package tpcds

import (
	"fmt"

	"photon/internal/catalog"
	"photon/internal/types"
	"photon/internal/vector"
)

type rng struct{ state uint64 }

func newRng(seed uint64) *rng { return &rng{state: seed*0x9e3779b97f4a7c15 + 1} }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

var colors = []string{"pale", "peach", "saddle", "yellow", "orchid", "chiffon", "lace", "navy", "ghost", "ivory"}
var markets = []string{"Books", "Home", "Electronics", "Music", "Sports", "Shoes", "Women", "Men", "Jewelry", "Pets"}

// Gen generates the five-table subset. Scale ~ rows of store_sales.
type Gen struct {
	SalesRows   int
	ReturnRate  float64 // fraction of sales with a matching return
	NumItems    int
	NumStores   int
	NumCustomer int
	BatchSize   int
}

// NewGen builds a generator sized from the sales row count.
func NewGen(salesRows int) *Gen {
	return &Gen{
		SalesRows:   salesRows,
		ReturnRate:  0.10,
		NumItems:    max(salesRows/50, 20),
		NumStores:   12,
		NumCustomer: max(salesRows/20, 50),
		BatchSize:   vector.DefaultBatchSize,
	}
}

type builder struct {
	schema *types.Schema
	size   int
	cur    *vector.Batch
	out    []*vector.Batch
}

func (b *builder) add(row ...any) {
	if b.cur == nil {
		b.cur = vector.NewBatch(b.schema, b.size)
	}
	b.cur.AppendRow(row...)
	if b.cur.NumRows == b.size {
		b.out = append(b.out, b.cur)
		b.cur = nil
	}
}

func (b *builder) finish() []*vector.Batch {
	if b.cur != nil && b.cur.NumRows > 0 {
		b.out = append(b.out, b.cur)
	}
	return b.out
}

// Generate builds the catalog.
func (g *Gen) Generate() *catalog.Catalog {
	cat := catalog.New()
	r := newRng(101)

	itemSchema := types.NewSchema(
		types.Field{Name: "i_item_sk", Type: types.Int64Type},
		types.Field{Name: "i_color", Type: types.StringType},
		types.Field{Name: "i_current_price", Type: types.DecimalType(12, 2)},
		types.Field{Name: "i_size", Type: types.StringType},
		types.Field{Name: "i_units", Type: types.StringType},
	)
	ib := &builder{schema: itemSchema, size: g.BatchSize}
	for i := 1; i <= g.NumItems; i++ {
		ib.add(int64(i), colors[r.intn(len(colors))],
			types.DecimalFromInt64(int64(100+r.intn(9900))),
			[]string{"small", "medium", "large", "petite"}[r.intn(4)],
			[]string{"Each", "Dozen", "Case"}[r.intn(3)])
	}
	cat.Register(&catalog.MemTable{TableName: "item", Sch: itemSchema, Batches: ib.finish()})

	storeSchema := types.NewSchema(
		types.Field{Name: "s_store_sk", Type: types.Int64Type},
		types.Field{Name: "s_store_name", Type: types.StringType},
		types.Field{Name: "s_market_id", Type: types.Int32Type},
		types.Field{Name: "s_state", Type: types.StringType},
		types.Field{Name: "s_zip", Type: types.StringType},
	)
	sb := &builder{schema: storeSchema, size: g.BatchSize}
	for i := 1; i <= g.NumStores; i++ {
		sb.add(int64(i), markets[r.intn(len(markets))]+" store",
			int32(r.intn(10)+1),
			[]string{"TN", "CA", "TX", "NY"}[r.intn(4)],
			fmt.Sprintf("%05d", 10000+r.intn(90000)))
	}
	cat.Register(&catalog.MemTable{TableName: "store", Sch: storeSchema, Batches: sb.finish()})

	custSchema := types.NewSchema(
		types.Field{Name: "c_customer_sk", Type: types.Int64Type},
		types.Field{Name: "c_first_name", Type: types.StringType},
		types.Field{Name: "c_last_name", Type: types.StringType},
		types.Field{Name: "c_birth_country", Type: types.StringType},
	)
	cb := &builder{schema: custSchema, size: g.BatchSize}
	for i := 1; i <= g.NumCustomer; i++ {
		cb.add(int64(i), fmt.Sprintf("First%04d", r.intn(2000)), fmt.Sprintf("Last%04d", r.intn(2000)),
			[]string{"UNITED STATES", "CANADA", "MEXICO", "FRANCE"}[r.intn(4)])
	}
	cat.Register(&catalog.MemTable{TableName: "customer", Sch: custSchema, Batches: cb.finish()})

	ssSchema := types.NewSchema(
		types.Field{Name: "ss_ticket_number", Type: types.Int64Type},
		types.Field{Name: "ss_item_sk", Type: types.Int64Type},
		types.Field{Name: "ss_customer_sk", Type: types.Int64Type},
		types.Field{Name: "ss_store_sk", Type: types.Int64Type},
		types.Field{Name: "ss_quantity", Type: types.Int32Type},
		types.Field{Name: "ss_sales_price", Type: types.DecimalType(12, 2)},
		types.Field{Name: "ss_net_paid", Type: types.DecimalType(12, 2)},
	)
	srSchema := types.NewSchema(
		types.Field{Name: "sr_ticket_number", Type: types.Int64Type},
		types.Field{Name: "sr_item_sk", Type: types.Int64Type},
		types.Field{Name: "sr_return_quantity", Type: types.Int32Type},
	)
	ssb := &builder{schema: ssSchema, size: g.BatchSize}
	srb := &builder{schema: srSchema, size: g.BatchSize}
	for t := 1; t <= g.SalesRows; t++ {
		item := int64(r.intn(g.NumItems) + 1)
		price := int64(100 + r.intn(20000))
		qty := int32(r.intn(20) + 1)
		ssb.add(int64(t), item, int64(r.intn(g.NumCustomer)+1), int64(r.intn(g.NumStores)+1),
			qty, types.DecimalFromInt64(price), types.DecimalFromInt64(price*int64(qty)))
		if float64(r.intn(1000))/1000 < g.ReturnRate {
			srb.add(int64(t), item, int32(r.intn(int(qty))+1))
		}
	}
	cat.Register(&catalog.MemTable{TableName: "store_sales", Sch: ssSchema, Batches: ssb.finish()})
	cat.Register(&catalog.MemTable{TableName: "store_returns", Sch: srSchema, Batches: srb.finish()})
	return cat
}

// Q24 is the Fig. 9 workload: returned items of one color, bought at
// stores in one market, aggregated per customer. The selective color and
// market filters leave the probe batches into the sales→returns join
// sparse — the scenario adaptive batch compaction targets.
const Q24 = `
SELECT c_last_name, c_first_name, s_store_name, sum(ss_net_paid) netpaid
FROM store_sales
JOIN store_returns ON sr_ticket_number = ss_ticket_number AND sr_item_sk = ss_item_sk
JOIN store ON s_store_sk = ss_store_sk
JOIN item ON i_item_sk = ss_item_sk
JOIN customer ON c_customer_sk = ss_customer_sk
WHERE i_color = 'pale' AND s_market_id <= 5 AND ss_quantity >= 15
GROUP BY c_last_name, c_first_name, s_store_name
ORDER BY c_last_name, c_first_name, s_store_name`

// The ss_quantity predicate is the sparsity source: it pushes into the
// store_sales scan, so the surviving ~15% of rows probe the large
// store_returns hash table through sparse position lists unless the join
// compacts them first.
