package tpcds

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"photon/internal/exec"
	"photon/internal/sql"
	"photon/internal/sql/catalyst"
)

func TestQ24CrossEngineAndCompaction(t *testing.T) {
	cat := NewGen(20000).Generate()
	run := func(engine catalyst.Engine, compact bool) [][]any {
		stmt, err := sql.Parse(Q24)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := sql.Analyze(cat, stmt)
		if err != nil {
			t.Fatal(err)
		}
		plan, err = catalyst.Optimize(plan)
		if err != nil {
			t.Fatal(err)
		}
		tc := exec.NewTaskCtx(nil, 0)
		tc.EnableCompaction = compact
		ex, err := catalyst.Build(plan, catalyst.Config{Engine: engine}, tc)
		if err != nil {
			t.Fatal(err)
		}
		rows, err := ex.Run(tc)
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}
	photon := run(catalyst.EnginePhoton, true)
	noCompact := run(catalyst.EnginePhoton, false)
	dbr := run(catalyst.EngineDBRCompiled, true)
	if len(photon) == 0 {
		t.Fatal("Q24 returned no rows; generator parameters too selective")
	}
	norm := func(rows [][]any) []string {
		out := make([]string, len(rows))
		for i, r := range rows {
			out[i] = fmt.Sprint(r)
		}
		sort.Strings(out)
		return out
	}
	if !reflect.DeepEqual(norm(photon), norm(noCompact)) {
		t.Error("compaction changed Q24 results")
	}
	if !reflect.DeepEqual(norm(photon), norm(dbr)) {
		t.Error("engines disagree on Q24")
	}
}

func TestGeneratorShapes(t *testing.T) {
	g := NewGen(5000)
	cat := g.Generate()
	for _, n := range []string{"store_sales", "store_returns", "item", "store", "customer"} {
		if _, err := cat.Lookup(n); err != nil {
			t.Fatalf("missing %s", n)
		}
	}
}
