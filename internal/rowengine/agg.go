package rowengine

import (
	"fmt"
	"math/big"
	"strings"

	"photon/internal/expr"
	"photon/internal/types"
)

// HashAgg is the baseline grouping aggregation: a Go map from encoded group
// key to boxed state slices. Decimal sums accumulate in math/big (the
// BigDecimal analogue); collect_list appends to boxed value slices (the
// Scala-collections analogue, Fig. 5). Spark's codegen does not cover
// variable-size aggregation states, so CollectList always runs the
// interpreted update path regardless of Mode — exactly the limitation §6.1
// describes.
type HashAgg struct {
	child    Operator
	keyExprs []RowExpr
	keyTypes []types.DataType
	specs    []expr.AggSpec
	argFns   []RowExpr
	schema   *types.Schema

	groups map[string]*aggGroup
	order  []string // deterministic emit order (insertion)
	pos    int
	out    []any
}

// aggGroup holds one group's boxed key and states.
type aggGroup struct {
	key    []any
	states []aggState
}

type aggState struct {
	count    int64
	sumBig   *big.Int // decimal sums
	sumF     float64
	sumI     int64
	seen     bool
	minmax   any
	list     []any
	distinct map[string]struct{}
}

// NewHashAgg builds the baseline aggregation from the shared logical specs.
func NewHashAgg(child Operator, keys []expr.Expr, keyNames []string, specs []expr.AggSpec, mode Mode) (*HashAgg, error) {
	a := &HashAgg{child: child, specs: specs}
	for _, k := range keys {
		fn, err := CompileExpr(k, mode)
		if err != nil {
			return nil, err
		}
		a.keyExprs = append(a.keyExprs, fn)
		a.keyTypes = append(a.keyTypes, k.Type())
	}
	for _, s := range specs {
		if s.Arg == nil {
			a.argFns = append(a.argFns, nil)
			continue
		}
		// Variable-size aggregation state is incompatible with the codegen
		// framework (§6.1): fall back to interpreted for collect_list.
		m := mode
		if s.Kind == expr.AggCollectList {
			m = Interpreted
		}
		fn, err := CompileExpr(s.Arg, m)
		if err != nil {
			return nil, err
		}
		a.argFns = append(a.argFns, fn)
	}
	fields := make([]types.Field, 0, len(keys)+len(specs))
	for i, k := range keys {
		name := fmt.Sprintf("k%d", i)
		if i < len(keyNames) && keyNames[i] != "" {
			name = keyNames[i]
		}
		fields = append(fields, types.Field{Name: name, Type: k.Type(), Nullable: true})
	}
	for i, s := range specs {
		rt, err := s.ResultType()
		if err != nil {
			return nil, err
		}
		name := s.Name
		if name == "" {
			name = fmt.Sprintf("agg%d", i)
		}
		fields = append(fields, types.Field{Name: name, Type: rt, Nullable: true})
	}
	a.schema = &types.Schema{Fields: fields}
	return a, nil
}

// Schema implements Operator.
func (a *HashAgg) Schema() *types.Schema { return a.schema }

// Open implements Operator.
func (a *HashAgg) Open() error {
	a.groups = make(map[string]*aggGroup)
	a.order = nil
	a.pos = 0
	a.out = make([]any, a.schema.Len())
	if err := a.child.Open(); err != nil {
		return err
	}
	return a.consume()
}

// encodeKey renders a group key for map lookup (boxing + string build per
// row, the Java hash-map analogue).
func encodeKey(vals []any) string {
	var b strings.Builder
	for _, v := range vals {
		if v == nil {
			b.WriteString("\x00N;")
			continue
		}
		fmt.Fprintf(&b, "%v;", v)
	}
	return b.String()
}

func (a *HashAgg) consume() error {
	for {
		row, err := a.child.NextRow()
		if err != nil {
			return err
		}
		if row == nil {
			return nil
		}
		keyVals := make([]any, len(a.keyExprs))
		for i, fn := range a.keyExprs {
			v, err := fn(row)
			if err != nil {
				return err
			}
			keyVals[i] = v
		}
		k := encodeKey(keyVals)
		g, ok := a.groups[k]
		if !ok {
			g = &aggGroup{key: keyVals, states: make([]aggState, len(a.specs))}
			for i, s := range a.specs {
				if s.Distinct {
					g.states[i].distinct = make(map[string]struct{})
				}
				if s.Arg != nil && s.Arg.Type().ID == types.Decimal {
					g.states[i].sumBig = new(big.Int)
				}
			}
			a.groups[k] = g
			a.order = append(a.order, k)
		}
		if err := a.update(g, row); err != nil {
			return err
		}
	}
}

func (a *HashAgg) update(g *aggGroup, row []any) error {
	for i, s := range a.specs {
		st := &g.states[i]
		var v any
		if a.argFns[i] != nil {
			var err error
			v, err = a.argFns[i](row)
			if err != nil {
				return err
			}
		}
		switch {
		case s.Distinct:
			if v != nil {
				st.distinct[fmt.Sprintf("%v", v)] = struct{}{}
			}
		case s.Kind == expr.AggCount:
			if s.Arg == nil || v != nil {
				st.count++
			}
		case s.Kind == expr.AggSum || s.Kind == expr.AggAvg:
			if v == nil {
				continue
			}
			st.count++
			st.seen = true
			switch x := v.(type) {
			case int32:
				st.sumI += int64(x)
				st.sumF += float64(x)
			case int64:
				st.sumI += x
				st.sumF += float64(x)
			case float64:
				st.sumF += x
			case types.Decimal128:
				st.sumBig.Add(st.sumBig, bigOfDec(x)) // BigDecimal add per row
			}
		case s.Kind == expr.AggMin || s.Kind == expr.AggMax:
			if v == nil {
				continue
			}
			if !st.seen {
				st.seen = true
				st.minmax = v
				continue
			}
			c, err := compareAny(st.minmax, v, s.Arg.Type())
			if err != nil {
				return err
			}
			if (s.Kind == expr.AggMin && c > 0) || (s.Kind == expr.AggMax && c < 0) {
				st.minmax = v
			}
		case s.Kind == expr.AggCollectList:
			if v != nil {
				st.list = append(st.list, v) // boxed append per row
			}
		}
	}
	return nil
}

// NextRow implements Operator: emits one group per call.
func (a *HashAgg) NextRow() ([]any, error) {
	if a.pos >= len(a.order) {
		if a.pos == 0 && len(a.keyExprs) == 0 {
			// Global aggregation over empty input still emits one row.
			a.pos++
			g := &aggGroup{states: make([]aggState, len(a.specs))}
			for i, s := range a.specs {
				if s.Arg != nil && s.Arg.Type().ID == types.Decimal {
					g.states[i].sumBig = new(big.Int)
				}
				if s.Distinct {
					g.states[i].distinct = map[string]struct{}{}
				}
			}
			return a.finalize(g)
		}
		return nil, nil
	}
	g := a.groups[a.order[a.pos]]
	a.pos++
	return a.finalize(g)
}

func (a *HashAgg) finalize(g *aggGroup) ([]any, error) {
	copy(a.out, g.key)
	base := len(g.key)
	for i, s := range a.specs {
		st := &g.states[i]
		var v any
		switch {
		case s.Distinct:
			v = int64(len(st.distinct))
		case s.Kind == expr.AggCount:
			v = st.count
		case s.Kind == expr.AggSum:
			if !st.seen {
				v = nil
				break
			}
			switch s.Arg.Type().ID {
			case types.Int32, types.Int64:
				v = st.sumI
			case types.Float64:
				v = st.sumF
			case types.Decimal:
				d, err := decOfBig(st.sumBig)
				if err != nil {
					return nil, err
				}
				v = d
			}
		case s.Kind == expr.AggAvg:
			if st.count == 0 {
				v = nil
				break
			}
			if s.Arg.Type().ID == types.Decimal {
				rt, _ := s.ResultType()
				shift := rt.Scale - s.Arg.Type().Scale
				num := new(big.Int).Mul(st.sumBig, bigPow10(shift+1))
				num.Quo(num, big.NewInt(st.count))
				// Round half away from zero on the extra digit.
				r := new(big.Int).Set(num)
				q, rem := new(big.Int).QuoRem(num, bigTen, r)
				if rem.Int64() >= 5 {
					q.Add(q, big.NewInt(1))
				} else if rem.Int64() <= -5 {
					q.Sub(q, big.NewInt(1))
				}
				d, err := decOfBig(q)
				if err != nil {
					return nil, err
				}
				v = d
			} else {
				v = st.sumF / float64(st.count)
			}
		case s.Kind == expr.AggMin || s.Kind == expr.AggMax:
			if !st.seen {
				v = nil
			} else {
				v = st.minmax
			}
		case s.Kind == expr.AggCollectList:
			var b strings.Builder
			b.WriteByte('[')
			for j, e := range st.list {
				if j > 0 {
					b.WriteString(", ")
				}
				fmt.Fprintf(&b, "%v", e)
			}
			b.WriteByte(']')
			v = b.String()
		}
		a.out[base+i] = v
	}
	return a.out, nil
}

// Close implements Operator.
func (a *HashAgg) Close() error {
	a.groups = nil
	return a.child.Close()
}
