package rowengine

import (
	"photon/internal/types"
	"photon/internal/vector"
)

// BatchScan pivots a streamed columnar source into rows — the legacy
// engine's scan path over columnar files (every value boxes).
type BatchScan struct {
	schema *types.Schema
	open   func() (func() (*vector.Batch, error), error)
	next   func() (*vector.Batch, error)
	cur    *vector.Batch
	pos    int
	row    []any
}

// NewBatchScan wraps a batch stream factory.
func NewBatchScan(schema *types.Schema, open func() (func() (*vector.Batch, error), error)) *BatchScan {
	return &BatchScan{schema: schema, open: open}
}

// Schema implements Operator.
func (s *BatchScan) Schema() *types.Schema { return s.schema }

// Open implements Operator.
func (s *BatchScan) Open() error {
	next, err := s.open()
	if err != nil {
		return err
	}
	s.next = next
	s.cur = nil
	s.pos = 0
	if s.row == nil {
		s.row = make([]any, s.schema.Len())
	}
	return nil
}

// NextRow implements Operator.
func (s *BatchScan) NextRow() ([]any, error) {
	for {
		if s.cur != nil && s.pos < s.cur.NumActive() {
			i := s.cur.RowIndex(s.pos)
			s.pos++
			for c, v := range s.cur.Vecs {
				s.row[c] = v.Get(i)
			}
			return s.row, nil
		}
		b, err := s.next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			return nil, nil
		}
		s.cur = b
		s.pos = 0
	}
}

// Close implements Operator.
func (s *BatchScan) Close() error {
	s.next = nil
	return nil
}
