package rowengine

import (
	"fmt"

	"photon/internal/expr"
)

// Compiled mode: expression trees lower once into closure chains, the
// whole-stage-codegen analogue. Per-row execution runs straight-line
// closures with no tree dispatch, no node-kind switches, and pre-resolved
// literals/patterns — but still over boxed values, like generated Java.

func compileExpr(e expr.Expr) (RowExpr, error) {
	switch n := e.(type) {
	case *expr.ColRef:
		idx := n.Idx
		return func(row []any) (any, error) { return row[idx], nil }, nil
	case *expr.Literal:
		if n.IsNullLit() {
			return func([]any) (any, error) { return nil, nil }, nil
		}
		v := n.Val
		return func([]any) (any, error) { return v, nil }, nil
	case *expr.Arith:
		l, err := compileExpr(n.Left)
		if err != nil {
			return nil, err
		}
		r, err := compileExpr(n.Right)
		if err != nil {
			return nil, err
		}
		node := n
		return func(row []any) (any, error) {
			lv, err := l(row)
			if err != nil {
				return nil, err
			}
			rv, err := r(row)
			if err != nil {
				return nil, err
			}
			return applyArith(node, lv, rv)
		}, nil
	case *expr.Cmp:
		tp, err := compileCmp(n)
		if err != nil {
			return nil, err
		}
		return func(row []any) (any, error) {
			t, err := tp(row)
			if err != nil {
				return nil, err
			}
			return triToAny(t), nil
		}, nil
	case *expr.IsNull:
		inner, err := compileExpr(n.Inner)
		if err != nil {
			return nil, err
		}
		neg := n.Negate
		return func(row []any) (any, error) {
			v, err := inner(row)
			if err != nil {
				return nil, err
			}
			return (v == nil) != neg, nil
		}, nil
	case *expr.Case:
		type branch struct {
			when triPred
			then RowExpr
		}
		var branches []branch
		for _, br := range n.Branches {
			w, err := compilePred(br.When)
			if err != nil {
				return nil, err
			}
			t, err := compileExpr(br.Then)
			if err != nil {
				return nil, err
			}
			branches = append(branches, branch{w, t})
		}
		var els RowExpr
		if n.Else != nil {
			var err error
			els, err = compileExpr(n.Else)
			if err != nil {
				return nil, err
			}
		}
		return func(row []any) (any, error) {
			for _, br := range branches {
				t, err := br.when(row)
				if err != nil {
					return nil, err
				}
				if t == triTrue {
					return br.then(row)
				}
			}
			if els == nil {
				return nil, nil
			}
			return els(row)
		}, nil
	case *expr.Coalesce:
		var args []RowExpr
		for _, a := range n.Args {
			c, err := compileExpr(a)
			if err != nil {
				return nil, err
			}
			args = append(args, c)
		}
		return func(row []any) (any, error) {
			for _, a := range args {
				v, err := a(row)
				if err != nil {
					return nil, err
				}
				if v != nil {
					return v, nil
				}
			}
			return nil, nil
		}, nil
	case *expr.Cast:
		inner, err := compileExpr(n.Inner)
		if err != nil {
			return nil, err
		}
		from, to := n.Inner.Type(), n.To
		return func(row []any) (any, error) {
			v, err := inner(row)
			if err != nil {
				return nil, err
			}
			return applyCast(v, from, to)
		}, nil
	case *expr.StrFunc:
		node := n
		inner, err := compileExpr(n.Inner)
		if err != nil {
			return nil, err
		}
		var arg RowExpr
		if len(n.Args) > 0 {
			arg, err = compileExpr(n.Args[0])
			if err != nil {
				return nil, err
			}
		}
		return func(row []any) (any, error) {
			return evalStrFunc(node, row, func(e expr.Expr, r []any) (any, error) {
				if e == node.Inner {
					return inner(r)
				}
				return arg(r)
			})
		}, nil
	case *expr.Unary:
		inner, err := compileExpr(n.Inner)
		if err != nil {
			return nil, err
		}
		node := n
		return func(row []any) (any, error) {
			v, err := inner(row)
			if err != nil {
				return nil, err
			}
			return applyUnary(node, v)
		}, nil
	case *expr.Extract:
		inner, err := compileExpr(n.Inner)
		if err != nil {
			return nil, err
		}
		node := n
		from := n.Inner.Type()
		return func(row []any) (any, error) {
			v, err := inner(row)
			if err != nil {
				return nil, err
			}
			return applyExtract(node, v, from)
		}, nil
	case *expr.DateAdd:
		inner, err := compileExpr(n.Inner)
		if err != nil {
			return nil, err
		}
		days := n.Days
		return func(row []any) (any, error) {
			v, err := inner(row)
			if err != nil {
				return nil, err
			}
			if v == nil {
				return nil, nil
			}
			return v.(int32) + days, nil
		}, nil
	}
	return nil, fmt.Errorf("rowengine: cannot compile %T", e)
}

func compileCmp(n *expr.Cmp) (triPred, error) {
	l, err := compileExpr(n.Left)
	if err != nil {
		return nil, err
	}
	r, err := compileExpr(n.Right)
	if err != nil {
		return nil, err
	}
	node := n
	return func(row []any) (tri, error) {
		return cmpTri(node, row, func(e expr.Expr, rw []any) (any, error) {
			if e == node.Left {
				return l(rw)
			}
			return r(rw)
		})
	}, nil
}

func compilePred(f expr.Filter) (triPred, error) {
	switch n := f.(type) {
	case *expr.Cmp:
		return compileCmp(n)
	case *expr.And:
		var subs []triPred
		for _, s := range n.Filters {
			c, err := compilePred(s)
			if err != nil {
				return nil, err
			}
			subs = append(subs, c)
		}
		return func(row []any) (tri, error) {
			result := triTrue
			for _, s := range subs {
				t, err := s(row)
				if err != nil {
					return triNull, err
				}
				if t == triFalse {
					return triFalse, nil
				}
				if t == triNull {
					result = triNull
				}
			}
			return result, nil
		}, nil
	case *expr.Or:
		l, err := compilePred(n.Left)
		if err != nil {
			return nil, err
		}
		r, err := compilePred(n.Right)
		if err != nil {
			return nil, err
		}
		return func(row []any) (tri, error) {
			lt, err := l(row)
			if err != nil {
				return triNull, err
			}
			if lt == triTrue {
				return triTrue, nil
			}
			rt, err := r(row)
			if err != nil {
				return triNull, err
			}
			if rt == triTrue {
				return triTrue, nil
			}
			if lt == triNull || rt == triNull {
				return triNull, nil
			}
			return triFalse, nil
		}, nil
	case *expr.Not:
		inner, err := compilePred(n.Inner)
		if err != nil {
			return nil, err
		}
		return func(row []any) (tri, error) {
			t, err := inner(row)
			if err != nil {
				return triNull, err
			}
			switch t {
			case triTrue:
				return triFalse, nil
			case triFalse:
				return triTrue, nil
			}
			return triNull, nil
		}, nil
	case *expr.Between:
		inner, err := compileExpr(n.Inner)
		if err != nil {
			return nil, err
		}
		t := n.Inner.Type()
		lo, hi := normLit(n.Lo, t), normLit(n.Hi, t)
		return func(row []any) (tri, error) {
			v, err := inner(row)
			if err != nil {
				return triNull, err
			}
			if v == nil {
				return triNull, nil
			}
			cLo, err := compareAny(v, lo, t)
			if err != nil {
				return triNull, err
			}
			cHi, err := compareAny(v, hi, t)
			if err != nil {
				return triNull, err
			}
			if cLo >= 0 && cHi <= 0 {
				return triTrue, nil
			}
			return triFalse, nil
		}, nil
	case *expr.In:
		inner, err := compileExpr(n.Inner)
		if err != nil {
			return nil, err
		}
		t := n.Inner.Type()
		var vals []any
		for _, lit := range n.Vals {
			if !lit.IsNullLit() {
				vals = append(vals, normLit(lit, t))
			}
		}
		return func(row []any) (tri, error) {
			v, err := inner(row)
			if err != nil {
				return triNull, err
			}
			if v == nil {
				return triNull, nil
			}
			for _, w := range vals {
				c, err := compareAny(v, w, t)
				if err != nil {
					return triNull, err
				}
				if c == 0 {
					return triTrue, nil
				}
			}
			return triFalse, nil
		}, nil
	case *expr.Like:
		inner, err := compileExpr(n.Inner)
		if err != nil {
			return nil, err
		}
		p := n.Compiled()
		neg := n.Negate
		return func(row []any) (tri, error) {
			v, err := inner(row)
			if err != nil {
				return triNull, err
			}
			if v == nil {
				return triNull, nil
			}
			if p.Match([]byte(v.(string))) != neg {
				return triTrue, nil
			}
			return triFalse, nil
		}, nil
	case *expr.IsNull:
		inner, err := compileExpr(n.Inner)
		if err != nil {
			return nil, err
		}
		neg := n.Negate
		return func(row []any) (tri, error) {
			v, err := inner(row)
			if err != nil {
				return triNull, err
			}
			if (v == nil) != neg {
				return triTrue, nil
			}
			return triFalse, nil
		}, nil
	case *expr.BoolColFilter:
		inner, err := compileExpr(n.Inner)
		if err != nil {
			return nil, err
		}
		return func(row []any) (tri, error) {
			v, err := inner(row)
			if err != nil {
				return triNull, err
			}
			if v == nil {
				return triNull, nil
			}
			if v.(bool) {
				return triTrue, nil
			}
			return triFalse, nil
		}, nil
	}
	return nil, fmt.Errorf("rowengine: cannot compile filter %T", f)
}
