package rowengine

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"photon/internal/exec"
	"photon/internal/expr"
	"photon/internal/kernels"
	"photon/internal/types"
	"photon/internal/vector"
)

// These tests double as the paper's §5.6 end-to-end consistency suite: the
// same logical computation runs through the Photon vectorized engine and
// the baseline row engine (in both Interpreted and Compiled modes) and the
// results must match exactly.

func sortAnyRows(rows [][]any) {
	sort.Slice(rows, func(i, j int) bool {
		return fmt.Sprint(rows[i]) < fmt.Sprint(rows[j])
	})
}

func buildData(schema *types.Schema, rows [][]any) []*vector.Batch {
	return exec.BuildBatches(schema, rows, 64)
}

func TestScanPivot(t *testing.T) {
	schema := types.NewSchema(
		types.Field{Name: "a", Type: types.Int64Type, Nullable: true},
		types.Field{Name: "s", Type: types.StringType, Nullable: true},
	)
	rows := [][]any{{int64(1), "x"}, {nil, nil}, {int64(3), "z"}}
	got, err := CollectRows(NewScan(schema, buildData(schema, rows)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, rows) {
		t.Errorf("scan pivot: %v", got)
	}
}

func TestFilterProjectBothModes(t *testing.T) {
	schema := types.NewSchema(
		types.Field{Name: "a", Type: types.Int64Type, Nullable: true},
		types.Field{Name: "b", Type: types.Int64Type, Nullable: true},
	)
	var rows [][]any
	for i := 0; i < 100; i++ {
		rows = append(rows, []any{int64(i), int64(i * 3)})
	}
	rows = append(rows, []any{nil, int64(5)})
	colA := expr.Col(0, "a", types.Int64Type)
	colB := expr.Col(1, "b", types.Int64Type)
	pred := expr.NewAnd(
		expr.MustCmp(kernels.CmpGe, colA, expr.Int64Lit(90)),
		expr.MustCmp(kernels.CmpLt, colB, expr.Int64Lit(290)),
	)
	proj := []expr.Expr{expr.MustArith(expr.OpAdd, colA, colB)}
	outSchema := types.NewSchema(types.Field{Name: "sum", Type: types.Int64Type, Nullable: true})

	var results [][][]any
	for _, mode := range []Mode{Interpreted, Compiled} {
		p, err := CompilePred(pred, mode)
		if err != nil {
			t.Fatal(err)
		}
		exprs, err := compileAll(proj, mode)
		if err != nil {
			t.Fatal(err)
		}
		plan := NewProject(NewFilter(NewScan(schema, buildData(schema, rows)), p), exprs, outSchema)
		got, err := CollectRows(plan)
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, got)
	}
	if !reflect.DeepEqual(results[0], results[1]) {
		t.Error("interpreted and compiled modes disagree")
	}
	// 90..96 pass (b < 290 ⇒ a < 96.67).
	if len(results[0]) != 7 {
		t.Errorf("rows = %d: %v", len(results[0]), results[0])
	}
}

// crossEngine runs the same scan→filter→agg in Photon and the row engine.
func TestCrossEngineAggConsistency(t *testing.T) {
	schema := types.NewSchema(
		types.Field{Name: "g", Type: types.Int64Type, Nullable: true},
		types.Field{Name: "v", Type: types.DecimalType(12, 2), Nullable: true},
	)
	dec := func(s string) types.Decimal128 {
		d, _ := types.ParseDecimal(s, 2)
		return d
	}
	var rows [][]any
	for i := 0; i < 300; i++ {
		var g any = int64(i % 7)
		var v any = dec(fmt.Sprintf("%d.%02d", i, i%100))
		if i%11 == 0 {
			v = nil
		}
		if i%13 == 0 {
			g = nil
		}
		rows = append(rows, []any{g, v})
	}
	keys := []expr.Expr{expr.Col(0, "g", types.Int64Type)}
	specs := []expr.AggSpec{
		{Kind: expr.AggCount, Name: "c"},
		{Kind: expr.AggSum, Arg: expr.Col(1, "v", types.DecimalType(12, 2)), Name: "s"},
		{Kind: expr.AggAvg, Arg: expr.Col(1, "v", types.DecimalType(12, 2)), Name: "a"},
		{Kind: expr.AggMin, Arg: expr.Col(1, "v", types.DecimalType(12, 2)), Name: "mn"},
		{Kind: expr.AggMax, Arg: expr.Col(1, "v", types.DecimalType(12, 2)), Name: "mx"},
	}

	// Photon.
	pScan := exec.NewMemScan(schema, buildData(schema, rows))
	pAgg, err := exec.NewHashAgg(pScan, exec.AggComplete, keys, []string{"g"}, specs)
	if err != nil {
		t.Fatal(err)
	}
	tc := exec.NewTaskCtx(nil, 64)
	want, err := exec.CollectRows(pAgg, tc)
	if err != nil {
		t.Fatal(err)
	}

	// Row engine, both modes.
	for _, mode := range []Mode{Interpreted, Compiled} {
		rAgg, err := NewHashAgg(NewScan(schema, buildData(schema, rows)), keys, []string{"g"}, specs, mode)
		if err != nil {
			t.Fatal(err)
		}
		got, err := CollectRows(rAgg)
		if err != nil {
			t.Fatal(err)
		}
		sortAnyRows(want)
		sortAnyRows(got)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("mode %v: engines disagree\nphoton: %v\nrow:    %v", mode, want, got)
		}
	}
}

func TestCrossEngineJoinConsistency(t *testing.T) {
	ls := types.NewSchema(
		types.Field{Name: "k", Type: types.Int64Type, Nullable: true},
		types.Field{Name: "lv", Type: types.Int64Type, Nullable: true},
	)
	rs := types.NewSchema(
		types.Field{Name: "k", Type: types.Int64Type, Nullable: true},
		types.Field{Name: "rv", Type: types.Int64Type, Nullable: true},
	)
	var lrows, rrows [][]any
	for i := 0; i < 200; i++ {
		var k any = int64(i % 40)
		if i%17 == 0 {
			k = nil
		}
		lrows = append(lrows, []any{k, int64(i)})
	}
	for i := 0; i < 120; i++ {
		rrows = append(rrows, []any{int64(i % 60), int64(i * 10)})
	}
	lk := []expr.Expr{expr.Col(0, "k", types.Int64Type)}
	rk := []expr.Expr{expr.Col(0, "k", types.Int64Type)}

	for _, jt := range []exec.JoinType{exec.InnerJoin, exec.LeftOuterJoin, exec.LeftSemiJoin, exec.LeftAntiJoin} {
		pj, err := exec.NewHashJoin(
			exec.NewMemScan(ls, buildData(ls, lrows)),
			exec.NewMemScan(rs, buildData(rs, rrows)),
			lk, rk, jt)
		if err != nil {
			t.Fatal(err)
		}
		want, err := exec.CollectRows(pj, exec.NewTaskCtx(nil, 64))
		if err != nil {
			t.Fatal(err)
		}
		rj, err := NewShuffledHashJoin(
			NewScan(ls, buildData(ls, lrows)),
			NewScan(rs, buildData(rs, rrows)),
			lk, rk, JoinType(jt), Compiled)
		if err != nil {
			t.Fatal(err)
		}
		got, err := CollectRows(rj)
		if err != nil {
			t.Fatal(err)
		}
		sortAnyRows(want)
		sortAnyRows(got)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("join type %v: engines disagree (photon %d rows, row %d rows)", jt, len(want), len(got))
		}
		// Inner joins additionally must match sort-merge join.
		if jt == exec.InnerJoin {
			smj, err := NewSortMergeJoin(
				NewScan(ls, buildData(ls, lrows)),
				NewScan(rs, buildData(rs, rrows)),
				lk, rk, Compiled)
			if err != nil {
				t.Fatal(err)
			}
			gotSMJ, err := CollectRows(smj)
			if err != nil {
				t.Fatal(err)
			}
			sortAnyRows(gotSMJ)
			if !reflect.DeepEqual(gotSMJ, want) {
				t.Errorf("SMJ disagrees with hash joins: %d vs %d rows", len(gotSMJ), len(want))
			}
		}
	}
}

func TestCollectListMatchesPhoton(t *testing.T) {
	schema := types.NewSchema(
		types.Field{Name: "g", Type: types.Int64Type},
		types.Field{Name: "s", Type: types.StringType, Nullable: true},
	)
	var rows [][]any
	for i := 0; i < 50; i++ {
		rows = append(rows, []any{int64(i % 5), fmt.Sprintf("s%02d", i)})
	}
	keys := []expr.Expr{expr.Col(0, "g", types.Int64Type)}
	specs := []expr.AggSpec{{Kind: expr.AggCollectList, Arg: expr.Col(1, "s", types.StringType), Name: "l"}}

	pAgg, _ := exec.NewHashAgg(exec.NewMemScan(schema, buildData(schema, rows)), exec.AggComplete, keys, []string{"g"}, specs)
	want, err := exec.CollectRows(pAgg, exec.NewTaskCtx(nil, 64))
	if err != nil {
		t.Fatal(err)
	}
	rAgg, _ := NewHashAgg(NewScan(schema, buildData(schema, rows)), keys, []string{"g"}, specs, Compiled)
	got, err := CollectRows(rAgg)
	if err != nil {
		t.Fatal(err)
	}
	sortAnyRows(want)
	sortAnyRows(got)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("collect_list disagreement:\nphoton %v\nrow    %v", want, got)
	}
}

func TestRowSort(t *testing.T) {
	schema := types.NewSchema(types.Field{Name: "v", Type: types.Int64Type, Nullable: true})
	rows := [][]any{{int64(3)}, {nil}, {int64(1)}, {int64(2)}}
	s := NewSort(NewScan(schema, buildData(schema, rows)), []SortKey{{Col: 0}})
	got, err := CollectRows(s)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]any{{nil}, {int64(1)}, {int64(2)}, {int64(3)}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("row sort: %v", got)
	}
}

func TestRowLimit(t *testing.T) {
	schema := types.NewSchema(types.Field{Name: "v", Type: types.Int64Type})
	var rows [][]any
	for i := 0; i < 10; i++ {
		rows = append(rows, []any{int64(i)})
	}
	got, err := CollectRows(NewLimit(NewScan(schema, buildData(schema, rows)), 4))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Errorf("limit: %d rows", len(got))
	}
}

// Fuzz-style consistency: random data and random simple expressions through
// both engines (§5.6's third testing tier).
func TestFuzzExpressionConsistency(t *testing.T) {
	schema := types.NewSchema(
		types.Field{Name: "a", Type: types.Int64Type, Nullable: true},
		types.Field{Name: "s", Type: types.StringType, Nullable: true},
	)
	colA := expr.Col(0, "a", types.Int64Type)
	colS := expr.Col(1, "s", types.StringType)
	exprs := []expr.Expr{
		expr.MustArith(expr.OpAdd, colA, expr.Int64Lit(7)),
		expr.MustArith(expr.OpMul, colA, colA),
		expr.Upper(colS),
		expr.Lower(colS),
		expr.Length(colS),
		expr.Substr(colS, 2, 3),
		expr.NewCast(colA, types.StringType),
		expr.NewCast(colS, types.Int64Type),
		mustCase(t, colA),
	}
	seeds := []int64{1, 2, 3}
	for _, seed := range seeds {
		rows := fuzzRows(seed, 200)
		for ei, e := range exprs {
			// Photon.
			scan := exec.NewMemScan(schema, buildData(schema, rows))
			proj := exec.NewProject(scan, []expr.Expr{e}, []string{"r"})
			want, err := exec.CollectRows(proj, exec.NewTaskCtx(nil, 64))
			if err != nil {
				t.Fatal(err)
			}
			// Row engine.
			for _, mode := range []Mode{Interpreted, Compiled} {
				fn, err := CompileExpr(e, mode)
				if err != nil {
					t.Fatal(err)
				}
				outSchema := types.NewSchema(types.Field{Name: "r", Type: e.Type(), Nullable: true})
				plan := NewProject(NewScan(schema, buildData(schema, rows)), []RowExpr{fn}, outSchema)
				got, err := CollectRows(plan)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					for i := range got {
						if !reflect.DeepEqual(got[i], want[i]) {
							t.Fatalf("expr %d (%s) mode %v seed %d row %d (input %v): photon=%v row=%v",
								ei, e, mode, seed, i, rows[i], want[i], got[i])
						}
					}
				}
			}
		}
	}
}

func mustCase(t *testing.T, colA expr.Expr) expr.Expr {
	t.Helper()
	c, err := expr.NewCase([]expr.CaseBranch{
		{When: expr.MustCmp(kernels.CmpLt, colA, expr.Int64Lit(0)), Then: expr.StringLit("neg")},
		{When: expr.MustCmp(kernels.CmpEq, colA, expr.Int64Lit(0)), Then: expr.StringLit("zero")},
	}, expr.StringLit("pos"))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func fuzzRows(seed int64, n int) [][]any {
	// Simple deterministic generator with NULLs, non-ASCII, numeric strings
	// and placeholder values — the raw uncurated shapes §1 describes.
	var rows [][]any
	state := uint64(seed)
	next := func() uint64 {
		state = state*6364136223846793005 + 1442695040888963407
		return state >> 16
	}
	samples := []string{"hello", "WORLD", "héllo wörld", "123", "-45", "", "N/A", "null", "9999999999999999999999", "café"}
	for i := 0; i < n; i++ {
		var a, s any
		if next()%7 != 0 {
			a = int64(next()%2000) - 1000
		}
		if next()%9 != 0 {
			s = samples[next()%uint64(len(samples))]
		}
		rows = append(rows, []any{a, s})
	}
	return rows
}
