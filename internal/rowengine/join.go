package rowengine

import (
	"fmt"
	"sort"

	"photon/internal/expr"
	"photon/internal/types"
)

// JoinType mirrors the Photon engine's join semantics.
type JoinType uint8

// Join types.
const (
	InnerJoin JoinType = iota
	LeftOuterJoin
	LeftSemiJoin
	LeftAntiJoin
)

// ShuffledHashJoin is the baseline scalar hash join: a Go map from encoded
// key to buffered rows, probed one row at a time — each probe's cache
// misses serialize, which is what the vectorized table's parallel loads
// beat in Fig. 4.
type ShuffledHashJoin struct {
	left, right Operator
	leftKeys    []RowExpr
	rightKeys   []RowExpr
	joinType    JoinType
	schema      *types.Schema

	table   map[string][][]any
	pending [][]any // remaining matches for the current probe row
	curLeft []any
	out     []any
}

// NewShuffledHashJoin builds the baseline hash join.
func NewShuffledHashJoin(left, right Operator, leftKeys, rightKeys []expr.Expr, jt JoinType, mode Mode) (*ShuffledHashJoin, error) {
	j := &ShuffledHashJoin{left: left, right: right, joinType: jt}
	var err error
	if j.leftKeys, err = compileAll(leftKeys, mode); err != nil {
		return nil, err
	}
	if j.rightKeys, err = compileAll(rightKeys, mode); err != nil {
		return nil, err
	}
	j.schema = joinSchema(left.Schema(), right.Schema(), jt)
	return j, nil
}

func compileAll(es []expr.Expr, mode Mode) ([]RowExpr, error) {
	out := make([]RowExpr, len(es))
	for i, e := range es {
		fn, err := CompileExpr(e, mode)
		if err != nil {
			return nil, err
		}
		out[i] = fn
	}
	return out, nil
}

func joinSchema(l, r *types.Schema, jt JoinType) *types.Schema {
	switch jt {
	case LeftSemiJoin, LeftAntiJoin:
		return l
	default:
		fields := append([]types.Field(nil), l.Fields...)
		for _, f := range r.Fields {
			nf := f
			if jt == LeftOuterJoin {
				nf.Nullable = true
			}
			fields = append(fields, nf)
		}
		return &types.Schema{Fields: fields}
	}
}

// Schema implements Operator.
func (j *ShuffledHashJoin) Schema() *types.Schema { return j.schema }

// evalKeyString encodes a row's join key; ok=false when any key is NULL.
func evalKeyString(fns []RowExpr, row []any) (string, bool, error) {
	vals := make([]any, len(fns))
	for i, fn := range fns {
		v, err := fn(row)
		if err != nil {
			return "", false, err
		}
		if v == nil {
			return "", false, nil
		}
		vals[i] = v
	}
	return encodeKey(vals), true, nil
}

// Open implements Operator: builds the map from the right side.
func (j *ShuffledHashJoin) Open() error {
	if err := j.left.Open(); err != nil {
		return err
	}
	if err := j.right.Open(); err != nil {
		return err
	}
	j.table = make(map[string][][]any)
	j.out = make([]any, j.schema.Len())
	for {
		row, err := j.right.NextRow()
		if err != nil {
			return err
		}
		if row == nil {
			break
		}
		k, ok, err := evalKeyString(j.rightKeys, row)
		if err != nil {
			return err
		}
		if !ok {
			continue // NULL keys never match
		}
		j.table[k] = append(j.table[k], append([]any(nil), row...))
	}
	return nil
}

// NextRow implements Operator.
func (j *ShuffledHashJoin) NextRow() ([]any, error) {
	for {
		if len(j.pending) > 0 {
			build := j.pending[0]
			j.pending = j.pending[1:]
			copy(j.out, j.curLeft)
			copy(j.out[len(j.curLeft):], build)
			return j.out, nil
		}
		row, err := j.left.NextRow()
		if err != nil || row == nil {
			return nil, err
		}
		k, ok, err := evalKeyString(j.leftKeys, row)
		if err != nil {
			return nil, err
		}
		var matches [][]any
		if ok {
			matches = j.table[k]
		}
		switch j.joinType {
		case InnerJoin:
			if len(matches) > 0 {
				j.curLeft = append(j.curLeft[:0], row...)
				j.pending = matches
			}
		case LeftOuterJoin:
			j.curLeft = append(j.curLeft[:0], row...)
			if len(matches) > 0 {
				j.pending = matches
			} else {
				copy(j.out, row)
				for c := len(row); c < len(j.out); c++ {
					j.out[c] = nil
				}
				return j.out, nil
			}
		case LeftSemiJoin:
			if len(matches) > 0 {
				return row, nil
			}
		case LeftAntiJoin:
			if len(matches) == 0 {
				return row, nil
			}
		}
	}
}

// Close implements Operator.
func (j *ShuffledHashJoin) Close() error {
	j.table = nil
	if err := j.left.Close(); err != nil {
		j.right.Close()
		return err
	}
	return j.right.Close()
}

// SortMergeJoin is Spark's default join (§6.1 footnote: Spark defaults to
// SMJ because its shuffled hash join cannot spill): both sides sort by key,
// then merge. Only inner equi-joins are supported (all the paper's SMJ
// comparisons are inner joins).
type SortMergeJoin struct {
	left, right Operator
	leftKeys    []RowExpr
	rightKeys   []RowExpr
	keyTypes    []types.DataType
	schema      *types.Schema

	lrows, rrows [][]any
	lkeys, rkeys [][]any
	li, ri       int
	group        [][]any // current right group with equal keys
	gi           int
	curLeft      []any
	curKey       []any
	out          []any
}

// NewSortMergeJoin builds an inner sort-merge join.
func NewSortMergeJoin(left, right Operator, leftKeys, rightKeys []expr.Expr, mode Mode) (*SortMergeJoin, error) {
	j := &SortMergeJoin{left: left, right: right}
	var err error
	if j.leftKeys, err = compileAll(leftKeys, mode); err != nil {
		return nil, err
	}
	if j.rightKeys, err = compileAll(rightKeys, mode); err != nil {
		return nil, err
	}
	for _, k := range leftKeys {
		j.keyTypes = append(j.keyTypes, k.Type())
	}
	j.schema = joinSchema(left.Schema(), right.Schema(), InnerJoin)
	return j, nil
}

// Schema implements Operator.
func (j *SortMergeJoin) Schema() *types.Schema { return j.schema }

func (j *SortMergeJoin) loadAndSort(op Operator, fns []RowExpr) ([][]any, [][]any, error) {
	var rows, keys [][]any
	for {
		row, err := op.NextRow()
		if err != nil {
			return nil, nil, err
		}
		if row == nil {
			break
		}
		kv := make([]any, len(fns))
		null := false
		for i, fn := range fns {
			v, err := fn(row)
			if err != nil {
				return nil, nil, err
			}
			if v == nil {
				null = true
				break
			}
			kv[i] = v
		}
		if null {
			continue
		}
		rows = append(rows, append([]any(nil), row...))
		keys = append(keys, kv)
	}
	idx := make([]int, len(rows))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		c, _ := j.compareKeys(keys[idx[a]], keys[idx[b]])
		return c < 0
	})
	sr := make([][]any, len(rows))
	sk := make([][]any, len(rows))
	for i, x := range idx {
		sr[i] = rows[x]
		sk[i] = keys[x]
	}
	return sr, sk, nil
}

func (j *SortMergeJoin) compareKeys(a, b []any) (int, error) {
	for i := range a {
		c, err := compareAny(a[i], b[i], j.keyTypes[i])
		if err != nil {
			return 0, err
		}
		if c != 0 {
			return c, nil
		}
	}
	return 0, nil
}

// Open implements Operator: the sort phase (both sides fully sorted — the
// cost Spark pays for spill-safety).
func (j *SortMergeJoin) Open() error {
	if err := j.left.Open(); err != nil {
		return err
	}
	if err := j.right.Open(); err != nil {
		return err
	}
	var err error
	if j.lrows, j.lkeys, err = j.loadAndSort(j.left, j.leftKeys); err != nil {
		return err
	}
	if j.rrows, j.rkeys, err = j.loadAndSort(j.right, j.rightKeys); err != nil {
		return err
	}
	j.li, j.ri = 0, 0
	j.out = make([]any, j.schema.Len())
	return nil
}

// NextRow implements Operator: the merge phase.
func (j *SortMergeJoin) NextRow() ([]any, error) {
	for {
		if j.group != nil && j.gi < len(j.group) {
			build := j.group[j.gi]
			j.gi++
			copy(j.out, j.curLeft)
			copy(j.out[len(j.curLeft):], build)
			return j.out, nil
		}
		j.group = nil
		if j.li >= len(j.lrows) {
			return nil, nil
		}
		lk := j.lkeys[j.li]
		// Advance right to the first key >= lk.
		for j.ri < len(j.rrows) {
			c, err := j.compareKeys(j.rkeys[j.ri], lk)
			if err != nil {
				return nil, err
			}
			if c >= 0 {
				break
			}
			j.ri++
		}
		if j.ri >= len(j.rrows) {
			return nil, nil
		}
		c, err := j.compareKeys(j.rkeys[j.ri], lk)
		if err != nil {
			return nil, err
		}
		if c > 0 {
			j.li++
			continue
		}
		// Gather the right group with this key.
		end := j.ri
		for end < len(j.rrows) {
			ce, err := j.compareKeys(j.rkeys[end], lk)
			if err != nil {
				return nil, err
			}
			if ce != 0 {
				break
			}
			end++
		}
		j.group = j.rrows[j.ri:end]
		j.gi = 0
		j.curLeft = j.lrows[j.li]
		j.curKey = lk
		j.li++
		// Note: j.ri stays at group start; the next left key may equal lk.
	}
}

// Close implements Operator.
func (j *SortMergeJoin) Close() error {
	j.lrows, j.rrows = nil, nil
	if err := j.left.Close(); err != nil {
		j.right.Close()
		return err
	}
	return j.right.Close()
}

// Sort is the baseline in-memory sort over boxed rows.
type Sort struct {
	child Operator
	keys  []SortKey
	rows  [][]any
	pos   int
}

// SortKey mirrors exec.SortKey for the row engine.
type SortKey struct {
	Col  int
	Desc bool
}

// NewSort builds the baseline sort.
func NewSort(child Operator, keys []SortKey) *Sort {
	return &Sort{child: child, keys: keys}
}

// Schema implements Operator.
func (s *Sort) Schema() *types.Schema { return s.child.Schema() }

// Open implements Operator.
func (s *Sort) Open() error {
	if err := s.child.Open(); err != nil {
		return err
	}
	s.rows = nil
	s.pos = 0
	for {
		row, err := s.child.NextRow()
		if err != nil {
			return err
		}
		if row == nil {
			break
		}
		s.rows = append(s.rows, append([]any(nil), row...))
	}
	schema := s.child.Schema()
	var sortErr error
	sort.SliceStable(s.rows, func(a, b int) bool {
		for _, k := range s.keys {
			va, vb := s.rows[a][k.Col], s.rows[b][k.Col]
			c, err := compareNullable(va, vb, schema.Field(k.Col).Type)
			if err != nil {
				sortErr = err
				return false
			}
			if c != 0 {
				if k.Desc {
					return c > 0
				}
				return c < 0
			}
		}
		return false
	})
	return sortErr
}

// compareNullable orders NULLs smallest.
func compareNullable(a, b any, t types.DataType) (int, error) {
	switch {
	case a == nil && b == nil:
		return 0, nil
	case a == nil:
		return -1, nil
	case b == nil:
		return 1, nil
	}
	return compareAny(a, b, t)
}

// NextRow implements Operator.
func (s *Sort) NextRow() ([]any, error) {
	if s.pos >= len(s.rows) {
		return nil, nil
	}
	r := s.rows[s.pos]
	s.pos++
	return r, nil
}

// Close implements Operator.
func (s *Sort) Close() error {
	s.rows = nil
	return s.child.Close()
}

// errUnsupported reports a join/operator gap.
var errUnsupported = fmt.Errorf("rowengine: unsupported operation")
