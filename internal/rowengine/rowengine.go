// Package rowengine is the baseline execution engine standing in for the
// JVM-based Databricks Runtime (Spark SQL) that the paper compares Photon
// against (§3.2, §6). It reproduces the baseline's cost profile
// mechanism-for-mechanism:
//
//   - rows are boxed ([]any), paying allocation and dynamic-type dispatch
//     per value, like Java object rows / UnsafeRow accessors;
//   - operators are row-at-a-time Volcano iterators with a virtual call per
//     row (Interpreted mode), or fused closure chains standing in for
//     whole-stage code generation (Compiled mode) — closures are built once
//     per query, eliminating per-row tree-walking just as codegen does;
//   - decimal arithmetic routes through math/big (the Java BigDecimal
//     analogue) regardless of precision, which is what makes TPC-H Q1
//     Photon's best case (§6.2);
//   - collect_list appends to boxed slices (the Scala-collections analogue
//     of Fig. 5);
//   - the engine's scan pivots columnar batches to rows, the pivot Spark
//     performs when reading columnar formats.
package rowengine

import (
	"photon/internal/types"
	"photon/internal/vector"
)

// Operator is a row-at-a-time Volcano iterator. NextRow returns nil at end
// of input. The returned slice is only valid until the next call.
type Operator interface {
	Schema() *types.Schema
	Open() error
	NextRow() ([]any, error)
	Close() error
}

// Mode selects the baseline's execution strategy.
type Mode uint8

const (
	// Interpreted walks the expression tree per row (Volcano fallback path
	// Spark uses when codegen bails out, §3.2).
	Interpreted Mode = iota
	// Compiled pre-builds closure chains per expression, standing in for
	// whole-stage code generation.
	Compiled
)

// Scan pivots column batches to rows.
type Scan struct {
	schema  *types.Schema
	batches []*vector.Batch
	pos     int
	rowIdx  int
	row     []any
}

// NewScan builds a scan over batches.
func NewScan(schema *types.Schema, batches []*vector.Batch) *Scan {
	return &Scan{schema: schema, batches: batches}
}

// Schema implements Operator.
func (s *Scan) Schema() *types.Schema { return s.schema }

// Open implements Operator.
func (s *Scan) Open() error {
	s.pos, s.rowIdx = 0, 0
	if s.row == nil {
		s.row = make([]any, s.schema.Len())
	}
	return nil
}

// NextRow implements Operator: the column-to-row pivot happens here.
func (s *Scan) NextRow() ([]any, error) {
	for {
		if s.pos >= len(s.batches) {
			return nil, nil
		}
		b := s.batches[s.pos]
		if s.rowIdx >= b.NumRows {
			s.pos++
			s.rowIdx = 0
			continue
		}
		i := s.rowIdx
		s.rowIdx++
		for c, v := range b.Vecs {
			s.row[c] = v.Get(i) // boxes every value
		}
		return s.row, nil
	}
}

// Close implements Operator.
func (s *Scan) Close() error { return nil }

// Filter drops rows failing a predicate.
type Filter struct {
	child Operator
	pred  RowPred
}

// NewFilter builds a filter.
func NewFilter(child Operator, pred RowPred) *Filter {
	return &Filter{child: child, pred: pred}
}

// Schema implements Operator.
func (f *Filter) Schema() *types.Schema { return f.child.Schema() }

// Open implements Operator.
func (f *Filter) Open() error { return f.child.Open() }

// NextRow implements Operator.
func (f *Filter) NextRow() ([]any, error) {
	for {
		row, err := f.child.NextRow()
		if err != nil || row == nil {
			return nil, err
		}
		ok, err := f.pred(row)
		if err != nil {
			return nil, err
		}
		if ok {
			return row, nil
		}
	}
}

// Close implements Operator.
func (f *Filter) Close() error { return f.child.Close() }

// Project evaluates row expressions.
type Project struct {
	child  Operator
	exprs  []RowExpr
	schema *types.Schema
	out    []any
}

// NewProject builds a projection with the given output schema.
func NewProject(child Operator, exprs []RowExpr, schema *types.Schema) *Project {
	return &Project{child: child, exprs: exprs, schema: schema}
}

// Schema implements Operator.
func (p *Project) Schema() *types.Schema { return p.schema }

// Open implements Operator.
func (p *Project) Open() error {
	p.out = make([]any, len(p.exprs))
	return p.child.Open()
}

// NextRow implements Operator.
func (p *Project) NextRow() ([]any, error) {
	row, err := p.child.NextRow()
	if err != nil || row == nil {
		return nil, err
	}
	for i, e := range p.exprs {
		v, err := e(row)
		if err != nil {
			return nil, err
		}
		p.out[i] = v
	}
	return p.out, nil
}

// Close implements Operator.
func (p *Project) Close() error { return p.child.Close() }

// Limit passes the first n rows.
type Limit struct {
	child Operator
	n     int64
	seen  int64
}

// NewLimit builds LIMIT n.
func NewLimit(child Operator, n int64) *Limit { return &Limit{child: child, n: n} }

// Schema implements Operator.
func (l *Limit) Schema() *types.Schema { return l.child.Schema() }

// Open implements Operator.
func (l *Limit) Open() error {
	l.seen = 0
	return l.child.Open()
}

// NextRow implements Operator.
func (l *Limit) NextRow() ([]any, error) {
	if l.seen >= l.n {
		return nil, nil
	}
	row, err := l.child.NextRow()
	if err != nil || row == nil {
		return nil, err
	}
	l.seen++
	return row, nil
}

// Close implements Operator.
func (l *Limit) Close() error { return l.child.Close() }

// CollectRows drains an operator (test/result helper). Rows are copied.
func CollectRows(op Operator) ([][]any, error) {
	if err := op.Open(); err != nil {
		return nil, err
	}
	defer op.Close()
	var out [][]any
	for {
		row, err := op.NextRow()
		if err != nil {
			return nil, err
		}
		if row == nil {
			return out, nil
		}
		out = append(out, append([]any(nil), row...))
	}
}
