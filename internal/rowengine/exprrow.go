package rowengine

import (
	"fmt"
	"math"
	"math/big"
	"strconv"
	"strings"

	"photon/internal/expr"
	"photon/internal/kernels"
	"photon/internal/types"
)

// RowExpr evaluates an expression against one boxed row.
type RowExpr func(row []any) (any, error)

// RowPred evaluates a predicate against one boxed row (NULL counts as no
// match, SQL semantics).
type RowPred func(row []any) (bool, error)

// tri is a three-valued boolean.
type tri uint8

const (
	triFalse tri = iota
	triTrue
	triNull
)

// triPred evaluates to three-valued logic (needed for NOT).
type triPred func(row []any) (tri, error)

// CompileExpr lowers a vectorized expression tree into a row closure. In
// Compiled mode the closure chain is built once per query (the whole-stage
// codegen analogue); Interpreted mode wraps a per-row tree walk.
func CompileExpr(e expr.Expr, mode Mode) (RowExpr, error) {
	if mode == Interpreted {
		return func(row []any) (any, error) { return evalRow(e, row) }, nil
	}
	return compileExpr(e)
}

// CompilePred lowers a filter tree into a row predicate.
func CompilePred(f expr.Filter, mode Mode) (RowPred, error) {
	if mode == Interpreted {
		return func(row []any) (bool, error) {
			t, err := evalPred(f, row)
			return t == triTrue, err
		}, nil
	}
	tp, err := compilePred(f)
	if err != nil {
		return nil, err
	}
	return func(row []any) (bool, error) {
		t, err := tp(row)
		return t == triTrue, err
	}, nil
}

// ----- big-decimal helpers (the BigDecimal analogue) -----

// bigOfDec converts the fixed-point value through math/big — the per-row
// conversion cost is intentional (§6.2).
func bigOfDec(d types.Decimal128) *big.Int { return d.Big() }

func decOfBig(b *big.Int) (types.Decimal128, error) {
	d, ok := types.DecimalFromBig(b)
	if !ok {
		return types.Decimal128{}, fmt.Errorf("rowengine: decimal overflow")
	}
	return d, nil
}

var bigTen = big.NewInt(10)

func bigPow10(n int) *big.Int {
	return new(big.Int).Exp(bigTen, big.NewInt(int64(n)), nil)
}

// ----- interpreted tree walk -----

// evalRow walks the expression tree for one row (the Volcano interpreted
// path).
func evalRow(e expr.Expr, row []any) (any, error) {
	switch n := e.(type) {
	case *expr.ColRef:
		return row[n.Idx], nil
	case *expr.Literal:
		if n.IsNullLit() {
			return nil, nil
		}
		return n.Val, nil
	case *expr.Arith:
		l, err := evalRow(n.Left, row)
		if err != nil {
			return nil, err
		}
		r, err := evalRow(n.Right, row)
		if err != nil {
			return nil, err
		}
		return applyArith(n, l, r)
	case *expr.Cmp:
		t, err := cmpTri(n, row, evalRow)
		if err != nil {
			return nil, err
		}
		return triToAny(t), nil
	case *expr.IsNull:
		v, err := evalRow(n.Inner, row)
		if err != nil {
			return nil, err
		}
		return (v == nil) != n.Negate, nil
	case *expr.Case:
		for _, br := range n.Branches {
			t, err := evalPred(br.When, row)
			if err != nil {
				return nil, err
			}
			if t == triTrue {
				return evalRow(br.Then, row)
			}
		}
		if n.Else == nil {
			return nil, nil
		}
		return evalRow(n.Else, row)
	case *expr.Coalesce:
		for _, a := range n.Args {
			v, err := evalRow(a, row)
			if err != nil {
				return nil, err
			}
			if v != nil {
				return v, nil
			}
		}
		return nil, nil
	case *expr.Cast:
		v, err := evalRow(n.Inner, row)
		if err != nil {
			return nil, err
		}
		return applyCast(v, n.Inner.Type(), n.To)
	case *expr.StrFunc:
		return evalStrFunc(n, row, evalRow)
	case *expr.Unary:
		v, err := evalRow(n.Inner, row)
		if err != nil {
			return nil, err
		}
		return applyUnary(n, v)
	case *expr.Extract:
		v, err := evalRow(n.Inner, row)
		if err != nil {
			return nil, err
		}
		return applyExtract(n, v, n.Inner.Type())
	case *expr.DateAdd:
		v, err := evalRow(n.Inner, row)
		if err != nil {
			return nil, err
		}
		if v == nil {
			return nil, nil
		}
		return v.(int32) + n.Days, nil
	}
	return nil, fmt.Errorf("rowengine: unsupported expression %T", e)
}

func triToAny(t tri) any {
	switch t {
	case triTrue:
		return true
	case triFalse:
		return false
	}
	return nil
}

// evalPred walks a filter tree for one row with three-valued logic.
func evalPred(f expr.Filter, row []any) (tri, error) {
	switch n := f.(type) {
	case *expr.Cmp:
		return cmpTri(n, row, evalRow)
	case *expr.And:
		result := triTrue
		for _, sub := range n.Filters {
			t, err := evalPred(sub, row)
			if err != nil {
				return triNull, err
			}
			if t == triFalse {
				return triFalse, nil
			}
			if t == triNull {
				result = triNull
			}
		}
		return result, nil
	case *expr.Or:
		l, err := evalPred(n.Left, row)
		if err != nil {
			return triNull, err
		}
		if l == triTrue {
			return triTrue, nil
		}
		r, err := evalPred(n.Right, row)
		if err != nil {
			return triNull, err
		}
		if r == triTrue {
			return triTrue, nil
		}
		if l == triNull || r == triNull {
			return triNull, nil
		}
		return triFalse, nil
	case *expr.Not:
		t, err := evalPred(n.Inner, row)
		if err != nil {
			return triNull, err
		}
		switch t {
		case triTrue:
			return triFalse, nil
		case triFalse:
			return triTrue, nil
		}
		return triNull, nil
	case *expr.Between:
		v, err := evalRow(n.Inner, row)
		if err != nil {
			return triNull, err
		}
		if v == nil {
			return triNull, nil
		}
		lo, hi := n.Lo.Val, n.Hi.Val
		cLo, err := compareAny(v, normLit(n.Lo, n.Inner.Type()), n.Inner.Type())
		if err != nil {
			return triNull, err
		}
		cHi, err := compareAny(v, normLit(n.Hi, n.Inner.Type()), n.Inner.Type())
		if err != nil {
			return triNull, err
		}
		_ = lo
		_ = hi
		if cLo >= 0 && cHi <= 0 {
			return triTrue, nil
		}
		return triFalse, nil
	case *expr.In:
		v, err := evalRow(n.Inner, row)
		if err != nil {
			return triNull, err
		}
		if v == nil {
			return triNull, nil
		}
		for _, lit := range n.Vals {
			if lit.IsNullLit() {
				continue
			}
			c, err := compareAny(v, normLit(lit, n.Inner.Type()), n.Inner.Type())
			if err != nil {
				return triNull, err
			}
			if c == 0 {
				return triTrue, nil
			}
		}
		return triFalse, nil
	case *expr.Like:
		v, err := evalRow(n.Inner, row)
		if err != nil {
			return triNull, err
		}
		if v == nil {
			return triNull, nil
		}
		m := n.Compiled().Match([]byte(v.(string)))
		if m != n.Negate {
			return triTrue, nil
		}
		return triFalse, nil
	case *expr.IsNull:
		v, err := evalRow(n.Inner, row)
		if err != nil {
			return triNull, err
		}
		if (v == nil) != n.Negate {
			return triTrue, nil
		}
		return triFalse, nil
	case *expr.BoolColFilter:
		v, err := evalRow(n.Inner, row)
		if err != nil {
			return triNull, err
		}
		if v == nil {
			return triNull, nil
		}
		if v.(bool) {
			return triTrue, nil
		}
		return triFalse, nil
	}
	return triNull, fmt.Errorf("rowengine: unsupported filter %T", f)
}

// cmpTri evaluates a comparison with a pluggable child evaluator.
func cmpTri(n *expr.Cmp, row []any, ev func(expr.Expr, []any) (any, error)) (tri, error) {
	l, err := ev(n.Left, row)
	if err != nil {
		return triNull, err
	}
	r, err := ev(n.Right, row)
	if err != nil {
		return triNull, err
	}
	if l == nil || r == nil {
		return triNull, nil
	}
	// Decimal comparisons align scales through big.Int.
	t := n.Left.Type()
	if t.ID == types.Decimal {
		lb := bigOfDec(l.(types.Decimal128))
		rb := bigOfDec(r.(types.Decimal128))
		ls, rs := n.Left.Type().Scale, n.Right.Type().Scale
		if ls < rs {
			lb.Mul(lb, bigPow10(rs-ls))
		} else if rs < ls {
			rb.Mul(rb, bigPow10(ls-rs))
		}
		return cmpResultToTri(n.Op, lb.Cmp(rb)), nil
	}
	c, err := compareAny(l, r, t)
	if err != nil {
		return triNull, err
	}
	return cmpResultToTri(n.Op, c), nil
}

func cmpResultToTri(op kernels.CmpOp, c int) tri {
	var ok bool
	switch op {
	case kernels.CmpEq:
		ok = c == 0
	case kernels.CmpNe:
		ok = c != 0
	case kernels.CmpLt:
		ok = c < 0
	case kernels.CmpLe:
		ok = c <= 0
	case kernels.CmpGt:
		ok = c > 0
	case kernels.CmpGe:
		ok = c >= 0
	}
	if ok {
		return triTrue
	}
	return triFalse
}

// normLit extracts a literal's Go value normalized to the comparison type.
func normLit(l *expr.Literal, t types.DataType) any {
	if l.IsNullLit() {
		return nil
	}
	if t.ID == types.Decimal {
		return l.Dec(t.Scale)
	}
	return l.Val
}

// compareAny compares two boxed values of the same type.
func compareAny(a, b any, t types.DataType) (int, error) {
	switch t.ID {
	case types.Bool:
		av, bv := a.(bool), b.(bool)
		switch {
		case av == bv:
			return 0, nil
		case bv:
			return -1, nil
		default:
			return 1, nil
		}
	case types.Int32, types.Date:
		av, bv := a.(int32), b.(int32)
		switch {
		case av < bv:
			return -1, nil
		case av > bv:
			return 1, nil
		}
		return 0, nil
	case types.Int64, types.Timestamp:
		av, bv := a.(int64), b.(int64)
		switch {
		case av < bv:
			return -1, nil
		case av > bv:
			return 1, nil
		}
		return 0, nil
	case types.Float64:
		av, bv := a.(float64), b.(float64)
		switch {
		case av < bv:
			return -1, nil
		case av > bv:
			return 1, nil
		}
		return 0, nil
	case types.String:
		return strings.Compare(a.(string), b.(string)), nil
	case types.Decimal:
		return bigOfDec(a.(types.Decimal128)).Cmp(bigOfDec(b.(types.Decimal128))), nil
	}
	return 0, fmt.Errorf("rowengine: cannot compare %v", t)
}

// applyArith performs boxed arithmetic; decimals go through math/big.
func applyArith(n *expr.Arith, l, r any) (any, error) {
	if l == nil || r == nil {
		return nil, nil
	}
	t := n.Type()
	switch t.ID {
	case types.Int32:
		a, b := l.(int32), r.(int32)
		return arithInt(n.Op, int64(a), int64(b), func(v int64) any { return int32(v) })
	case types.Int64:
		return arithInt(n.Op, l.(int64), r.(int64), func(v int64) any { return v })
	case types.Float64:
		a, b := l.(float64), r.(float64)
		switch n.Op {
		case expr.OpAdd:
			return a + b, nil
		case expr.OpSub:
			return a - b, nil
		case expr.OpMul:
			return a * b, nil
		case expr.OpDiv:
			if b == 0 {
				return nil, nil
			}
			return a / b, nil
		}
	case types.Decimal:
		// BigDecimal-analogue path: every operand converts to big.Int,
		// scales align, and the result converts back.
		lt, rt := n.Left.Type(), n.Right.Type()
		lb := bigOfDec(l.(types.Decimal128))
		rb := bigOfDec(r.(types.Decimal128))
		switch n.Op {
		case expr.OpAdd, expr.OpSub:
			s := max(lt.Scale, rt.Scale)
			if lt.Scale < s {
				lb.Mul(lb, bigPow10(s-lt.Scale))
			}
			if rt.Scale < s {
				rb.Mul(rb, bigPow10(s-rt.Scale))
			}
			var out big.Int
			if n.Op == expr.OpAdd {
				out.Add(lb, rb)
			} else {
				out.Sub(lb, rb)
			}
			return decOfBig(&out)
		case expr.OpMul:
			var out big.Int
			out.Mul(lb, rb)
			return decOfBig(&out)
		case expr.OpDiv:
			if rb.Sign() == 0 {
				return nil, nil
			}
			// result scale per decimalResultType: shift then divide.
			shift := t.Scale - lt.Scale + rt.Scale
			lb.Mul(lb, bigPow10(shift))
			var out big.Int
			out.Quo(lb, rb)
			return decOfBig(&out)
		}
	}
	return nil, fmt.Errorf("rowengine: unsupported arithmetic %v over %v", n.Op, t)
}

func arithInt(op expr.ArithOp, a, b int64, wrap func(int64) any) (any, error) {
	switch op {
	case expr.OpAdd:
		return wrap(a + b), nil
	case expr.OpSub:
		return wrap(a - b), nil
	case expr.OpMul:
		return wrap(a * b), nil
	case expr.OpDiv:
		if b == 0 {
			return nil, nil
		}
		return wrap(a / b), nil
	case expr.OpMod:
		if b == 0 {
			return nil, nil
		}
		return wrap(a % b), nil
	}
	return nil, fmt.Errorf("rowengine: bad arith op")
}

// applyUnary evaluates neg/sqrt/abs on a boxed value.
func applyUnary(n *expr.Unary, v any) (any, error) {
	if v == nil {
		return nil, nil
	}
	switch n.Op {
	case expr.OpSqrt:
		return math.Sqrt(v.(float64)), nil
	case expr.OpNeg:
		switch x := v.(type) {
		case int32:
			return -x, nil
		case int64:
			return -x, nil
		case float64:
			return -x, nil
		case types.Decimal128:
			return x.Neg(), nil
		}
	case expr.OpAbs:
		switch x := v.(type) {
		case int32:
			if x < 0 {
				return -x, nil
			}
			return x, nil
		case int64:
			if x < 0 {
				return -x, nil
			}
			return x, nil
		case float64:
			return math.Abs(x), nil
		case types.Decimal128:
			return x.Abs(), nil
		}
	}
	return nil, fmt.Errorf("rowengine: unsupported unary")
}

// applyExtract evaluates year/month/day.
func applyExtract(n *expr.Extract, v any, from types.DataType) (any, error) {
	if v == nil {
		return nil, nil
	}
	var days int32
	if from.ID == types.Timestamp {
		days = int32(v.(int64) / types.MicrosPerSecond / types.SecondsPerDay)
	} else {
		days = v.(int32)
	}
	switch n.Field {
	case expr.FieldYear:
		return types.DateYear(days), nil
	case expr.FieldMonth:
		return types.DateMonth(days), nil
	default:
		return types.DateDay(days), nil
	}
}

// evalStrFunc evaluates string functions per row. Like Java, every call
// allocates a fresh string.
func evalStrFunc(n *expr.StrFunc, row []any, ev func(expr.Expr, []any) (any, error)) (any, error) {
	v, err := ev(n.Inner, row)
	if err != nil {
		return nil, err
	}
	if v == nil {
		return nil, nil
	}
	s := v.(string)
	switch n.Kind {
	case expr.StrUpper:
		// Like DBR, special-case ASCII per row; general path uses the
		// Unicode tables (the ICU analogue).
		if kernels.IsASCII([]byte(s)) {
			b := make([]byte, len(s))
			kernels.UpperASCIIInto(b, []byte(s))
			return string(b), nil
		}
		return strings.ToUpper(s), nil
	case expr.StrLower:
		if kernels.IsASCII([]byte(s)) {
			b := make([]byte, len(s))
			kernels.LowerASCIIInto(b, []byte(s))
			return string(b), nil
		}
		return strings.ToLower(s), nil
	case expr.StrLength:
		return int32(len([]rune(s))), nil
	case expr.StrTrim:
		return strings.Trim(s, " "), nil
	case expr.StrSubstr:
		r := []rune(s)
		start := n.SubstrStart
		from := start - 1
		if start <= 0 {
			if start == 0 {
				from = 0
			} else {
				from = len(r) + start
				if from < 0 {
					from = 0
				}
			}
		}
		if from >= len(r) || n.SubstrLen <= 0 {
			return "", nil
		}
		to := min(from+n.SubstrLen, len(r))
		return string(r[from:to]), nil
	case expr.StrConcat:
		w, err := ev(n.Args[0], row)
		if err != nil {
			return nil, err
		}
		if w == nil {
			return nil, nil
		}
		return s + w.(string), nil
	}
	return nil, fmt.Errorf("rowengine: unsupported string function")
}

// applyCast converts a boxed value.
func applyCast(v any, from, to types.DataType) (any, error) {
	if v == nil {
		return nil, nil
	}
	if from.Equal(to) {
		return v, nil
	}
	switch from.ID {
	case types.Int32, types.Date:
		x := v.(int32)
		switch to.ID {
		case types.Int64:
			return int64(x), nil
		case types.Float64:
			return float64(x), nil
		case types.Decimal:
			d := new(big.Int).Mul(big.NewInt(int64(x)), bigPow10(to.Scale))
			return decOfBig(d)
		case types.String:
			if from.ID == types.Date {
				return types.FormatDate(x), nil
			}
			return strconv.FormatInt(int64(x), 10), nil
		}
	case types.Int64, types.Timestamp:
		x := v.(int64)
		switch to.ID {
		case types.Int32:
			return int32(x), nil
		case types.Float64:
			return float64(x), nil
		case types.Decimal:
			d := new(big.Int).Mul(big.NewInt(x), bigPow10(to.Scale))
			return decOfBig(d)
		case types.String:
			if from.ID == types.Timestamp {
				return types.FormatTimestamp(x), nil
			}
			return strconv.FormatInt(x, 10), nil
		case types.Date:
			return int32(x / types.MicrosPerSecond / types.SecondsPerDay), nil
		}
	case types.Float64:
		x := v.(float64)
		switch to.ID {
		case types.Int32:
			return int32(x), nil
		case types.Int64:
			return int64(x), nil
		case types.String:
			return strconv.FormatFloat(x, 'g', -1, 64), nil
		case types.Decimal:
			scaled := x * math.Pow(10, float64(to.Scale))
			return types.DecimalFromInt64(int64(math.Round(scaled))), nil
		}
	case types.Decimal:
		x := v.(types.Decimal128)
		switch to.ID {
		case types.Decimal:
			b := bigOfDec(x)
			if to.Scale >= from.Scale {
				b.Mul(b, bigPow10(to.Scale-from.Scale))
			} else {
				b.Quo(b, bigPow10(from.Scale-to.Scale))
			}
			return decOfBig(b)
		case types.Float64:
			f, _ := new(big.Float).SetInt(bigOfDec(x)).Float64()
			return f / math.Pow(10, float64(from.Scale)), nil
		case types.Int64:
			q := new(big.Int).Quo(bigOfDec(x), bigPow10(from.Scale))
			return q.Int64(), nil
		case types.String:
			return types.FormatDecimal(x, from.Scale), nil
		}
	case types.String:
		s := v.(string)
		switch to.ID {
		case types.Int32:
			x, err := strconv.ParseInt(s, 10, 32)
			if err != nil {
				return nil, nil
			}
			return int32(x), nil
		case types.Int64:
			x, err := strconv.ParseInt(s, 10, 64)
			if err != nil {
				return nil, nil
			}
			return x, nil
		case types.Float64:
			x, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return nil, nil
			}
			return x, nil
		case types.Date:
			x, err := types.ParseDate(s)
			if err != nil {
				return nil, nil
			}
			return x, nil
		case types.Timestamp:
			x, err := types.ParseTimestamp(s)
			if err != nil {
				return nil, nil
			}
			return x, nil
		case types.Decimal:
			x, err := types.ParseDecimal(s, to.Scale)
			if err != nil {
				return nil, nil
			}
			return x, nil
		}
	case types.Bool:
		x := v.(bool)
		switch to.ID {
		case types.Int32:
			if x {
				return int32(1), nil
			}
			return int32(0), nil
		case types.Int64:
			if x {
				return int64(1), nil
			}
			return int64(0), nil
		case types.String:
			return strconv.FormatBool(x), nil
		}
	}
	return nil, fmt.Errorf("rowengine: unsupported cast %v -> %v", from, to)
}
