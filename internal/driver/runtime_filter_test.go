package driver

import (
	"context"
	"fmt"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	"photon/internal/catalog"
	"photon/internal/sql"
	"photon/internal/sql/catalyst"
	"photon/internal/storage/delta"
	"photon/internal/tpch"
	"photon/internal/types"
	"photon/internal/vector"
)

// TestRuntimeFilterEquivalence is the correctness gate of the runtime-filter
// framework: filters are strictly best-effort, so enabling them must never
// change any result. Every TPC-H query runs at parallelism 1 (reference) and
// parallelism 4 — default planning and forced-shuffle joins — with filters
// on and off, and all five result sets must agree.
func TestRuntimeFilterEquivalence(t *testing.T) {
	cat := tpch.NewGen(0.002).Generate()
	for _, q := range tpch.QueryNumbers() {
		q := q
		t.Run(fmt.Sprintf("Q%02d", q), func(t *testing.T) {
			ref := render(runTPCH(t, cat, q, Options{Parallelism: 1, ShuffleDir: t.TempDir()}))
			sort.Strings(ref)
			variants := []struct {
				name string
				opts Options
			}{
				{"par4-on", Options{Parallelism: 4, ShuffleDir: t.TempDir()}},
				{"par4-off", Options{Parallelism: 4, ShuffleDir: t.TempDir(), DisableRuntimeFilters: true}},
				{"par4-shuffle-on", Options{Parallelism: 4, ShuffleDir: t.TempDir(), BroadcastRows: -1}},
				{"par4-shuffle-off", Options{Parallelism: 4, ShuffleDir: t.TempDir(), BroadcastRows: -1, DisableRuntimeFilters: true}},
			}
			for _, v := range variants {
				got := render(runTPCH(t, cat, q, v.opts))
				sort.Strings(got)
				if !reflect.DeepEqual(ref, got) {
					t.Fatalf("Q%d %s: %d rows != reference %d rows", q, v.name, len(got), len(ref))
				}
			}
		})
	}
}

// rfFixture builds a Delta fact table of 4 files with disjoint sorted key
// ranges ([0,1000), [1000,2000), ...) and an in-memory dim table whose keys
// all fall inside the second file, then returns the catalog.
func rfFixture(t *testing.T) *catalog.Catalog {
	t.Helper()
	schema := &types.Schema{Fields: []types.Field{
		{Name: "k", Type: types.Int64Type},
		{Name: "v", Type: types.Int64Type},
	}}
	dtbl, err := delta.Create(filepath.Join(t.TempDir(), "fact"), schema, nil)
	if err != nil {
		t.Fatal(err)
	}
	for f := 0; f < 4; f++ {
		b := vector.NewBatch(schema, 1000)
		for i := 0; i < 1000; i++ {
			b.Vecs[0].I64[i] = int64(f*1000 + i)
			b.Vecs[1].I64[i] = int64(i)
		}
		b.NumRows = 1000
		if err := dtbl.Append([]*vector.Batch{b}, nil); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := dtbl.Snapshot(-1)
	if err != nil {
		t.Fatal(err)
	}
	cat := catalog.New()
	cat.Register(&catalog.DeltaTable{TableName: "fact", Tbl: dtbl, Snap: snap})

	dimSchema := &types.Schema{Fields: []types.Field{{Name: "dk", Type: types.Int64Type}}}
	db := vector.NewBatch(dimSchema, 10)
	for i := 0; i < 10; i++ {
		db.Vecs[0].I64[i] = int64(1500 + i)
	}
	db.NumRows = 10
	cat.Register(&catalog.MemTable{TableName: "dim", Sch: dimSchema, Batches: []*vector.Batch{db}})
	return cat
}

// runRF plans and runs one query over the fixture catalog.
func runRF(t *testing.T, cat *catalog.Catalog, query string, opts Options) ([][]any, RunStats) {
	t.Helper()
	stmt, err := sql.Parse(query)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := sql.Analyze(cat, stmt)
	if err != nil {
		t.Fatal(err)
	}
	plan, err = catalyst.Optimize(plan)
	if err != nil {
		t.Fatal(err)
	}
	var rs RunStats
	opts.Stats = &rs
	rows, _, err := Run(context.Background(), plan, opts)
	if err != nil {
		t.Fatal(err)
	}
	return rows, rs
}

// TestRuntimeFilterDeltaFilePruning is the level-1 integration test: a
// build side covering a narrow key range must skip whole Delta files of the
// probe scan via the published min/max envelope, the pruning must show up
// in the EXPLAIN ANALYZE profile, and the result must match the unfiltered
// run exactly.
func TestRuntimeFilterDeltaFilePruning(t *testing.T) {
	cat := rfFixture(t)
	const q = "SELECT count(*) FROM fact JOIN dim ON k = dk"

	rows, rs := runRF(t, cat, q, Options{Parallelism: 4, ShuffleDir: t.TempDir()})
	if len(rows) != 1 || rows[0][0] != int64(10) {
		t.Fatalf("filtered result = %v, want [[10]]", rows)
	}
	rowsOff, _ := runRF(t, cat, q, Options{
		Parallelism: 4, ShuffleDir: t.TempDir(), DisableRuntimeFilters: true,
	})
	if !reflect.DeepEqual(rows, rowsOff) {
		t.Fatalf("filters changed the result: on=%v off=%v", rows, rowsOff)
	}

	if rs.Profile == nil {
		t.Fatal("no profile")
	}
	var files, pruned int64
	for _, st := range rs.Profile.Stages {
		files += st.RFFilesPruned
		pruned += st.RFRowsPruned
	}
	// Dim keys [1500,1509] touch only the second file: the other three
	// (3000 rows) must be skipped without being decoded.
	if files != 3 {
		t.Errorf("RFFilesPruned = %d, want 3\n%s", files, rs.Profile.Render())
	}
	if pruned < 3000 {
		t.Errorf("RFRowsPruned = %d, want >= 3000\n%s", pruned, rs.Profile.Render())
	}
	if !strings.Contains(rs.Profile.Render(), " rf[") {
		t.Errorf("profile render missing rf[...] segment:\n%s", rs.Profile.Render())
	}
}

// TestRuntimeFilterShuffleJoinPruning forces the shuffle-join path
// (BroadcastRows < 0): the probe side must be filtered before it is
// partitioned, shrinking both the shuffle volume and the probe input.
func TestRuntimeFilterShuffleJoinPruning(t *testing.T) {
	cat := rfFixture(t)
	const q = "SELECT count(*) FROM fact JOIN dim ON k = dk"

	rows, rs := runRF(t, cat, q, Options{
		Parallelism: 4, ShuffleDir: t.TempDir(), BroadcastRows: -1,
	})
	if len(rows) != 1 || rows[0][0] != int64(10) {
		t.Fatalf("result = %v, want [[10]]", rows)
	}
	rowsOff, rsOff := runRF(t, cat, q, Options{
		Parallelism: 4, ShuffleDir: t.TempDir(), BroadcastRows: -1, DisableRuntimeFilters: true,
	})
	if !reflect.DeepEqual(rows, rowsOff) {
		t.Fatalf("filters changed the result: on=%v off=%v", rows, rowsOff)
	}

	var prunedRows, shufOn, shufOff int64
	for _, st := range rs.Profile.Stages {
		prunedRows += st.RFRowsPruned
		shufOn += st.ShuffleRows
	}
	for _, st := range rsOff.Profile.Stages {
		shufOff += st.ShuffleRows
	}
	if prunedRows == 0 {
		t.Errorf("shuffle join pruned no rows\n%s", rs.Profile.Render())
	}
	if shufOn >= shufOff {
		t.Errorf("shuffled rows did not shrink: on=%d off=%d", shufOn, shufOff)
	}
}
