package driver

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"

	"photon/internal/fault"
	"photon/internal/tpch"
)

// TestDecimal64Equivalence is the correctness gate of the narrow-decimal
// fast path: it is a pure execution-strategy choice, so every TPC-H query
// must produce byte-identical results with the path forced on and off, at
// parallelism 1 and 4 (exercising the narrow hash lanes and the int64 sum
// accumulators through partial/final aggregation and shuffles).
func TestDecimal64Equivalence(t *testing.T) {
	cat := tpch.NewGen(0.002).Generate()
	for _, q := range tpch.QueryNumbers() {
		q := q
		t.Run(fmt.Sprintf("Q%02d", q), func(t *testing.T) {
			ref := render(runTPCH(t, cat, q, Options{
				Parallelism: 1, ShuffleDir: t.TempDir(), DisableDecimal64: true,
			}))
			sort.Strings(ref)
			variants := []struct {
				name string
				opts Options
			}{
				{"par1-dec64", Options{Parallelism: 1, ShuffleDir: t.TempDir()}},
				{"par4-dec64", Options{Parallelism: 4, ShuffleDir: t.TempDir()}},
				{"par4-dec128", Options{Parallelism: 4, ShuffleDir: t.TempDir(), DisableDecimal64: true}},
				{"par4-shuffle-dec64", Options{Parallelism: 4, ShuffleDir: t.TempDir(), BroadcastRows: -1}},
			}
			for _, v := range variants {
				got := render(runTPCH(t, cat, q, v.opts))
				sort.Strings(got)
				if !reflect.DeepEqual(ref, got) {
					t.Fatalf("Q%d %s: %d rows != reference %d rows", q, v.name, len(got), len(ref))
				}
			}
		})
	}
}

// TestDecimal64EquivalenceUnderChaos re-checks the narrow path with
// deterministic fault injection armed on the retry-covered distributed
// sites: task re-runs restart int64 accumulators mid-query, and results
// must still match the clean 128-bit reference.
func TestDecimal64EquivalenceUnderChaos(t *testing.T) {
	cat := tpch.NewGen(0.002).Generate()
	refs := map[int][]string{}
	for _, q := range []int{1, 3, 17} { // decimal-aggregation-heavy queries
		ref := render(runTPCH(t, cat, q, Options{
			Parallelism: 1, ShuffleDir: t.TempDir(), DisableDecimal64: true,
		}))
		sort.Strings(ref)
		refs[q] = ref
	}

	r := fault.NewRegistry(29)
	for _, s := range []fault.Site{fault.ShuffleWrite, fault.ShuffleRead, fault.BroadcastFetch, fault.TaskStart} {
		r.Arm(s, fault.Policy{FailN: 1})
	}
	defer fault.Activate(r)()

	for q, ref := range refs {
		got := render(runTPCH(t, cat, q, Options{
			Parallelism: 4,
			ShuffleDir:  t.TempDir(),
			Pool:        faultTolerantPool(4, 8),
		}))
		sort.Strings(got)
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("Q%d dec64 under chaos: %d rows != reference %d rows", q, len(got), len(ref))
		}
	}
	if r.TotalFires() == 0 {
		t.Error("chaos variant injected zero faults")
	}
}

// TestDecimal64Profile: Q1 at sample scale stays entirely on the narrow
// path, and the merged EXPLAIN ANALYZE stage lines say so.
func TestDecimal64Profile(t *testing.T) {
	cat := tpch.NewGen(0.002).Generate()
	var rs RunStats
	runTPCH(t, cat, 1, Options{
		Parallelism: 4, ShuffleDir: t.TempDir(), Stats: &rs,
	})
	if rs.Profile == nil {
		t.Fatal("missing profile")
	}
	var batches, escapes int64
	for _, st := range rs.Profile.Stages {
		batches += st.Dec64Batches
		escapes += st.Dec64Escapes
	}
	if batches == 0 {
		t.Errorf("Q1 reported no narrow-decimal batches\n%s", rs.Profile.Render())
	}
	if escapes != 0 {
		t.Errorf("Q1 at sample scale escaped %d batches\n%s", escapes, rs.Profile.Render())
	}
	if !strings.Contains(rs.Profile.Render(), "dec64[batches=") {
		t.Errorf("profile missing dec64[...] stage line:\n%s", rs.Profile.Render())
	}

	// With the knob off, the counters (and the profile line) must vanish.
	var off RunStats
	runTPCH(t, cat, 1, Options{
		Parallelism: 4, ShuffleDir: t.TempDir(), Stats: &off, DisableDecimal64: true,
	})
	if off.Profile == nil {
		t.Fatal("missing disabled-path profile")
	}
	if strings.Contains(off.Profile.Render(), "dec64[batches=") {
		t.Errorf("disabled path still reports dec64 batches:\n%s", off.Profile.Render())
	}
}
