// Package driver runs optimized logical plans on the cluster substrate:
// the driver node plans stages (§2.2/§2.3), launches parallel tasks that
// evaluate scan→filter→join pipelines and partial aggregation per data
// partition, exchanges rows through the shuffle layer with adaptive
// encodings, and finishes on the driver (gather, k-way merge, limit).
// Stage boundaries are blocking, so per-stage shuffle statistics are
// available for adaptive decisions (AQE partition coalescing, §5.5).
package driver

import (
	"context"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"photon/internal/exec"
	"photon/internal/mem"
	"photon/internal/obs"
	"photon/internal/rf"
	"photon/internal/sched"
	"photon/internal/shuffle"
	"photon/internal/sql"
	"photon/internal/sql/catalyst"
	"photon/internal/types"
	"photon/internal/vector"
)

// Options configure a distributed run.
type Options struct {
	Parallelism int
	ShuffleDir  string
	Mem         *mem.Manager
	BatchSize   int
	Config      catalyst.Config
	// BroadcastRows is the broadcast-join build-side ceiling passed to the
	// stage planner (0 = default, negative = never broadcast).
	BroadcastRows int64
	// Pool is the executor slot pool shared by concurrent queries; nil
	// uses a private pool of Parallelism slots (single-query behavior).
	Pool *sched.Pool
	// Stats, when non-nil, receives the query's run statistics, including
	// the merged distributed EXPLAIN ANALYZE profile.
	Stats *RunStats
	// Metrics, when non-nil, is the observability registry the run's
	// shuffle readers and writers report into (volume and §4.6 encoding
	// decisions). Scheduler-pool and memory metrics attach at session
	// level, not per run.
	Metrics *obs.Registry
	// Trace, when non-nil, records the query's span tree
	// (query → stage → task → operator) for Chrome trace-event export.
	Trace *obs.Trace
	// SharedVectors marks table vectors as shared across concurrent
	// queries/tasks: per-vector metadata caches are computed per call
	// instead of written back. Required whenever two queries can touch
	// the same registered tables concurrently.
	SharedVectors bool
	// Adaptivity switches (ablation/experiments).
	DisableCompaction bool
	DisableAdaptivity bool
	// DisableRuntimeFilters turns off build-side runtime filter production
	// and probe-side consumption (file/row-group pruning, pre-shuffle and
	// pre-probe row filtering). Filters are on by default and strictly
	// semantics-free: disabling them never changes results, only speed.
	DisableRuntimeFilters bool
}

// RunStats reports one query run's scheduling footprint and profile.
type RunStats struct {
	// SlotsHeldPeak is the maximum number of executor slots held at once
	// (0 for single-task runs, which execute inline).
	SlotsHeldPeak int
	// Stages is the number of scheduler stages the query planned (1 for
	// single-task runs).
	Stages int
	// Profile is the merged distributed EXPLAIN ANALYZE profile: per-task
	// operator metrics merged across each stage's tasks and stitched back
	// into the query's shape at exchange boundaries. Single-task runs
	// report a one-stage profile, so the surface is uniform.
	Profile *QueryProfile
	// Transitions counts row<->column engine boundary nodes in the physical
	// plan (§6.3; always 0 on the distributed path, whose fragments are
	// pure Photon).
	Transitions int
}

// newTaskCtx builds a task context honoring the options; ctx is the query
// context operators observe at batch boundaries.
func (o *Options) newTaskCtx(ctx context.Context) *exec.TaskCtx {
	tc := exec.NewTaskCtx(o.Mem, o.BatchSize)
	tc.Ctx = ctx
	tc.SpillDir = o.ShuffleDir
	tc.EnableCompaction = !o.DisableCompaction
	tc.Expr.Adaptive = !o.DisableAdaptivity
	tc.Expr.SharedVectors = o.SharedVectors
	return tc
}

// shuffleSeq numbers exchanges process-wide so concurrent queries sharing a
// shuffle directory never collide (replacing the old pointer-formatted ID).
var shuffleSeq atomic.Int64

// nextExchangeID returns a process-unique shuffle identifier.
func nextExchangeID() string {
	return fmt.Sprintf("x%d", shuffleSeq.Add(1))
}

// Run executes the plan under ctx. Parallelism <= 1 runs as a single task;
// otherwise the stage planner decomposes the plan into an exchange DAG and
// every stage runs as parallel tasks on the (possibly shared) slot pool.
// Plans the stage planner cannot split (and configurations that need the
// row-engine fallback) run single-task.
//
// Every run works inside a private per-query spill/shuffle directory that
// is removed before Run returns — success, error, or cancellation — so no
// query can leak shuffle or spill files.
func Run(ctx context.Context, plan sql.LogicalPlan, opts Options) ([][]any, *types.Schema, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	dir, err := queryDir(opts.ShuffleDir)
	if err != nil {
		return nil, nil, err
	}
	// Guaranteed cleanup on every exit path (cancel, error, success).
	defer os.RemoveAll(dir)
	opts.ShuffleDir = dir

	if opts.Parallelism <= 1 || !distributable(opts.Config) {
		return runSingle(ctx, plan, opts)
	}
	frag, err := catalyst.PlanStages(plan, catalyst.StageConfig{
		Parallelism:    opts.Parallelism,
		BroadcastRows:  opts.BroadcastRows,
		RuntimeFilters: !opts.DisableRuntimeFilters,
	})
	if err != nil {
		// Unstageable shape (interior sort, cross join, ...): one task.
		return runSingle(ctx, plan, opts)
	}
	return runStaged(ctx, frag, opts)
}

// queryDir creates the query's private spill/shuffle directory under base
// ("" = system temp).
func queryDir(base string) (string, error) {
	if base == "" {
		return os.MkdirTemp("", "photon-query-*")
	}
	return os.MkdirTemp(base, "query-*")
}

// distributable reports whether the config can run pure-Photon fragments:
// distributed tasks have no row-engine fallback, so any forced fallback
// keeps the query single-task.
func distributable(cfg catalyst.Config) bool {
	if cfg.Engine != catalyst.EnginePhoton {
		return false
	}
	for _, v := range cfg.PhotonUnsupported {
		if v {
			return false
		}
	}
	return true
}

// runSingle executes the whole plan in one task.
func runSingle(ctx context.Context, plan sql.LogicalPlan, opts Options) ([][]any, *types.Schema, error) {
	if opts.Stats != nil {
		*opts.Stats = RunStats{Stages: 1}
	}
	tc := opts.newTaskCtx(ctx)
	ex, err := catalyst.Build(plan, opts.Config, tc)
	if err != nil {
		return nil, nil, err
	}
	var root any = ex.Photon
	if ex.Photon == nil {
		root = ex.Row
	}
	exec.AssignStatsIDs(root)
	start := time.Now()
	rows, err := ex.Run(tc)
	if err != nil {
		return nil, nil, err
	}
	wall := time.Since(start)
	notePoolMetrics(opts.Metrics, tc)
	if opts.Stats != nil {
		opts.Stats.Profile = singleProfile(root, wall)
		opts.Stats.Transitions = ex.Transitions
	}
	if opts.Trace != nil {
		tid := opts.Trace.NextTID()
		opts.Trace.NameThread(tid, "single-task")
		snaps := exec.SnapshotStats(root)
		emitTaskTrace(opts.Trace, tid, "task", start, wall, snaps)
	}
	return rows, ex.Schema(), nil
}

// notePoolMetrics folds a finished task's batch-pool hit/miss counts into
// the registry (the pool itself is task-local and lock-free).
func notePoolMetrics(reg *obs.Registry, tc *exec.TaskCtx) {
	if tc.Pool == nil {
		return
	}
	reg.Counter("photon_mem_pool_hits_total",
		"Batch pool hits: Get served by a recycled batch.").Add(tc.Pool.Hits)
	reg.Counter("photon_mem_pool_misses_total",
		"Batch pool misses: Get allocated a fresh batch.").Add(tc.Pool.Misses)
}

// rfCounters are the runtime-filter observability handles (no-ops when the
// run is uninstrumented — a nil registry returns nil-safe handles).
type rfCounters struct {
	built, applied                        *obs.Counter
	filesPruned, groupsPruned, rowsPruned *obs.Counter
}

func newRFCounters(reg *obs.Registry) rfCounters {
	return rfCounters{
		built: reg.Counter("photon_runtime_filter_built_total",
			"Runtime filters built and published by join build stages."),
		applied: reg.Counter("photon_runtime_filter_applied_total",
			"Runtime filter applications by consuming probe-side tasks."),
		filesPruned: reg.Counter("photon_runtime_filter_files_pruned_total",
			"Delta files skipped by runtime-filter key ranges."),
		groupsPruned: reg.Counter("photon_runtime_filter_row_groups_pruned_total",
			"Parquet row groups skipped by runtime-filter key ranges."),
		rowsPruned: reg.Counter("photon_runtime_filter_rows_pruned_total",
			"Probe-side rows dropped by runtime filters (scan, shuffle, and probe levels)."),
	}
}

// emitTaskTrace records one task's span plus per-operator sub-slices. The
// engine's operator timers mix self and inclusive time (a Filter times only
// its own work; a Sort's consume loop includes its child), so operator
// slices share the task's start and nest by duration inside the task span —
// an attribution approximation, not an exact timeline.
func emitTaskTrace(tr *obs.Trace, tid int64, name string, start time.Time, wall time.Duration, snaps []exec.StatsSnapshot) {
	tr.Span(name, "task", tid, start, wall, nil)
	for _, s := range snaps {
		d := time.Duration(s.TimeNanos)
		if d > wall {
			d = wall
		}
		tr.Span(s.Name, "operator", tid, start, d, map[string]any{
			"rowsIn": s.RowsIn, "rowsOut": s.RowsOut, "batches": s.BatchesOut,
		})
	}
}

// stageInfo pairs a plan fragment with its scheduler stage and the
// exchange state that crosses its boundaries.
type stageInfo struct {
	frag   *catalyst.Fragment
	stage  *sched.Stage
	schema *types.Schema // fragment output schema, resolved at plan time

	// Producer side: this fragment's shuffle output.
	exID      string
	bytesMu   sync.Mutex
	partBytes []int64 // compressed bytes per hash partition (ExchangeHash)

	// Consumer side: which hash partitions each task reads, derived from
	// the input stages' byte statistics once they complete (AQE §5.5).
	assignOnce  sync.Once
	assignments [][]int

	// Profile accumulation across the stage's tasks (distributed EXPLAIN
	// ANALYZE): merged operator rows, task counts, wall-clock envelope, and
	// output-exchange volume/encoding totals.
	profMu              sync.Mutex
	ops                 []OpProfile
	tasksRun            int
	firstStart, lastEnd time.Time
	outRaw, outBytes    int64
	outRows             int64
	encCounts           [3]int64

	// Runtime-filter scan pruning observed by this (consumer) stage: Delta
	// files and Parquet row groups skipped, and the rows they contained.
	rfFiles, rfGroups, rfScanRows int64
}

// notePrune accumulates scan-level runtime-filter pruning.
func (si *stageInfo) notePrune(files, groups, rows int64) {
	si.profMu.Lock()
	si.rfFiles += files
	si.rfGroups += groups
	si.rfScanRows += rows
	si.profMu.Unlock()
}

// noteTask folds one completed task's snapshots and timing into the stage.
func (si *stageInfo) noteTask(snaps []exec.StatsSnapshot, start, end time.Time) {
	si.profMu.Lock()
	defer si.profMu.Unlock()
	si.tasksRun++
	si.ops = mergeSnapshots(si.ops, snaps)
	if si.firstStart.IsZero() || start.Before(si.firstStart) {
		si.firstStart = start
	}
	if end.After(si.lastEnd) {
		si.lastEnd = end
	}
}

// noteShuffleOut folds one map task's writer totals into the stage.
func (si *stageInfo) noteShuffleOut(w *shuffle.Writer) {
	si.profMu.Lock()
	defer si.profMu.Unlock()
	si.outRaw += w.RawBytes
	si.outBytes += w.Bytes
	si.outRows += w.Rows
	for i, n := range w.EncCounts {
		si.encCounts[i] += n
	}
}

// stagedJob lowers a fragment DAG onto the scheduler.
type stagedJob struct {
	opts Options
	dir  string
	par  int

	stages map[*catalyst.Fragment]*stageInfo

	// sm mirrors shuffle reader/writer volume into the metrics registry
	// (nil when the run is uninstrumented).
	sm *shuffle.Metrics

	// rfReg collects runtime filters published by build stages; probe-side
	// tasks resolve filters from it at plan-build time (their stages are
	// scheduled after every producer, so lookups see complete filters).
	rfReg *rf.Registry
	rfc   rfCounters

	// Root gather output.
	results [][]*vector.Batch
}

// runStaged executes the fragment DAG.
func runStaged(ctx context.Context, root *catalyst.Fragment, opts Options) ([][]any, *types.Schema, error) {
	if opts.Mem == nil {
		opts.Mem = mem.NewManager(0)
	}
	j := &stagedJob{
		opts:   opts,
		dir:    opts.ShuffleDir,
		par:    opts.Parallelism,
		stages: map[*catalyst.Fragment]*stageInfo{},
		sm:     shuffle.NewMetrics(opts.Metrics),
		rfReg:  rf.NewRegistry(),
		rfc:    newRFCounters(opts.Metrics),
	}
	rootInfo := j.stageFor(root)
	j.results = make([][]*vector.Batch, rootInfo.stage.NumTasks)

	var drv *sched.Driver
	if opts.Pool != nil {
		drv = sched.NewDriverOnPool(opts.Pool)
	} else {
		drv = sched.NewDriver(j.par)
	}
	jobStart := time.Now()
	jobStats, err := drv.RunJobStats(ctx, rootInfo.stage)
	if opts.Stats != nil {
		*opts.Stats = RunStats{SlotsHeldPeak: jobStats.SlotsHeldPeak, Stages: len(j.stages)}
		if err == nil {
			opts.Stats.Profile = j.buildProfile(root)
		}
	}
	if opts.Trace != nil {
		j.emitStageSpans(opts.Trace)
	}
	if err != nil {
		return nil, nil, err
	}

	// Driver tail: merge ordered per-task runs or concatenate, then apply
	// the global limit. Traced as the driver's own span.
	tailStart := time.Now()
	if opts.Trace != nil {
		defer func() {
			tid := opts.Trace.NextTID()
			opts.Trace.NameThread(tid, "driver")
			opts.Trace.Span("job", "driver", tid, jobStart, time.Since(jobStart),
				map[string]any{"stages": len(j.stages)})
			opts.Trace.Span("gather/merge", "driver", tid, tailStart, time.Since(tailStart), nil)
		}()
	}
	schema := root.Root.Schema()
	if len(root.MergeKeys) > 0 {
		rows, err := exec.MergeSortedRuns(j.results, execSortKeys(root.MergeKeys), root.TailLimit)
		if err != nil {
			return nil, nil, err
		}
		return rows, schema, nil
	}
	var rows [][]any
	for _, bs := range j.results {
		for _, b := range bs {
			rows = append(rows, b.Rows()...)
		}
	}
	if root.TailLimit >= 0 && int64(len(rows)) > root.TailLimit {
		rows = rows[:root.TailLimit]
	}
	return rows, schema, nil
}

// stageFor memoizes the scheduler stage for a fragment, wiring exchange
// dependencies. Task counts are static: fragments with a partitioned scan
// or a hash-exchange input run Parallelism tasks (hash readers with fewer
// coalesced partition groups than tasks no-op the excess); pure broadcast
// builds and constant fragments run one task.
func (j *stagedJob) stageFor(f *catalyst.Fragment) *stageInfo {
	if si, ok := j.stages[f]; ok {
		return si
	}
	si := &stageInfo{frag: f, exID: nextExchangeID()}
	// Resolve every lazily-memoized logical schema on this single-threaded
	// planning path: tasks of a stage share the fragment's plan nodes, and
	// concurrent first calls to Schema() would race on the memo writes.
	warmSchemas(f.Root)
	si.schema = f.Root.Schema()
	if f.Out == catalyst.ExchangeHash {
		si.partBytes = make([]int64, j.par)
	}
	j.stages[f] = si

	// Dependencies: exchange inputs plus runtime-filter producers (the
	// latter are usually already exchange inputs; deduplicate). The driver
	// runs stages in dependency order, so every filter a task consults is
	// complete before the task plans.
	var deps []*sched.Stage
	depSeen := map[*catalyst.Fragment]bool{}
	for _, in := range append(append([]*catalyst.Fragment(nil), f.Inputs...), f.RFInputs...) {
		if depSeen[in] {
			continue
		}
		depSeen[in] = true
		deps = append(deps, j.stageFor(in).stage)
	}
	numTasks := 1
	if f.PartitionedScan || f.ReadsHash {
		numTasks = j.par
	}
	if f.RFKeys != nil {
		j.rfReg.Expect(f.ID, numTasks)
	}
	si.stage = &sched.Stage{
		Name:     fmt.Sprintf("stage-%d-%s", f.ID, f.Out),
		NumTasks: numTasks,
		Deps:     deps,
		Run:      func(ctx context.Context, taskID int) error { return j.runTask(ctx, si, taskID) },
	}
	return si
}

// warmSchemas forces schema resolution over a whole plan tree. Several
// logical nodes memoize Schema() lazily; warming them before tasks launch
// keeps the shared plan read-only during parallel execution.
func warmSchemas(n sql.LogicalPlan) {
	if n == nil {
		return
	}
	n.Schema()
	for _, c := range n.Children() {
		warmSchemas(c)
	}
}

// assignmentsFor lazily computes the consumer's partition groups from the
// *summed* byte statistics of all its hash inputs — a shuffle join must
// coalesce both sides identically so partition i of the probe side meets
// partition i of the build side in one task. Input stages have completed
// (blocking boundaries), so the statistics are final.
func (j *stagedJob) assignmentsFor(si *stageInfo) [][]int {
	si.assignOnce.Do(func() {
		sum := make([]int64, j.par)
		for _, in := range si.frag.Inputs {
			if in.Out != catalyst.ExchangeHash {
				continue
			}
			pi := j.stages[in]
			pi.bytesMu.Lock()
			for p, b := range pi.partBytes {
				sum[p] += b
			}
			pi.bytesMu.Unlock()
		}
		si.assignments = coalescePartitions(sum)
	})
	return si.assignments
}

// runTask executes one task of a stage: build the fragment's operator tree
// (exchange leaves resolve to this task's shuffle/broadcast readers), then
// dispose of the output per the fragment's exchange kind. ctx is the job's
// context: operators observe it at batch boundaries, so a cancelled query
// stops within one batch. After a successful run the task snapshots its
// operator metrics into the stage's merged profile and emits its trace row.
func (j *stagedJob) runTask(ctx context.Context, si *stageInfo, taskID int) error {
	f := si.frag

	var parts []int // hash partitions this task consumes
	if f.ReadsHash {
		asg := j.assignmentsFor(si)
		if taskID >= len(asg) {
			// Coalescing produced fewer groups than the static task count.
			// A coalesced-away producer task still counts toward its runtime
			// filter's completeness (it contributes no rows).
			if f.RFKeys != nil {
				j.rfReg.Publish(f.ID, taskID, nil)
			}
			if tr := j.opts.Trace; tr != nil {
				tr.Instant(fmt.Sprintf("stage-%d/task-%d coalesced away", f.ID, taskID),
					"task", 0, time.Now(), nil)
			}
			return nil
		}
		parts = asg[taskID]
	}

	cfg := j.opts.Config
	if f.PartitionedScan && si.stage.NumTasks > 1 {
		cfg.ScanPartitions = si.stage.NumTasks
		cfg.ScanPartition = taskID
	}

	// Runtime-filter consumer wiring: resolve published filters for this
	// fragment's RuntimeFilterPlan nodes and project their columns onto the
	// scan for file/row-group pruning. Producer stages completed before this
	// task was scheduled, so lookups are final; a nil resolution (dropped
	// filter) degrades to a pass-through.
	if len(f.RFInputs) > 0 || len(f.ScanRF) > 0 {
		cfg.RuntimeFilterSource = func(id int) *rf.Filter {
			flt := j.rfReg.Filter(id)
			if flt.Usable() {
				j.rfc.applied.Inc()
			}
			return flt
		}
		var scf []catalyst.ScanColFilter
		for _, s := range f.ScanRF {
			flt := j.rfReg.Filter(s.Producer.ID)
			if flt == nil || s.KeyIdx >= len(flt.Cols) {
				continue
			}
			if c := flt.Cols[s.KeyIdx]; c != nil {
				scf = append(scf, catalyst.ScanColFilter{Col: s.ScanCol, F: c})
			}
		}
		cfg.ScanRuntimeFilters = scf
		cfg.OnScanPrune = func(files, groups, rows int64) {
			si.notePrune(files, groups, rows)
			j.rfc.filesPruned.Add(files)
			j.rfc.groupsPruned.Add(groups)
			j.rfc.rowsPruned.Add(rows)
		}
	}
	tc := j.opts.newTaskCtx(ctx)
	tc.SpillDir = j.dir
	// Tasks of one stage share in-memory table batches read-only.
	tc.Expr.SharedVectors = true

	cfg.ExchangeSource = func(er *catalyst.ExchangeRead) (exec.Operator, error) {
		in := er.Frag
		pi, ok := j.stages[in]
		if !ok {
			return nil, fmt.Errorf("driver: exchange read of unplanned stage %d", in.ID)
		}
		schema := pi.schema
		mapTasks := pi.stage.NumTasks
		if er.Broadcast {
			name := fmt.Sprintf("BroadcastRead(stage=%d)", in.ID)
			op := exec.NewBroadcastRead(name, schema, func() ([]exec.ShuffleSource, error) {
				r := shuffle.NewBroadcastReader(j.dir, pi.exID, mapTasks, schema)
				r.Obs = j.sm
				return []exec.ShuffleSource{r}, nil
			})
			op.Stats().SetUpstream(in.ID)
			return op, nil
		}
		name := fmt.Sprintf("ShuffleRead(stage=%d)", in.ID)
		myParts := parts
		op := exec.NewShuffleRead(name, schema, func() ([]exec.ShuffleSource, error) {
			srcs := make([]exec.ShuffleSource, 0, len(myParts))
			for _, p := range myParts {
				r := shuffle.NewReader(j.dir, pi.exID, mapTasks, p, schema)
				r.Obs = j.sm
				srcs = append(srcs, r)
			}
			return srcs, nil
		})
		op.Stats().SetUpstream(in.ID)
		return op, nil
	}

	op, err := catalyst.BuildOperator(f.Root, cfg, tc)
	if err != nil {
		return err
	}

	// Runtime-filter producer wiring: tap the build stage's output into a
	// per-task partial filter, published once the task drains successfully.
	// Every task sizes from the same RFExpectRows estimate so the partial
	// Blooms union word-for-word.
	var rfBuild *exec.RuntimeFilterBuildOp
	if f.RFKeys != nil {
		keyTypes := make([]types.DataType, len(f.RFKeys))
		for i, c := range f.RFKeys {
			keyTypes[i] = si.schema.Field(c).Type
		}
		rfBuild = exec.NewRuntimeFilterBuild(op, f.RFKeys, rf.NewFilter(keyTypes, f.RFExpectRows))
		op = rfBuild
	}

	// Wrap the output exchange (if any) so the whole per-task tree —
	// including the ShuffleWrite sink — is profiled and traced uniformly.
	var root exec.Operator = op
	var w *shuffle.Writer
	switch f.Out {
	case catalyst.ExchangeHash:
		w, err = shuffle.NewWriter(j.dir, si.exID, taskID, j.par, shuffle.EncoderOptions{Adaptive: true})
		if err != nil {
			return err
		}
		w.Obs = j.sm
		var split exec.PartitionFunc
		if len(f.HashCols) > 0 {
			split = shuffle.NewPartitioner(j.par, f.HashCols).Split
		}
		// nil split: keyless aggregation — every row reduces in partition 0.
		root = exec.NewShuffleWrite(op, w, split)
	case catalyst.ExchangeBroadcast:
		w, err = shuffle.NewBroadcastWriter(j.dir, si.exID, taskID, shuffle.EncoderOptions{Adaptive: true})
		if err != nil {
			return err
		}
		w.Obs = j.sm
		root = exec.NewShuffleWrite(op, w, nil)
	}

	// Stable pre-order IDs: every task of the stage builds the identical
	// tree, so IDs are the cross-task merge key.
	exec.AssignStatsIDs(root)
	start := time.Now()
	if f.Out == catalyst.ExchangeGather {
		batches, err := exec.CollectAll(root, tc)
		if err != nil {
			return err
		}
		j.results[taskID] = batches
	} else if err := exec.Drain(root, tc); err != nil {
		return err
	}
	end := time.Now()

	if w != nil {
		if f.Out == catalyst.ExchangeHash {
			si.bytesMu.Lock()
			for p, b := range w.PartBytes {
				si.partBytes[p] += b
			}
			si.bytesMu.Unlock()
		}
		si.noteShuffleOut(w)
	}
	// Publish the task's partial runtime filter only on the success path: a
	// failed (and possibly retried) attempt never contributes, so the merged
	// filter reflects exactly one complete pass over the build input.
	if rfBuild != nil {
		j.rfReg.Publish(f.ID, taskID, rfBuild.Filter())
		if taskID == 0 {
			j.rfc.built.Inc()
		}
	}
	snaps := exec.SnapshotStats(root)
	for _, s := range snaps {
		if strings.HasPrefix(s.Name, "RuntimeFilter(") {
			j.rfc.rowsPruned.Add(s.RowsIn - s.RowsOut)
		}
	}
	notePoolMetrics(j.opts.Metrics, tc)
	si.noteTask(snaps, start, end)
	if tr := j.opts.Trace; tr != nil {
		tid := tr.NextTID()
		label := fmt.Sprintf("stage-%d/task-%d", f.ID, taskID)
		tr.NameThread(tid, label)
		emitTaskTrace(tr, tid, label, start, end.Sub(start), snaps)
	}
	return nil
}

// buildProfile assembles the stages' merged operator rows into the query's
// stitched EXPLAIN ANALYZE profile, ordered by stage ID.
func (j *stagedJob) buildProfile(root *catalyst.Fragment) *QueryProfile {
	q := &QueryProfile{Root: root.ID}
	for f, si := range j.stages {
		si.profMu.Lock()
		sp := StageProfile{
			ID: f.ID, Label: f.Label, Out: f.Out.String(),
			TasksPlanned: si.stage.NumTasks, TasksRun: si.tasksRun,
			WallNanos:       int64(si.stage.Stats().WallTime),
			Ops:             append([]OpProfile(nil), si.ops...),
			ShuffleRawBytes: si.outRaw, ShuffleBytes: si.outBytes,
			ShuffleRows: si.outRows, EncCounts: si.encCounts,
			RFFilesPruned: si.rfFiles, RFGroupsPruned: si.rfGroups,
			RFRowsPruned: si.rfScanRows,
		}
		// Row-level runtime-filter drops (pre-shuffle / pre-probe) fold into
		// the same pruning total as scan-level skips.
		for _, o := range sp.Ops {
			if strings.HasPrefix(o.Name, "RuntimeFilter(") {
				sp.RFRowsPruned += o.RowsIn - o.RowsOut
			}
		}
		si.profMu.Unlock()
		q.Stages = append(q.Stages, sp)
	}
	sort.Slice(q.Stages, func(a, b int) bool { return q.Stages[a].ID < q.Stages[b].ID })
	return q
}

// emitStageSpans records one span per stage covering its tasks' wall-clock
// envelope (first task start to last task end).
func (j *stagedJob) emitStageSpans(tr *obs.Trace) {
	infos := make([]*stageInfo, 0, len(j.stages))
	for _, si := range j.stages {
		infos = append(infos, si)
	}
	sort.Slice(infos, func(a, b int) bool { return infos[a].frag.ID < infos[b].frag.ID })
	for _, si := range infos {
		si.profMu.Lock()
		start, end, n := si.firstStart, si.lastEnd, si.tasksRun
		si.profMu.Unlock()
		if n == 0 || start.IsZero() {
			continue
		}
		tid := tr.NextTID()
		tr.NameThread(tid, fmt.Sprintf("stage-%d %s", si.frag.ID, si.frag.Label))
		tr.Span(fmt.Sprintf("stage %d", si.frag.ID), "stage", tid, start, end.Sub(start),
			map[string]any{"tasks": n, "label": si.frag.Label})
	}
}

func execSortKeys(keys []sql.SortKeyPlan) []exec.SortKey {
	out := make([]exec.SortKey, len(keys))
	for i, k := range keys {
		out[i] = exec.SortKey{Col: k.Col, Desc: k.Desc}
	}
	return out
}

// coalescePartitions groups shuffle partitions into reduce tasks so each
// task handles at least targetBytes of input (the AQE partition-coalescing
// heuristic, §5.5). Partitions stay in order; every partition is assigned
// exactly once.
func coalescePartitions(partBytes []int64) [][]int {
	var total int64
	for _, b := range partBytes {
		total += b
	}
	// Target: keep all tasks busy, but merge partitions much smaller than
	// an even share.
	target := total / int64(len(partBytes))
	if target < 1 {
		target = 1
	}
	var out [][]int
	var cur []int
	var curBytes int64
	for p, b := range partBytes {
		cur = append(cur, p)
		curBytes += b
		if curBytes >= target {
			out = append(out, cur)
			cur = nil
			curBytes = 0
		}
	}
	if len(cur) > 0 {
		out = append(out, cur)
	}
	return out
}
