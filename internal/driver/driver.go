// Package driver runs optimized logical plans on the cluster substrate:
// the driver node plans stages (§2.2/§2.3), launches parallel map tasks
// that evaluate scan→filter→join pipelines and partial aggregation per
// data partition, exchanges partial states through the shuffle layer with
// adaptive encodings, and finalizes with reduce tasks plus a driver-side
// tail (HAVING/projection/sort/limit). Stage boundaries are blocking, so
// per-stage statistics are available for adaptive decisions.
package driver

import (
	"fmt"
	"os"
	"sync"

	"photon/internal/catalog"
	"photon/internal/exec"
	"photon/internal/expr"
	"photon/internal/mem"
	"photon/internal/sched"
	"photon/internal/shuffle"
	"photon/internal/sql"
	"photon/internal/sql/catalyst"
	"photon/internal/types"
	"photon/internal/vector"
)

// Options configure a distributed run.
type Options struct {
	Parallelism int
	ShuffleDir  string
	Mem         *mem.Manager
	BatchSize   int
	Config      catalyst.Config
	// Adaptivity switches (ablation/experiments).
	DisableCompaction bool
	DisableAdaptivity bool
}

// newTaskCtx builds a task context honoring the options.
func (o *Options) newTaskCtx() *exec.TaskCtx {
	tc := exec.NewTaskCtx(o.Mem, o.BatchSize)
	tc.SpillDir = o.ShuffleDir
	tc.EnableCompaction = !o.DisableCompaction
	tc.Expr.Adaptive = !o.DisableAdaptivity
	return tc
}

// Run executes the plan. Parallelism <= 1 (or plans without a top-level
// aggregation) run as a single task; otherwise the aggregation splits into
// the partial/shuffle/final stage pipeline.
func Run(plan sql.LogicalPlan, opts Options) ([][]any, *types.Schema, error) {
	if opts.Parallelism <= 1 {
		return runSingle(plan, opts)
	}
	agg, suffix := peelToAggregate(plan)
	if agg == nil {
		// No distributable aggregation at the top: single task.
		return runSingle(plan, opts)
	}
	return runAggJob(agg, suffix, opts)
}

// runSingle executes the whole plan in one task.
func runSingle(plan sql.LogicalPlan, opts Options) ([][]any, *types.Schema, error) {
	tc := opts.newTaskCtx()
	ex, err := catalyst.Build(plan, opts.Config, tc)
	if err != nil {
		return nil, nil, err
	}
	rows, err := ex.Run(tc)
	if err != nil {
		return nil, nil, err
	}
	return rows, ex.Schema(), nil
}

// peelToAggregate walks the suffix chain (Limit/Sort/Project/Filter) to
// the first Aggregate; returns (aggregate, suffix nodes outermost-first).
func peelToAggregate(plan sql.LogicalPlan) (*sql.LAggregate, []sql.LogicalPlan) {
	var suffix []sql.LogicalPlan
	cur := plan
	for {
		switch n := cur.(type) {
		case *sql.LAggregate:
			return n, suffix
		case *sql.LLimit:
			suffix = append(suffix, n)
			cur = n.Child
		case *sql.LSort:
			suffix = append(suffix, n)
			cur = n.Child
		case *sql.LProject:
			suffix = append(suffix, n)
			cur = n.Child
		case *sql.LFilter:
			suffix = append(suffix, n)
			cur = n.Child
		default:
			return nil, nil
		}
	}
}

// runAggJob is the two-stage aggregation pipeline.
func runAggJob(agg *sql.LAggregate, suffix []sql.LogicalPlan, opts Options) ([][]any, *types.Schema, error) {
	par := opts.Parallelism
	dir := opts.ShuffleDir
	if dir == "" {
		d, err := os.MkdirTemp("", "photon-shuffle-*")
		if err != nil {
			return nil, nil, err
		}
		defer os.RemoveAll(d)
		dir = d
	}
	if opts.Mem == nil {
		opts.Mem = mem.NewManager(0)
	}
	shuffleID := fmt.Sprintf("agg-%p", agg)
	nKeys := len(agg.Keys)

	// Stage 1 (map): per-partition pipeline + partial aggregation, shuffle
	// write hash-partitioned by grouping key.
	var partialSchema *types.Schema
	var schemaOnce sync.Once
	partBytes := make([]int64, par) // per-reduce-partition shuffle volume
	var partMu sync.Mutex

	mapStage := &sched.Stage{
		Name:     "map-partial-agg",
		NumTasks: par,
		Run: func(taskID int) error {
			cfg := opts.Config
			cfg.ScanPartitions = par
			cfg.ScanPartition = taskID
			tc := opts.newTaskCtx()
			tc.SpillDir = dir
			tc.Expr.SharedVectors = true

			child, err := catalyst.BuildOperator(agg.Child, cfg, tc)
			if err != nil {
				return err
			}
			partial, err := exec.NewHashAgg(child, exec.AggPartial, agg.Keys, agg.KeyNames, agg.Aggs)
			if err != nil {
				return err
			}
			schemaOnce.Do(func() { partialSchema = partial.Schema() })

			w, err := shuffle.NewWriter(dir, shuffleID, taskID, par, shuffle.EncoderOptions{Adaptive: true})
			if err != nil {
				return err
			}
			defer w.Close()
			keyCols := make([]int, nKeys)
			for i := range keyCols {
				keyCols[i] = i
			}
			partitioner := shuffle.NewPartitioner(par, keyCols)

			if err := partial.Open(tc); err != nil {
				return err
			}
			defer partial.Close()
			for {
				batch, err := partial.Next()
				if err != nil {
					return err
				}
				if batch == nil {
					break
				}
				if nKeys == 0 {
					// Keyless: everything reduces in partition 0.
					if err := w.WritePartition(0, batch); err != nil {
						return err
					}
					continue
				}
				saved := batch.Sel
				for part, sel := range partitioner.Split(batch) {
					if len(sel) == 0 {
						continue
					}
					batch.Sel = sel
					if err := w.WritePartition(part, batch); err != nil {
						batch.Sel = saved
						return err
					}
				}
				batch.Sel = saved
			}
			partMu.Lock()
			for i, b := range w.PartBytes {
				partBytes[i] += b
			}
			partMu.Unlock()
			return nil
		},
	}

	// Blocking stage boundary: run the map stage first so its runtime
	// statistics can drive AQE-style partition coalescing (§5.5) — small
	// shuffle partitions merge into fewer reduce tasks.
	drv := sched.NewDriver(par)
	if err := drv.RunJob(mapStage); err != nil {
		return nil, nil, err
	}
	assignments := coalescePartitions(partBytes)

	// Stage 2 (reduce): one task per (possibly coalesced) partition group.
	results := make([][]*vector.Batch, len(assignments))
	reduceStage := &sched.Stage{
		Name:     "reduce-final-agg",
		NumTasks: len(assignments),
		Deps:     []*sched.Stage{mapStage},
		Run: func(taskID int) error {
			tc := opts.newTaskCtx()
			tc.SpillDir = dir
			parts := assignments[taskID]
			pi := 0
			var rd *shuffle.Reader
			src := exec.NewSource("ShuffleRead", partialSchema, func() (exec.SourceFunc, error) {
				buf := vector.NewBatch(partialSchema, max(opts.BatchSize, vector.DefaultBatchSize))
				return func() (*vector.Batch, error) {
					for {
						if rd == nil {
							if pi >= len(parts) {
								return nil, nil
							}
							rd = shuffle.NewReader(dir, shuffleID, par, parts[pi], partialSchema)
							pi++
						}
						ok, err := rd.Next(buf)
						if err != nil {
							return nil, err
						}
						if ok {
							return buf, nil
						}
						rd = nil
					}
				}, nil
			})
			finalKeys := make([]expr.Expr, nKeys)
			for i := range finalKeys {
				f := partialSchema.Field(i)
				finalKeys[i] = expr.Col(i, f.Name, f.Type)
			}
			final, err := exec.NewHashAgg(src, exec.AggFinal, finalKeys, agg.KeyNames, agg.Aggs)
			if err != nil {
				return err
			}
			batches, err := exec.CollectAll(final, tc)
			if err != nil {
				return err
			}
			results[taskID] = batches
			return nil
		},
	}

	if err := drv.RunJob(reduceStage); err != nil {
		return nil, nil, err
	}

	// Driver tail: rebuild the suffix chain over the merged reduce output.
	aggSchema := agg.Schema()
	var all []*vector.Batch
	for _, bs := range results {
		all = append(all, bs...)
	}
	tail := rebuildSuffix(suffix, &sql.LScan{
		Table: &catalog.MemTable{TableName: "__agg_result", Sch: aggSchema, Batches: all},
	})
	tailOpts := opts
	tailOpts.Parallelism = 1
	tailOpts.ShuffleDir = dir
	return runSingle(tail, tailOpts)
}

// rebuildSuffix re-parents the peeled suffix chain (outermost-first) onto
// a new child.
func rebuildSuffix(suffix []sql.LogicalPlan, child sql.LogicalPlan) sql.LogicalPlan {
	cur := child
	for i := len(suffix) - 1; i >= 0; i-- {
		switch n := suffix[i].(type) {
		case *sql.LLimit:
			cur = &sql.LLimit{Child: cur, N: n.N}
		case *sql.LSort:
			cur = &sql.LSort{Child: cur, Keys: n.Keys}
		case *sql.LProject:
			cur = &sql.LProject{Child: cur, Exprs: n.Exprs, Names: n.Names}
		case *sql.LFilter:
			cur = &sql.LFilter{Child: cur, Pred: n.Pred}
		}
	}
	return cur
}

// coalescePartitions groups shuffle partitions into reduce tasks so each
// task handles at least targetBytes of input (the AQE partition-coalescing
// heuristic, §5.5). Partitions stay in order; every partition is assigned
// exactly once.
func coalescePartitions(partBytes []int64) [][]int {
	var total int64
	for _, b := range partBytes {
		total += b
	}
	// Target: keep all tasks busy, but merge partitions much smaller than
	// an even share.
	target := total / int64(len(partBytes))
	if target < 1 {
		target = 1
	}
	var out [][]int
	var cur []int
	var curBytes int64
	for p, b := range partBytes {
		cur = append(cur, p)
		curBytes += b
		if curBytes >= target {
			out = append(out, cur)
			cur = nil
			curBytes = 0
		}
	}
	if len(cur) > 0 {
		out = append(out, cur)
	}
	return out
}
