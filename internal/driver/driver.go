// Package driver runs optimized logical plans on the cluster substrate:
// the driver node plans stages (§2.2/§2.3), launches parallel tasks that
// evaluate scan→filter→join pipelines and partial aggregation per data
// partition, exchanges rows through the shuffle layer with adaptive
// encodings, and finishes on the driver (gather, k-way merge, limit).
// Stage boundaries are blocking, so per-stage shuffle statistics are
// available for adaptive decisions (AQE partition coalescing, §5.5).
package driver

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"photon/internal/exec"
	"photon/internal/expr"
	"photon/internal/mem"
	"photon/internal/obs"
	"photon/internal/rf"
	"photon/internal/sched"
	"photon/internal/shuffle"
	"photon/internal/sql"
	"photon/internal/sql/catalyst"
	"photon/internal/types"
	"photon/internal/vector"
)

// Options configure a distributed run.
type Options struct {
	Parallelism int
	ShuffleDir  string
	Mem         *mem.Manager
	BatchSize   int
	Config      catalyst.Config
	// BroadcastRows is the broadcast-join build-side ceiling passed to the
	// stage planner (0 = default, negative = never broadcast).
	BroadcastRows int64
	// Pool is the executor slot pool shared by concurrent queries; nil
	// uses a private pool of Parallelism slots (single-query behavior).
	Pool *sched.Pool
	// Tenant labels this run's slot usage for the pool's weighted-fair
	// dispatch ("" = sched.DefaultTenant); TenantWeight is the tenant's
	// fair-share weight (<= 0 = 1).
	Tenant       string
	TenantWeight int
	// Stats, when non-nil, receives the query's run statistics, including
	// the merged distributed EXPLAIN ANALYZE profile.
	Stats *RunStats
	// Metrics, when non-nil, is the observability registry the run's
	// shuffle readers and writers report into (volume and §4.6 encoding
	// decisions). Scheduler-pool and memory metrics attach at session
	// level, not per run.
	Metrics *obs.Registry
	// Trace, when non-nil, records the query's span tree
	// (query → stage → task → operator) for Chrome trace-event export.
	Trace *obs.Trace
	// SharedVectors marks table vectors as shared across concurrent
	// queries/tasks: per-vector metadata caches are computed per call
	// instead of written back. Required whenever two queries can touch
	// the same registered tables concurrently.
	SharedVectors bool
	// Adaptivity switches (ablation/experiments).
	DisableCompaction bool
	DisableAdaptivity bool
	// DisableRuntimeFilters turns off build-side runtime filter production
	// and probe-side consumption (file/row-group pruning, pre-shuffle and
	// pre-probe row filtering). Filters are on by default and strictly
	// semantics-free: disabling them never changes results, only speed.
	DisableRuntimeFilters bool
	// DisableDecimal64 turns off the adaptive narrow-decimal fast path
	// (int64 decimal kernels with checked escape to 128-bit). On by
	// default and strictly semantics-free: results are byte-identical
	// either way, only speed changes.
	DisableDecimal64 bool

	// Progress, when non-nil, receives batch-boundary (rows, bytes) deltas
	// from every running task — the live feed behind the session's in-flight
	// query registry. It must be cheap and concurrency-safe (atomic adds);
	// it is called from task goroutines.
	Progress func(rows, bytes int64)

	// FastPath requests small-query inline execution: skip stage planning,
	// exchange setup, and (for unlimited-memory sessions) the per-query
	// spill/shuffle directory, and run the fused pipeline as one task on a
	// single pool slot. Callers set it only for plans the compile phase
	// classified as single-fragment with input fitting one task.
	FastPath bool

	// testTaskStart, when non-nil, runs at the start of every non-recovery
	// task attempt with the fragment, task ID, and the query's private
	// shuffle directory. Test-only seam for corruption-injection fixtures
	// (e.g. flip bits in a committed shuffle file once a consumer starts).
	testTaskStart func(f *catalyst.Fragment, taskID int, dir string)
}

// RunStats reports one query run's scheduling footprint and profile.
type RunStats struct {
	// SlotsHeldPeak is the maximum number of executor slots held at once
	// (0 for single-task runs, which execute inline).
	SlotsHeldPeak int
	// Stages is the number of scheduler stages the query planned (1 for
	// single-task runs).
	Stages int
	// Profile is the merged distributed EXPLAIN ANALYZE profile: per-task
	// operator metrics merged across each stage's tasks and stitched back
	// into the query's shape at exchange boundaries. Single-task runs
	// report a one-stage profile, so the surface is uniform.
	Profile *QueryProfile
	// Transitions counts row<->column engine boundary nodes in the physical
	// plan (§6.3; always 0 on the distributed path, whose fragments are
	// pure Photon).
	Transitions int
	// FastPath reports that the query ran on the small-query fast path
	// (single inline task, no stage planning or exchange setup).
	FastPath bool
}

// newTaskCtx builds a task context honoring the options; ctx is the query
// context operators observe at batch boundaries.
func (o *Options) newTaskCtx(ctx context.Context) *exec.TaskCtx {
	tc := exec.NewTaskCtx(o.Mem, o.BatchSize)
	tc.Ctx = ctx
	tc.SpillDir = o.ShuffleDir
	tc.EnableCompaction = !o.DisableCompaction
	tc.Expr.Adaptive = !o.DisableAdaptivity
	tc.Expr.SharedVectors = o.SharedVectors
	tc.Expr.Dec64 = !o.DisableDecimal64
	return tc
}

// shuffleSeq numbers exchanges process-wide so concurrent queries sharing a
// shuffle directory never collide (replacing the old pointer-formatted ID).
var shuffleSeq atomic.Int64

// nextExchangeID returns a process-unique shuffle identifier.
func nextExchangeID() string {
	return fmt.Sprintf("x%d", shuffleSeq.Add(1))
}

// Run executes the plan under ctx. Parallelism <= 1 runs as a single task;
// otherwise the stage planner decomposes the plan into an exchange DAG and
// every stage runs as parallel tasks on the (possibly shared) slot pool.
// Plans the stage planner cannot split (and configurations that need the
// row-engine fallback) run single-task.
//
// Every run works inside a private per-query spill/shuffle directory that
// is removed before Run returns — success, error, or cancellation — so no
// query can leak shuffle or spill files.
func Run(ctx context.Context, plan sql.LogicalPlan, opts Options) ([][]any, *types.Schema, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.FastPath {
		return runFast(ctx, plan, opts)
	}
	dir, err := queryDir(opts.ShuffleDir)
	if err != nil {
		return nil, nil, err
	}
	// Guaranteed cleanup on every exit path (cancel, error, success).
	defer os.RemoveAll(dir)
	opts.ShuffleDir = dir

	if opts.Parallelism <= 1 || !distributable(opts.Config) {
		return runSingle(ctx, plan, opts)
	}
	frag, err := catalyst.PlanStages(plan, catalyst.StageConfig{
		Parallelism:    opts.Parallelism,
		BroadcastRows:  opts.BroadcastRows,
		RuntimeFilters: !opts.DisableRuntimeFilters,
	})
	if err != nil {
		// Unstageable shape (interior sort, cross join, ...): one task.
		return runSingle(ctx, plan, opts)
	}
	return runStaged(ctx, frag, opts)
}

// runFast is the small-query fast path: one inline task on one pool slot,
// no stage planning, no exchange setup. Spill-directory creation — two
// syscalls plus a deferred RemoveAll per query — is skipped when the
// session has no real memory bound (spilling can never trigger); under a
// real bound the task gets a private directory, because spill file names
// are only unique per task context.
func runFast(ctx context.Context, plan sql.LogicalPlan, opts Options) ([][]any, *types.Schema, error) {
	if opts.Mem != nil && opts.Mem.Limited() {
		dir, err := queryDir(opts.ShuffleDir)
		if err != nil {
			return nil, nil, err
		}
		defer os.RemoveAll(dir)
		opts.ShuffleDir = dir
	} else {
		opts.ShuffleDir = "" // NewSpillFile errors if ever reached
	}
	held := false
	if opts.Pool != nil {
		tok := opts.Pool.NewJobFor(opts.Tenant, opts.TenantWeight)
		if err := opts.Pool.Acquire(ctx, tok); err != nil {
			return nil, nil, err
		}
		defer opts.Pool.Release(tok)
		held = true
	}
	rows, schema, err := runSingle(ctx, plan, opts)
	if opts.Stats != nil {
		opts.Stats.FastPath = true
		if held {
			opts.Stats.SlotsHeldPeak = 1
		}
	}
	return rows, schema, err
}

// queryDir creates the query's private spill/shuffle directory under base
// ("" = system temp).
func queryDir(base string) (string, error) {
	if base == "" {
		return os.MkdirTemp("", "photon-query-*")
	}
	return os.MkdirTemp(base, "query-*")
}

// distributable reports whether the config can run pure-Photon fragments:
// distributed tasks have no row-engine fallback, so any forced fallback
// keeps the query single-task.
func distributable(cfg catalyst.Config) bool {
	if cfg.Engine != catalyst.EnginePhoton {
		return false
	}
	for _, v := range cfg.PhotonUnsupported {
		if v {
			return false
		}
	}
	return true
}

// runSingle executes the whole plan in one task.
func runSingle(ctx context.Context, plan sql.LogicalPlan, opts Options) ([][]any, *types.Schema, error) {
	if opts.Stats != nil {
		*opts.Stats = RunStats{Stages: 1}
	}
	tc := opts.newTaskCtx(ctx)
	tc.Progress = opts.Progress
	ex, err := catalyst.Build(plan, opts.Config, tc)
	if err != nil {
		return nil, nil, err
	}
	var root any = ex.Photon
	if ex.Photon == nil {
		root = ex.Row
	}
	exec.AssignStatsIDs(root)
	start := time.Now()
	rows, err := ex.Run(tc)
	if err != nil {
		return nil, nil, err
	}
	wall := time.Since(start)
	notePoolMetrics(opts.Metrics, tc)
	noteDec64Metrics(opts.Metrics, tc.Expr)
	if opts.Stats != nil {
		opts.Stats.Profile = singleProfile(root, wall, tc.Expr)
		opts.Stats.Transitions = ex.Transitions
	}
	if opts.Trace != nil {
		tid := opts.Trace.NextTID()
		opts.Trace.NameThread(tid, "single-task")
		snaps := exec.SnapshotStats(root)
		emitTaskTrace(opts.Trace, tid, "task", start, wall, snaps)
	}
	return rows, ex.Schema(), nil
}

// notePoolMetrics folds a finished task's batch-pool hit/miss counts into
// the registry (the pool itself is task-local and lock-free).
func notePoolMetrics(reg *obs.Registry, tc *exec.TaskCtx) {
	if tc.Pool == nil {
		return
	}
	reg.Counter("photon_mem_pool_hits_total",
		"Batch pool hits: Get served by a recycled batch.").Add(tc.Pool.Hits)
	reg.Counter("photon_mem_pool_misses_total",
		"Batch pool misses: Get allocated a fresh batch.").Add(tc.Pool.Misses)
}

// noteDec64Metrics folds a finished task's narrow-decimal dispatch counts
// into the registry, split by the path each decimal batch took.
func noteDec64Metrics(reg *obs.Registry, e *expr.Ctx) {
	const help = "Decimal batches by execution path: int64 fast path (dec64), 128-bit kernels (dec128), or mid-batch overflow escape."
	if e.Dec64Batches > 0 {
		reg.Counter(`photon_decimal_fastpath_batches_total{path="dec64"}`, help).Add(e.Dec64Batches)
	}
	if e.Dec128Batches > 0 {
		reg.Counter(`photon_decimal_fastpath_batches_total{path="dec128"}`, help).Add(e.Dec128Batches)
	}
	if e.Dec64Escapes > 0 {
		reg.Counter(`photon_decimal_fastpath_batches_total{path="escape"}`, help).Add(e.Dec64Escapes)
	}
}

// rfCounters are the runtime-filter observability handles (no-ops when the
// run is uninstrumented — a nil registry returns nil-safe handles).
type rfCounters struct {
	built, applied                        *obs.Counter
	filesPruned, groupsPruned, rowsPruned *obs.Counter
}

func newRFCounters(reg *obs.Registry) rfCounters {
	return rfCounters{
		built: reg.Counter("photon_runtime_filter_built_total",
			"Runtime filters built and published by join build stages."),
		applied: reg.Counter("photon_runtime_filter_applied_total",
			"Runtime filter applications by consuming probe-side tasks."),
		filesPruned: reg.Counter("photon_runtime_filter_files_pruned_total",
			"Delta files skipped by runtime-filter key ranges."),
		groupsPruned: reg.Counter("photon_runtime_filter_row_groups_pruned_total",
			"Parquet row groups skipped by runtime-filter key ranges."),
		rowsPruned: reg.Counter("photon_runtime_filter_rows_pruned_total",
			"Probe-side rows dropped by runtime filters (scan, shuffle, and probe levels)."),
	}
}

// emitTaskTrace records one task's span plus per-operator sub-slices. The
// engine's operator timers mix self and inclusive time (a Filter times only
// its own work; a Sort's consume loop includes its child), so operator
// slices share the task's start and nest by duration inside the task span —
// an attribution approximation, not an exact timeline.
func emitTaskTrace(tr *obs.Trace, tid int64, name string, start time.Time, wall time.Duration, snaps []exec.StatsSnapshot) {
	tr.Span(name, "task", tid, start, wall, nil)
	for _, s := range snaps {
		d := time.Duration(s.TimeNanos)
		if d > wall {
			d = wall
		}
		tr.Span(s.Name, "operator", tid, start, d, map[string]any{
			"rowsIn": s.RowsIn, "rowsOut": s.RowsOut, "batches": s.BatchesOut,
		})
	}
}

// stageInfo pairs a plan fragment with its scheduler stage and the
// exchange state that crosses its boundaries.
type stageInfo struct {
	frag   *catalyst.Fragment
	stage  *sched.Stage
	schema *types.Schema // fragment output schema, resolved at plan time

	// Producer side: this fragment's shuffle output.
	exID      string
	bytesMu   sync.Mutex
	partBytes []int64 // compressed bytes per hash partition (ExchangeHash)

	// Consumer side: which hash partitions each task reads, derived from
	// the input stages' byte statistics once they complete (AQE §5.5).
	assignOnce  sync.Once
	assignments [][]int

	// Profile accumulation across the stage's tasks (distributed EXPLAIN
	// ANALYZE): merged operator rows, task counts, wall-clock envelope, and
	// output-exchange volume/encoding totals.
	profMu              sync.Mutex
	ops                 []OpProfile
	tasksRun            int
	firstStart, lastEnd time.Time
	outRaw, outBytes    int64
	outRows             int64
	encCounts           [3]int64

	// Runtime-filter scan pruning observed by this (consumer) stage: Delta
	// files and Parquet row groups skipped, and the rows they contained.
	rfFiles, rfGroups, rfScanRows int64

	// Fused-pipeline execution: fused-operator count in one task's plan
	// (identical across a stage's tasks) and total emitted batches/rows.
	pipeOps               int
	pipeBatches, pipeRows int64

	// Narrow-decimal dispatch across the stage's tasks: batches on the
	// int64 fast path and mid-batch overflow escapes.
	dec64Batches, dec64Escapes int64

	// Commit-once guard: with speculative duplicates, exactly one attempt
	// of each task may publish its output (atomic shuffle rename, gather
	// results, profile accumulation). commitMu serializes the publish
	// critical section per task; done marks the task committed.
	commitMu []sync.Mutex
	done     []bool

	// Lineage recovery: recMu serializes producer re-runs per map task so
	// concurrent consumers repairing the same output do the work once;
	// recAttempts bounds repeated repairs; recGen counts completed repairs
	// per map task (consumers that failed before a repair landed skip the
	// redundant re-run); recovered counts successful re-runs of this stage's
	// map tasks (EXPLAIN ANALYZE).
	recMu       []sync.Mutex
	recAttempts []int
	recGen      []atomic.Int64 // written under recMu, read lock-free
	recovered   atomic.Int64
}

// notePrune accumulates scan-level runtime-filter pruning.
func (si *stageInfo) notePrune(files, groups, rows int64) {
	si.profMu.Lock()
	si.rfFiles += files
	si.rfGroups += groups
	si.rfScanRows += rows
	si.profMu.Unlock()
}

// notePipelines folds one task's fused-pipeline summaries into the stage.
// Every task builds the identical fragment plan, so the fused-op count is
// stable across tasks (keep the max); batches and rows accumulate.
func (si *stageInfo) notePipelines(infos []exec.PipelineInfo) {
	if len(infos) == 0 {
		return
	}
	ops := 0
	var batches, rows int64
	for _, pi := range infos {
		ops += pi.Ops
		batches += pi.Batches
		rows += pi.Rows
	}
	si.profMu.Lock()
	defer si.profMu.Unlock()
	if ops > si.pipeOps {
		si.pipeOps = ops
	}
	si.pipeBatches += batches
	si.pipeRows += rows
}

// noteDec64 folds one task's narrow-decimal dispatch tallies into the stage.
func (si *stageInfo) noteDec64(e *expr.Ctx) {
	if e.Dec64Batches == 0 && e.Dec64Escapes == 0 {
		return
	}
	si.profMu.Lock()
	si.dec64Batches += e.Dec64Batches
	si.dec64Escapes += e.Dec64Escapes
	si.profMu.Unlock()
}

// noteTask folds one completed task's snapshots and timing into the stage.
func (si *stageInfo) noteTask(snaps []exec.StatsSnapshot, start, end time.Time) {
	si.profMu.Lock()
	defer si.profMu.Unlock()
	si.tasksRun++
	si.ops = mergeSnapshots(si.ops, snaps)
	if si.firstStart.IsZero() || start.Before(si.firstStart) {
		si.firstStart = start
	}
	if end.After(si.lastEnd) {
		si.lastEnd = end
	}
}

// noteShuffleOut folds one map task's writer totals into the stage.
func (si *stageInfo) noteShuffleOut(w *shuffle.Writer) {
	si.profMu.Lock()
	defer si.profMu.Unlock()
	si.outRaw += w.RawBytes
	si.outBytes += w.Bytes
	si.outRows += w.Rows
	for i, n := range w.EncCounts {
		si.encCounts[i] += n
	}
}

// stagedJob lowers a fragment DAG onto the scheduler.
type stagedJob struct {
	opts Options
	dir  string
	par  int

	stages map[*catalyst.Fragment]*stageInfo
	// byExID addresses producer stages by their shuffle/broadcast exchange
	// ID — the lineage lookup for corrupt-block recovery.
	byExID map[string]*stageInfo

	// sm mirrors shuffle reader/writer volume into the metrics registry
	// (nil when the run is uninstrumented).
	sm *shuffle.Metrics

	// rfReg collects runtime filters published by build stages; probe-side
	// tasks resolve filters from it at plan-build time (their stages are
	// scheduled after every producer, so lookups see complete filters).
	rfReg *rf.Registry
	rfc   rfCounters

	// Root gather output.
	results [][]*vector.Batch
}

// runStaged executes the fragment DAG.
func runStaged(ctx context.Context, root *catalyst.Fragment, opts Options) ([][]any, *types.Schema, error) {
	if opts.Mem == nil {
		opts.Mem = mem.NewManager(0)
	}
	j := &stagedJob{
		opts:   opts,
		dir:    opts.ShuffleDir,
		par:    opts.Parallelism,
		stages: map[*catalyst.Fragment]*stageInfo{},
		byExID: map[string]*stageInfo{},
		sm:     shuffle.NewMetrics(opts.Metrics),
		rfReg:  rf.NewRegistry(),
		rfc:    newRFCounters(opts.Metrics),
	}
	rootInfo := j.stageFor(root)
	j.results = make([][]*vector.Batch, rootInfo.stage.NumTasks)

	var drv *sched.Driver
	if opts.Pool != nil {
		drv = sched.NewDriverOnPool(opts.Pool)
	} else {
		drv = sched.NewDriver(j.par)
	}
	drv.Tenant, drv.TenantWeight = opts.Tenant, opts.TenantWeight
	jobStart := time.Now()
	jobStats, err := drv.RunJobStats(ctx, rootInfo.stage)
	if opts.Stats != nil {
		*opts.Stats = RunStats{SlotsHeldPeak: jobStats.SlotsHeldPeak, Stages: len(j.stages)}
		if err == nil {
			opts.Stats.Profile = j.buildProfile(root)
		}
	}
	if opts.Trace != nil {
		j.emitStageSpans(opts.Trace)
	}
	if err != nil {
		return nil, nil, err
	}

	// Driver tail: merge ordered per-task runs or concatenate, then apply
	// the global limit. Traced as the driver's own span.
	tailStart := time.Now()
	if opts.Trace != nil {
		defer func() {
			tid := opts.Trace.NextTID()
			opts.Trace.NameThread(tid, "driver")
			opts.Trace.Span("job", "driver", tid, jobStart, time.Since(jobStart),
				map[string]any{"stages": len(j.stages)})
			opts.Trace.Span("gather/merge", "driver", tid, tailStart, time.Since(tailStart), nil)
		}()
	}
	schema := root.Root.Schema()
	if len(root.MergeKeys) > 0 {
		rows, err := exec.MergeSortedRuns(ctx, j.results, execSortKeys(root.MergeKeys), root.TailLimit)
		if err != nil {
			return nil, nil, err
		}
		return rows, schema, nil
	}
	var rows [][]any
	for _, bs := range j.results {
		for _, b := range bs {
			rows = append(rows, b.Rows()...)
		}
	}
	if root.TailLimit >= 0 && int64(len(rows)) > root.TailLimit {
		rows = rows[:root.TailLimit]
	}
	return rows, schema, nil
}

// stageFor memoizes the scheduler stage for a fragment, wiring exchange
// dependencies. Task counts are static: fragments with a partitioned scan
// or a hash-exchange input run Parallelism tasks (hash readers with fewer
// coalesced partition groups than tasks no-op the excess); pure broadcast
// builds and constant fragments run one task.
func (j *stagedJob) stageFor(f *catalyst.Fragment) *stageInfo {
	if si, ok := j.stages[f]; ok {
		return si
	}
	si := &stageInfo{frag: f, exID: nextExchangeID()}
	// Resolve every lazily-memoized logical schema on this single-threaded
	// planning path: tasks of a stage share the fragment's plan nodes, and
	// concurrent first calls to Schema() would race on the memo writes.
	warmSchemas(f.Root)
	si.schema = f.Root.Schema()
	if f.Out == catalyst.ExchangeHash {
		si.partBytes = make([]int64, j.par)
	}
	j.stages[f] = si

	// Dependencies: exchange inputs plus runtime-filter producers (the
	// latter are usually already exchange inputs; deduplicate). The driver
	// runs stages in dependency order, so every filter a task consults is
	// complete before the task plans.
	var deps []*sched.Stage
	depSeen := map[*catalyst.Fragment]bool{}
	for _, in := range append(append([]*catalyst.Fragment(nil), f.Inputs...), f.RFInputs...) {
		if depSeen[in] {
			continue
		}
		depSeen[in] = true
		deps = append(deps, j.stageFor(in).stage)
	}
	numTasks := 1
	if f.PartitionedScan || f.ReadsHash {
		numTasks = j.par
	}
	if f.RFKeys != nil {
		j.rfReg.Expect(f.ID, numTasks)
	}
	si.commitMu = make([]sync.Mutex, numTasks)
	si.done = make([]bool, numTasks)
	si.recMu = make([]sync.Mutex, numTasks)
	si.recAttempts = make([]int, numTasks)
	si.recGen = make([]atomic.Int64, numTasks)
	j.byExID[si.exID] = si
	si.stage = &sched.Stage{
		Name:     fmt.Sprintf("stage-%d-%s", f.ID, f.Out),
		NumTasks: numTasks,
		Deps:     deps,
		Run:      func(ctx context.Context, taskID int) error { return j.runTaskRecover(ctx, si, taskID) },
	}
	return si
}

// runTaskRecover runs one task attempt and, when the attempt fails because a
// consumed shuffle/broadcast block is corrupt or missing, performs lineage
// recovery: re-run the *producing* map task to republish the lost output,
// then surface a retryable error so the scheduler re-runs this consumer with
// a fresh operator tree (§2.2 task retry on top of lineage, the classic
// "recompute the lost partition" path).
func (j *stagedJob) runTaskRecover(ctx context.Context, si *stageInfo, taskID int) error {
	snap := j.snapshotRecovery()
	err := j.runTask(ctx, si, taskID, false)
	var cbe *shuffle.CorruptBlockError
	if err == nil || !errors.As(err, &cbe) {
		return err
	}
	if rerr := j.recoverProducer(ctx, cbe, snap, 0); rerr != nil {
		return fmt.Errorf("driver: unrecoverable shuffle corruption: %w (recovery: %v)", err, rerr)
	}
	// Producer output republished; retry this consumer from scratch.
	return sched.Retryable(err)
}

// recSnapshot records each producer stage's per-map-task repair generation at
// the moment a consumer attempt starts. If the consumer later reports a
// corrupt block whose map task was repaired *after* the snapshot, the corrupt
// read raced an in-flight repair and the re-run is skipped — the retry will
// read the already-republished files. Without this, N consumers of one lost
// output would burn N of its bounded repair attempts on identical re-runs.
type recSnapshot map[*stageInfo][]int64

func (j *stagedJob) snapshotRecovery() recSnapshot {
	snap := make(recSnapshot, len(j.byExID))
	for _, pi := range j.byExID {
		gens := make([]int64, len(pi.recGen))
		for m := range pi.recGen {
			gens[m] = pi.recGen[m].Load()
		}
		snap[pi] = gens
	}
	return snap
}

// Lineage-recovery bounds: how deep a corrupt-block chain may recurse (a
// producer re-run can itself hit a corrupt input from *its* producer) and how
// often one map task's output may be repaired before we give up.
const (
	maxRecoveryDepth    = 4
	maxRecoveryAttempts = 3
)

// recoverProducer re-runs the map task that produced a corrupt/missing
// shuffle block, addressed by (exchange ID, map task) lineage. Re-runs are
// serialized per map task so concurrent consumers of the same lost output
// repair it once; recovery-mode runs republish shuffle files but skip every
// stats/profile/filter side effect (the original attempt already counted).
func (j *stagedJob) recoverProducer(ctx context.Context, cbe *shuffle.CorruptBlockError, snap recSnapshot, depth int) error {
	pi, ok := j.byExID[cbe.ShuffleID]
	if !ok {
		return fmt.Errorf("driver: no producer stage for shuffle %s", cbe.ShuffleID)
	}
	if cbe.MapTask < 0 || cbe.MapTask >= len(pi.recMu) {
		return fmt.Errorf("driver: map task %d out of range for shuffle %s", cbe.MapTask, cbe.ShuffleID)
	}
	pi.recMu[cbe.MapTask].Lock()
	defer pi.recMu[cbe.MapTask].Unlock()
	if gens, ok := snap[pi]; ok && cbe.MapTask < len(gens) && pi.recGen[cbe.MapTask].Load() > gens[cbe.MapTask] {
		// Another consumer already repaired this map task after our attempt
		// began: the corrupt read raced the repair. Skip the redundant re-run
		// and let the caller retry against the republished files.
		return nil
	}
	for {
		if pi.recAttempts[cbe.MapTask] >= maxRecoveryAttempts {
			return fmt.Errorf("driver: map task %d of shuffle %s failed recovery %d times",
				cbe.MapTask, cbe.ShuffleID, maxRecoveryAttempts)
		}
		pi.recAttempts[cbe.MapTask]++
		err := j.runTask(ctx, pi, cbe.MapTask, true)
		if err == nil {
			pi.recGen[cbe.MapTask].Add(1)
			pi.recovered.Add(1)
			if j.sm != nil {
				j.sm.BlocksRecovered.Inc()
			}
			return nil
		}
		// The producer's own inputs may be corrupt too: recurse up the
		// lineage, then retry this level.
		var nested *shuffle.CorruptBlockError
		if errors.As(err, &nested) && depth < maxRecoveryDepth {
			if rerr := j.recoverProducer(ctx, nested, snap, depth+1); rerr != nil {
				return rerr
			}
			continue
		}
		if sched.IsRetryable(err) && ctx.Err() == nil {
			continue
		}
		return err
	}
}

// warmSchemas forces schema resolution over a whole plan tree. Several
// logical nodes memoize Schema() lazily; warming them before tasks launch
// keeps the shared plan read-only during parallel execution.
func warmSchemas(n sql.LogicalPlan) {
	if n == nil {
		return
	}
	n.Schema()
	for _, c := range n.Children() {
		warmSchemas(c)
	}
}

// assignmentsFor lazily computes the consumer's partition groups from the
// *summed* byte statistics of all its hash inputs — a shuffle join must
// coalesce both sides identically so partition i of the probe side meets
// partition i of the build side in one task. Input stages have completed
// (blocking boundaries), so the statistics are final.
func (j *stagedJob) assignmentsFor(si *stageInfo) [][]int {
	si.assignOnce.Do(func() {
		sum := make([]int64, j.par)
		for _, in := range si.frag.Inputs {
			if in.Out != catalyst.ExchangeHash {
				continue
			}
			pi := j.stages[in]
			pi.bytesMu.Lock()
			for p, b := range pi.partBytes {
				sum[p] += b
			}
			pi.bytesMu.Unlock()
		}
		si.assignments = coalescePartitions(sum)
	})
	return si.assignments
}

// runTask executes one task of a stage: build the fragment's operator tree
// (exchange leaves resolve to this task's shuffle/broadcast readers), then
// dispose of the output per the fragment's exchange kind. ctx is the job's
// (or this attempt's) context: operators observe it at batch boundaries, so
// a cancelled query or losing speculative twin stops within one batch. After
// a successful run the task snapshots its operator metrics into the stage's
// merged profile and emits its trace row.
//
// With speculative duplicates, two attempts of the same task can race to
// this function's tail; the per-task commit guard admits exactly one
// publisher (shuffle rename, gather results, profile/filter side effects) —
// the loser aborts its staged files and returns success without counting.
//
// recovery marks a lineage-recovery re-run: it republishes the task's
// shuffle output unconditionally (overwriting the corrupt files) and skips
// every stats, trace, filter, and result side effect, because the original
// committed attempt already produced them.
func (j *stagedJob) runTask(ctx context.Context, si *stageInfo, taskID int, recovery bool) error {
	f := si.frag
	if h := j.opts.testTaskStart; h != nil && !recovery {
		h(f, taskID, j.dir)
	}

	var parts []int // hash partitions this task consumes
	if f.ReadsHash {
		asg := j.assignmentsFor(si)
		if taskID >= len(asg) {
			// Coalescing produced fewer groups than the static task count.
			// A coalesced-away producer task still counts toward its runtime
			// filter's completeness (it contributes no rows).
			if f.RFKeys != nil && !recovery {
				j.rfReg.Publish(f.ID, taskID, nil)
			}
			// Committed map outputs are the reader's integrity invariant —
			// a missing partition file means lost data. So even a no-op task
			// publishes (empty) shuffle files for its exchange output.
			if f.Out == catalyst.ExchangeHash || f.Out == catalyst.ExchangeBroadcast {
				if err := j.publishEmpty(si, taskID, recovery); err != nil {
					return err
				}
			}
			if tr := j.opts.Trace; tr != nil && !recovery {
				tr.Instant(fmt.Sprintf("stage-%d/task-%d coalesced away", f.ID, taskID),
					"task", 0, time.Now(), nil)
			}
			return nil
		}
		parts = asg[taskID]
	}

	cfg := j.opts.Config
	if f.PartitionedScan && si.stage.NumTasks > 1 {
		cfg.ScanPartitions = si.stage.NumTasks
		cfg.ScanPartition = taskID
	}

	// Runtime-filter consumer wiring: resolve published filters for this
	// fragment's RuntimeFilterPlan nodes and project their columns onto the
	// scan for file/row-group pruning. Producer stages completed before this
	// task was scheduled, so lookups are final; a nil resolution (dropped
	// filter) degrades to a pass-through.
	if len(f.RFInputs) > 0 || len(f.ScanRF) > 0 {
		cfg.RuntimeFilterSource = func(id int) *rf.Filter {
			flt := j.rfReg.Filter(id)
			if flt.Usable() {
				j.rfc.applied.Inc()
			}
			return flt
		}
		var scf []catalyst.ScanColFilter
		for _, s := range f.ScanRF {
			flt := j.rfReg.Filter(s.Producer.ID)
			if flt == nil || s.KeyIdx >= len(flt.Cols) {
				continue
			}
			if c := flt.Cols[s.KeyIdx]; c != nil {
				scf = append(scf, catalyst.ScanColFilter{Col: s.ScanCol, F: c})
			}
		}
		cfg.ScanRuntimeFilters = scf
		cfg.OnScanPrune = func(files, groups, rows int64) {
			si.notePrune(files, groups, rows)
			j.rfc.filesPruned.Add(files)
			j.rfc.groupsPruned.Add(groups)
			j.rfc.rowsPruned.Add(rows)
		}
	}
	tc := j.opts.newTaskCtx(ctx)
	tc.SpillDir = j.dir
	// Tasks of one stage share in-memory table batches read-only.
	tc.Expr.SharedVectors = true
	// Feed batch-boundary progress to the scheduler's straggler detector
	// (the attempt context carries the per-task progress sink) and, when
	// set, the caller's live-query registry.
	if p := sched.ProgressFromContext(ctx); p != nil {
		if ext := j.opts.Progress; ext != nil {
			report := p.Report
			tc.Progress = func(rows, bytes int64) {
				report(rows, bytes)
				ext(rows, bytes)
			}
		} else {
			tc.Progress = p.Report
		}
	} else {
		tc.Progress = j.opts.Progress
	}

	cfg.ExchangeSource = func(er *catalyst.ExchangeRead) (exec.Operator, error) {
		in := er.Frag
		pi, ok := j.stages[in]
		if !ok {
			return nil, fmt.Errorf("driver: exchange read of unplanned stage %d", in.ID)
		}
		schema := pi.schema
		mapTasks := pi.stage.NumTasks
		if er.Broadcast {
			name := fmt.Sprintf("BroadcastRead(stage=%d)", in.ID)
			op := exec.NewBroadcastRead(name, schema, func() ([]exec.ShuffleSource, error) {
				r := shuffle.NewBroadcastReader(j.dir, pi.exID, mapTasks, schema)
				r.Obs = j.sm
				r.Ctx = ctx
				return []exec.ShuffleSource{r}, nil
			})
			op.Stats().SetUpstream(in.ID)
			return op, nil
		}
		name := fmt.Sprintf("ShuffleRead(stage=%d)", in.ID)
		myParts := parts
		op := exec.NewShuffleRead(name, schema, func() ([]exec.ShuffleSource, error) {
			srcs := make([]exec.ShuffleSource, 0, len(myParts))
			for _, p := range myParts {
				r := shuffle.NewReader(j.dir, pi.exID, mapTasks, p, schema)
				r.Obs = j.sm
				r.Ctx = ctx
				srcs = append(srcs, r)
			}
			return srcs, nil
		})
		op.Stats().SetUpstream(in.ID)
		return op, nil
	}

	op, err := catalyst.BuildOperator(f.Root, cfg, tc)
	if err != nil {
		return err
	}

	// Runtime-filter producer wiring: tap the build stage's output into a
	// per-task partial filter, published once the task drains successfully.
	// Every task sizes from the same RFExpectRows estimate so the partial
	// Blooms union word-for-word.
	var rfBuild *exec.RuntimeFilterBuildOp
	if f.RFKeys != nil {
		keyTypes := make([]types.DataType, len(f.RFKeys))
		for i, c := range f.RFKeys {
			keyTypes[i] = si.schema.Field(c).Type
		}
		rfBuild = exec.NewRuntimeFilterBuild(op, f.RFKeys, rf.NewFilter(keyTypes, f.RFExpectRows))
		op = rfBuild
	}

	// Wrap the output exchange (if any) so the whole per-task tree —
	// including the ShuffleWrite sink — is profiled and traced uniformly.
	// Writers stage into attempt-private temp files; only a committing
	// attempt publishes them (atomic rename), and every other exit path —
	// error, cancellation, losing a speculative race — aborts the staged
	// files so duplicate attempts never clobber a committed twin.
	var root exec.Operator = op
	var w *shuffle.Writer
	committed := false
	defer func() {
		if w != nil && !committed {
			w.Abort()
		}
	}()
	switch f.Out {
	case catalyst.ExchangeHash:
		w, err = shuffle.NewWriter(j.dir, si.exID, taskID, j.par, shuffle.EncoderOptions{Adaptive: true})
		if err != nil {
			return err
		}
		w.Obs = j.sm
		w.Ctx = ctx
		var split exec.PartitionFunc
		if len(f.HashCols) > 0 {
			split = shuffle.NewPartitioner(j.par, f.HashCols).Split
		}
		// nil split: keyless aggregation — every row reduces in partition 0.
		root = exec.NewShuffleWrite(op, w, split)
	case catalyst.ExchangeBroadcast:
		w, err = shuffle.NewBroadcastWriter(j.dir, si.exID, taskID, shuffle.EncoderOptions{Adaptive: true})
		if err != nil {
			return err
		}
		w.Obs = j.sm
		w.Ctx = ctx
		root = exec.NewShuffleWrite(op, w, nil)
	}

	// Stable pre-order IDs: every task of the stage builds the identical
	// tree, so IDs are the cross-task merge key.
	exec.AssignStatsIDs(root)
	start := time.Now()
	var batches []*vector.Batch
	if f.Out == catalyst.ExchangeGather {
		batches, err = exec.CollectAll(root, tc)
		if err != nil {
			return err
		}
	} else if err := exec.Drain(root, tc); err != nil {
		return err
	}
	end := time.Now()

	if recovery {
		// Lineage re-run: republish the shuffle output over the corrupt
		// files and nothing else — the original committed attempt already
		// produced the stats, filters, and results.
		if w != nil {
			if err := w.Commit(); err != nil {
				return err
			}
			committed = true
		}
		return nil
	}

	// Commit-once: exactly one attempt (original or speculative duplicate)
	// publishes. The loser blocks here until the winner's publish completes,
	// then returns success without side effects; its deferred Abort removes
	// the staged temp files.
	si.commitMu[taskID].Lock()
	if si.done[taskID] {
		si.commitMu[taskID].Unlock()
		return nil
	}
	if w != nil {
		if err := w.Commit(); err != nil {
			si.commitMu[taskID].Unlock()
			return err
		}
		committed = true
	}
	if f.Out == catalyst.ExchangeGather {
		j.results[taskID] = batches
	}
	si.done[taskID] = true
	si.commitMu[taskID].Unlock()

	if w != nil {
		if f.Out == catalyst.ExchangeHash {
			si.bytesMu.Lock()
			for p, b := range w.PartBytes {
				si.partBytes[p] += b
			}
			si.bytesMu.Unlock()
		}
		si.noteShuffleOut(w)
	}
	// Publish the task's partial runtime filter only on the committing path:
	// a failed (and possibly retried) attempt never contributes, so the
	// merged filter reflects exactly one complete pass over the build input.
	if rfBuild != nil {
		j.rfReg.Publish(f.ID, taskID, rfBuild.Filter())
		if taskID == 0 {
			j.rfc.built.Inc()
		}
	}
	snaps := exec.SnapshotStats(root)
	for _, s := range snaps {
		if strings.HasPrefix(s.Name, "RuntimeFilter(") {
			j.rfc.rowsPruned.Add(s.RowsIn - s.RowsOut)
		}
	}
	notePoolMetrics(j.opts.Metrics, tc)
	noteDec64Metrics(j.opts.Metrics, tc.Expr)
	si.noteTask(snaps, start, end)
	si.notePipelines(exec.CollectPipelines(root))
	si.noteDec64(tc.Expr)
	if tr := j.opts.Trace; tr != nil {
		tid := tr.NextTID()
		label := fmt.Sprintf("stage-%d/task-%d", f.ID, taskID)
		tr.NameThread(tid, label)
		emitTaskTrace(tr, tid, label, start, end.Sub(start), snaps)
	}
	return nil
}

// publishEmpty commits an empty shuffle/broadcast output for a map task that
// produced no rows (coalesced away), preserving the invariant that every
// committed map task's partition files exist.
func (j *stagedJob) publishEmpty(si *stageInfo, taskID int, recovery bool) error {
	if !recovery {
		si.commitMu[taskID].Lock()
		defer si.commitMu[taskID].Unlock()
		if si.done[taskID] {
			return nil
		}
	}
	parts := 1
	if si.frag.Out == catalyst.ExchangeHash {
		parts = j.par
	}
	w, err := shuffle.NewWriter(j.dir, si.exID, taskID, parts, shuffle.EncoderOptions{})
	if err != nil {
		return err
	}
	if err := w.Commit(); err != nil {
		w.Abort()
		return err
	}
	if !recovery {
		si.done[taskID] = true
	}
	return nil
}

// buildProfile assembles the stages' merged operator rows into the query's
// stitched EXPLAIN ANALYZE profile, ordered by stage ID.
func (j *stagedJob) buildProfile(root *catalyst.Fragment) *QueryProfile {
	q := &QueryProfile{Root: root.ID}
	for f, si := range j.stages {
		si.profMu.Lock()
		sp := StageProfile{
			ID: f.ID, Label: f.Label, Out: f.Out.String(),
			TasksPlanned: si.stage.NumTasks, TasksRun: si.tasksRun,
			WallNanos:       int64(si.stage.Stats().WallTime),
			Ops:             append([]OpProfile(nil), si.ops...),
			ShuffleRawBytes: si.outRaw, ShuffleBytes: si.outBytes,
			ShuffleRows: si.outRows, EncCounts: si.encCounts,
			RFFilesPruned: si.rfFiles, RFGroupsPruned: si.rfGroups,
			RFRowsPruned: si.rfScanRows,
			PipelineOps:  si.pipeOps, PipelineBatches: si.pipeBatches,
			PipelineRows: si.pipeRows,
			Dec64Batches: si.dec64Batches, Dec64Escapes: si.dec64Escapes,
			Recovered: si.recovered.Load(),
		}
		{
			st := si.stage.Stats()
			sp.Speculated = st.Speculated.Load()
			sp.SpecWins = st.SpecWins.Load()
			sp.Retries = st.Retries.Load()
		}
		// Row-level runtime-filter drops (pre-shuffle / pre-probe) fold into
		// the same pruning total as scan-level skips.
		for _, o := range sp.Ops {
			if strings.HasPrefix(o.Name, "RuntimeFilter(") {
				sp.RFRowsPruned += o.RowsIn - o.RowsOut
			}
		}
		si.profMu.Unlock()
		q.Stages = append(q.Stages, sp)
	}
	sort.Slice(q.Stages, func(a, b int) bool { return q.Stages[a].ID < q.Stages[b].ID })
	return q
}

// emitStageSpans records one span per stage covering its tasks' wall-clock
// envelope (first task start to last task end).
func (j *stagedJob) emitStageSpans(tr *obs.Trace) {
	infos := make([]*stageInfo, 0, len(j.stages))
	for _, si := range j.stages {
		infos = append(infos, si)
	}
	sort.Slice(infos, func(a, b int) bool { return infos[a].frag.ID < infos[b].frag.ID })
	for _, si := range infos {
		si.profMu.Lock()
		start, end, n := si.firstStart, si.lastEnd, si.tasksRun
		si.profMu.Unlock()
		if n == 0 || start.IsZero() {
			continue
		}
		tid := tr.NextTID()
		tr.NameThread(tid, fmt.Sprintf("stage-%d %s", si.frag.ID, si.frag.Label))
		tr.Span(fmt.Sprintf("stage %d", si.frag.ID), "stage", tid, start, end.Sub(start),
			map[string]any{"tasks": n, "label": si.frag.Label})
	}
}

func execSortKeys(keys []sql.SortKeyPlan) []exec.SortKey {
	out := make([]exec.SortKey, len(keys))
	for i, k := range keys {
		out[i] = exec.SortKey{Col: k.Col, Desc: k.Desc}
	}
	return out
}

// coalescePartitions groups shuffle partitions into reduce tasks so each
// task handles at least targetBytes of input (the AQE partition-coalescing
// heuristic, §5.5). Partitions stay in order; every partition is assigned
// exactly once.
func coalescePartitions(partBytes []int64) [][]int {
	var total int64
	for _, b := range partBytes {
		total += b
	}
	// Target: keep all tasks busy, but merge partitions much smaller than
	// an even share.
	target := total / int64(len(partBytes))
	if target < 1 {
		target = 1
	}
	var out [][]int
	var cur []int
	var curBytes int64
	for p, b := range partBytes {
		cur = append(cur, p)
		curBytes += b
		if curBytes >= target {
			out = append(out, cur)
			cur = nil
			curBytes = 0
		}
	}
	if len(cur) > 0 {
		out = append(out, cur)
	}
	return out
}
