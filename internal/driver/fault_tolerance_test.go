package driver

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"photon/internal/fault"
	"photon/internal/mem"
	"photon/internal/obs"
	"photon/internal/sched"
	"photon/internal/sql/catalyst"
	"photon/internal/tpch"
)

// faultTolerantPool builds a slot pool with enough retry headroom for tests
// that inject many transient failures into one query.
func faultTolerantPool(slots, maxAttempts int) *sched.Pool {
	pool := sched.NewPool(slots)
	pool.SetOptions(sched.PoolOptions{
		MaxAttempts:     maxAttempts,
		RetryBackoff:    50 * time.Microsecond,
		RetryBackoffCap: 2 * time.Millisecond,
	})
	return pool
}

// corruptShuffleFiles damages every committed shuffle partition file in dir:
// mode "bitflip" XORs one byte in the middle of each non-empty file (checksum
// mismatch on read), mode "delete" removes the files outright (missing
// partition file). Returns how many files were damaged.
func corruptShuffleFiles(t *testing.T, dir, mode string) int {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(dir, "shuffle-*.bin"))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, p := range paths {
		switch mode {
		case "delete":
			if err := os.Remove(p); err != nil {
				t.Fatalf("remove %s: %v", p, err)
			}
			n++
		case "bitflip":
			info, err := os.Stat(p)
			if err != nil || info.Size() == 0 {
				continue
			}
			f, err := os.OpenFile(p, os.O_RDWR, 0)
			if err != nil {
				t.Fatalf("open %s: %v", p, err)
			}
			off := info.Size() / 2
			var b [1]byte
			if _, err := f.ReadAt(b[:], off); err != nil {
				f.Close()
				t.Fatalf("read %s: %v", p, err)
			}
			b[0] ^= 0xFF
			if _, err := f.WriteAt(b[:], off); err != nil {
				f.Close()
				t.Fatalf("write %s: %v", p, err)
			}
			f.Close()
			n++
		default:
			t.Fatalf("unknown corruption mode %q", mode)
		}
	}
	return n
}

// TestShuffleCorruptionRecovered is the lineage-recovery acceptance test: a
// query whose committed shuffle output is damaged mid-flight (bit flips or
// deleted partition files) must detect the corruption via block checksums,
// transparently re-run the producing map tasks, and still return exactly the
// clean run's result — observable through the corruption/recovery metrics and
// the EXPLAIN ANALYZE profile.
func TestShuffleCorruptionRecovered(t *testing.T) {
	cat := tpch.NewGen(0.002).Generate()
	want := runTPCH(t, cat, 3, Options{Parallelism: 4, ShuffleDir: t.TempDir(), BroadcastRows: -1})

	for _, mode := range []string{"bitflip", "delete"} {
		mode := mode
		t.Run(mode, func(t *testing.T) {
			reg := obs.NewRegistry()
			var stats RunStats
			var once sync.Once
			damaged := 0
			opts := Options{
				Parallelism:   4,
				ShuffleDir:    t.TempDir(),
				BroadcastRows: -1, // all exchanges are hash shuffles
				Pool:          faultTolerantPool(4, 12),
				Metrics:       reg,
				Stats:         &stats,
				// When the first shuffle-consuming task starts, its input
				// stages have committed: damage every published file once.
				testTaskStart: func(f *catalyst.Fragment, taskID int, dir string) {
					if !f.ReadsHash {
						return
					}
					once.Do(func() { damaged = corruptShuffleFiles(t, dir, mode) })
				},
			}
			got := runTPCH(t, cat, 3, opts)
			if damaged == 0 {
				t.Fatal("corruption hook never damaged a file")
			}
			if a, b := render(want), render(got); !equalSorted(a, b) {
				t.Fatalf("recovered run returned wrong result: %d rows, want %d", len(b), len(a))
			}

			corrupt := reg.Counter("photon_shuffle_blocks_corrupt_total", "").Load()
			recovered := reg.Counter("photon_shuffle_blocks_recovered_total", "").Load()
			if corrupt == 0 {
				t.Error("no corrupt block detected despite damaged files")
			}
			if recovered == 0 {
				t.Error("no map task recovery recorded")
			}
			t.Logf("mode=%s damaged=%d corrupt=%d recovered=%d", mode, damaged, corrupt, recovered)

			// EXPLAIN ANALYZE surfaces per-stage recovery counts.
			if stats.Profile == nil {
				t.Fatal("no profile")
			}
			var profRecovered int64
			for _, sp := range stats.Profile.Stages {
				profRecovered += sp.Recovered
			}
			if profRecovered == 0 {
				t.Error("profile reports zero recovered map tasks")
			}
			if !strings.Contains(stats.Profile.Render(), "recovery[recovered=") {
				t.Error("rendered profile missing recovery annotation")
			}
		})
	}
}

// TestFailpointCoverageDistributed arms the five distributed-execution
// failpoints with a fail-once policy each and runs shuffle- and
// broadcast-join queries through the driver: every site must fire, every
// injected failure must be retried transparently, and results must match the
// clean run. (Spill-path sites are covered by the exec package's
// TestSpillFailpointsRetryable; together these tests are the CI failpoint-
// coverage check.)
func TestFailpointCoverageDistributed(t *testing.T) {
	cat := tpch.NewGen(0.002).Generate()
	clean := map[string][]string{}
	for _, shape := range []struct {
		name string
		bc   int64
	}{{"shuffle", -1}, {"broadcast", 0}} {
		rows := runTPCH(t, cat, 3, Options{Parallelism: 4, ShuffleDir: t.TempDir(), BroadcastRows: shape.bc})
		clean[shape.name] = render(rows)
	}

	r := fault.NewRegistry(11)
	sites := []fault.Site{
		fault.ShuffleWrite, fault.ShuffleRead, fault.BroadcastFetch,
		fault.TaskStart, fault.MemReserve,
	}
	for _, s := range sites {
		r.Arm(s, fault.Policy{FailN: 1})
	}
	reg := obs.NewRegistry()
	r.Instrument(reg)
	defer fault.Activate(r)()

	for _, shape := range []struct {
		name string
		bc   int64
	}{{"shuffle", -1}, {"broadcast", 0}} {
		got := runTPCH(t, cat, 3, Options{
			Parallelism:   4,
			ShuffleDir:    t.TempDir(),
			BroadcastRows: shape.bc,
			Mem:           mem.NewManager(0),
			Pool:          faultTolerantPool(4, 8),
		})
		if a, b := clean[shape.name], render(got); !equalSorted(a, b) {
			t.Fatalf("%s: result diverged under injected faults (%d rows, want %d)",
				shape.name, len(b), len(a))
		}
	}

	for _, s := range sites {
		if r.Fires(s) == 0 {
			t.Errorf("site %s never fired", s)
		}
		c := reg.Counter(fmt.Sprintf("photon_failpoint_fires_total{site=%q}", string(s)), "")
		if c.Load() == 0 {
			t.Errorf("site %s fires not mirrored into metrics", s)
		}
	}
}

// TestSpeculativeStragglerDistributed injects one long task-start stall into
// a distributed query and asserts the straggler detector launches exactly one
// speculative duplicate whose winner commits once: results match the clean
// run, and the speculation shows up in pool metrics and the stitched profile.
func TestSpeculativeStragglerDistributed(t *testing.T) {
	cat := tpch.NewGen(0.002).Generate()
	want := runTPCH(t, cat, 1, Options{Parallelism: 4, ShuffleDir: t.TempDir()})

	r := fault.NewRegistry(7)
	r.Arm(fault.TaskStart, fault.Policy{Latency: 2 * time.Second, LatencyN: 1})
	defer fault.Activate(r)()

	pool := sched.NewPool(8)
	pool.SetOptions(sched.PoolOptions{Speculation: sched.SpeculationOptions{
		Multiplier:          2,
		MinCompleteFraction: 0.5,
		Interval:            time.Millisecond,
		MinTaskTime:         15 * time.Millisecond,
	}})
	reg := obs.NewRegistry()
	pool.Instrument(reg)

	var stats RunStats
	start := time.Now()
	got := runTPCH(t, cat, 1, Options{
		Parallelism: 4, ShuffleDir: t.TempDir(),
		Pool: pool, Stats: &stats, Metrics: reg,
	})
	wall := time.Since(start)
	if a, b := render(want), render(got); !equalSorted(a, b) {
		t.Fatalf("speculative run returned wrong result: %d rows, want %d", len(b), len(a))
	}
	if wall >= 2*time.Second {
		t.Errorf("query took %v: speculation did not mask the injected 2s stall", wall)
	}

	launched := reg.Counter("photon_speculative_launched_total", "").Load()
	won := reg.Counter("photon_speculative_won_total", "").Load()
	if launched != 1 {
		t.Errorf("speculative launches = %d, want exactly 1", launched)
	}
	if won != 1 {
		t.Errorf("speculative wins = %d, want exactly 1", won)
	}
	var profSpec, profWins int64
	for _, sp := range stats.Profile.Stages {
		profSpec += sp.Speculated
		profWins += sp.SpecWins
	}
	if profSpec != 1 || profWins != 1 {
		t.Errorf("profile speculation = launched %d won %d, want 1/1", profSpec, profWins)
	}
	if !strings.Contains(stats.Profile.Render(), "spec[launched=") {
		t.Error("rendered profile missing speculation annotation")
	}
}

// equalSorted compares two rendered row sets order-insensitively.
func equalSorted(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]string(nil), a...)
	bs := append([]string(nil), b...)
	sort.Strings(as)
	sort.Strings(bs)
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}
