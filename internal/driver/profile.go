package driver

import (
	"fmt"
	"strings"
	"time"

	"photon/internal/exec"
	"photon/internal/expr"
	"photon/internal/shuffle"
)

// Distributed EXPLAIN ANALYZE: every task snapshots its operator tree's
// metrics after running (exec.SnapshotStats); the driver merges snapshots
// across a stage's tasks keyed by the stable pre-order operator IDs
// (exec.AssignStatsIDs — every task of a stage builds the identical tree
// from the fragment's plan), then stitches stage fragments back into one
// query-shaped profile at the exchange-read leaves (OpStats upstream
// markers). The result is the paper's per-operator debugging interface
// (§3.3) surviving parallel, multi-stage execution.

// OpProfile is one operator's metrics merged across all tasks of a stage.
// Counters sum; PeakMemory takes the per-task maximum.
type OpProfile struct {
	ID       int
	Depth    int
	Name     string
	Upstream int // producing stage for exchange-read leaves; -1 otherwise
	Tasks    int // number of task snapshots merged into this row

	RowsIn, RowsOut, BatchesOut, TimeNanos          int64
	SpillCount, SpillBytes, PeakMemory, Compactions int64
}

// line renders the merged operator row, matching exec.OpStats.String's
// column layout plus the task count.
func (o *OpProfile) line() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-28s in=%-10d out=%-10d batches=%-7d time=%-12v tasks=%d",
		o.Name, o.RowsIn, o.RowsOut, o.BatchesOut,
		time.Duration(o.TimeNanos).Round(time.Microsecond), o.Tasks)
	if o.SpillCount > 0 {
		fmt.Fprintf(&sb, " spills=%d spillBytes=%d", o.SpillCount, o.SpillBytes)
	}
	if o.PeakMemory > 0 {
		fmt.Fprintf(&sb, " peakMem=%d", o.PeakMemory)
	}
	if o.Compactions > 0 {
		fmt.Fprintf(&sb, " compactions=%d", o.Compactions)
	}
	if o.Upstream >= 0 {
		fmt.Fprintf(&sb, " <- stage %d", o.Upstream)
	}
	return strings.TrimRight(sb.String(), " ")
}

// StageProfile is one fragment's merged execution profile.
type StageProfile struct {
	ID    int
	Label string // fragment label ("FinalAgg->gather")
	Out   string // output exchange kind
	// TasksPlanned is the scheduled task count; TasksRun counts tasks that
	// actually built and ran an operator tree (AQE coalescing can no-op
	// excess readers).
	TasksPlanned, TasksRun int
	WallNanos              int64
	Ops                    []OpProfile

	// Output-exchange volume (hash/broadcast stages): encoded bytes before
	// framing, compressed bytes on disk, rows, and the §4.6 adaptive
	// encoding decisions by column block.
	ShuffleRawBytes, ShuffleBytes, ShuffleRows int64
	EncCounts                                  [3]int64

	// Runtime-filter pruning observed by this (probe-side) stage: Delta
	// files and Parquet row groups skipped entirely, and rows eliminated
	// (scan-level skips plus row-level RuntimeFilter drops).
	RFFilesPruned, RFGroupsPruned, RFRowsPruned int64

	// Fused-pipeline execution: operators running inside fused pipelines in
	// one task's plan, and the batches/rows the stage's pipelines emitted
	// across all tasks. All zero when fusion is disabled or nothing fused.
	PipelineOps                   int
	PipelineBatches, PipelineRows int64

	// Narrow-decimal execution: decimal batches dispatched to the int64
	// fast path, and mid-batch overflow escapes back to the 128-bit
	// kernels. Zero when the fast path is disabled or no decimal work ran.
	Dec64Batches, Dec64Escapes int64

	// Fault-tolerance activity: Recovered counts lineage re-runs of this
	// stage's map tasks after corrupt/missing shuffle blocks; Speculated and
	// SpecWins count straggler duplicates launched and duplicates that
	// committed first; Retries counts extra attempts after transient task
	// failures.
	Recovered, Speculated, SpecWins, Retries int64
}

// QueryProfile is the stitched whole-query profile.
type QueryProfile struct {
	Root   int // root (gather) stage ID
	Stages []StageProfile

	// Cached and FastPath mirror the query's lifecycle routing (set by the
	// session): compile phase served from the plan cache, and small-query
	// fast-path execution. Surfaced in the Render header.
	Cached   bool
	FastPath bool
}

// Stage returns the profile of stage id (nil if absent).
func (q *QueryProfile) Stage(id int) *StageProfile {
	for i := range q.Stages {
		if q.Stages[i].ID == id {
			return &q.Stages[i]
		}
	}
	return nil
}

// fromSnapshot seeds a merged row from one task's snapshot.
func fromSnapshot(s exec.StatsSnapshot) OpProfile {
	return OpProfile{
		ID: s.ID, Depth: s.Depth, Name: s.Name, Upstream: s.Upstream, Tasks: 1,
		RowsIn: s.RowsIn, RowsOut: s.RowsOut, BatchesOut: s.BatchesOut,
		TimeNanos: s.TimeNanos, SpillCount: s.SpillCount, SpillBytes: s.SpillBytes,
		PeakMemory: s.PeakMemory, Compactions: s.Compactions,
	}
}

// mergeSnapshots folds one task's snapshots into a stage's merged rows.
// Tasks of a stage build identical trees, so rows align by position; the ID
// check guards the alignment and falls back to a search if shapes ever
// diverge.
func mergeSnapshots(ops []OpProfile, snaps []exec.StatsSnapshot) []OpProfile {
	for i, s := range snaps {
		var t *OpProfile
		if i < len(ops) && ops[i].ID == s.ID {
			t = &ops[i]
		} else {
			for j := range ops {
				if ops[j].ID == s.ID {
					t = &ops[j]
					break
				}
			}
		}
		if t == nil {
			ops = append(ops, fromSnapshot(s))
			continue
		}
		t.Tasks++
		t.RowsIn += s.RowsIn
		t.RowsOut += s.RowsOut
		t.BatchesOut += s.BatchesOut
		t.TimeNanos += s.TimeNanos
		t.SpillCount += s.SpillCount
		t.SpillBytes += s.SpillBytes
		t.Compactions += s.Compactions
		if s.PeakMemory > t.PeakMemory {
			t.PeakMemory = s.PeakMemory
		}
	}
	return ops
}

// Render formats the stitched profile: the root stage's operator tree with
// each producer fragment spliced in under the exchange-read leaf that
// consumes it — EXPLAIN ANALYZE output with the query's original shape.
func (q *QueryProfile) Render() string {
	var sb strings.Builder
	if q.Cached || q.FastPath {
		sb.WriteString("Plan:")
		if q.Cached {
			sb.WriteString(" cached")
		}
		if q.FastPath {
			sb.WriteString(" fast-path")
		}
		sb.WriteByte('\n')
	}
	seen := map[int]bool{}
	var render func(id, indent int)
	render = func(id, indent int) {
		st := q.Stage(id)
		if st == nil || seen[id] {
			return
		}
		seen[id] = true
		pad := strings.Repeat("  ", indent)
		fmt.Fprintf(&sb, "%sStage %d [%s] tasks=%d/%d wall=%v",
			pad, st.ID, st.Label, st.TasksRun, st.TasksPlanned,
			time.Duration(st.WallNanos).Round(time.Microsecond))
		if st.ShuffleRows > 0 || st.ShuffleBytes > 0 {
			fmt.Fprintf(&sb, " shuffle[rows=%d bytes=%d raw=%d enc=%s]",
				st.ShuffleRows, st.ShuffleBytes, st.ShuffleRawBytes,
				encString(st.EncCounts))
		}
		if st.RFFilesPruned > 0 || st.RFGroupsPruned > 0 || st.RFRowsPruned > 0 {
			fmt.Fprintf(&sb, " rf[files=%d groups=%d rows=%d]",
				st.RFFilesPruned, st.RFGroupsPruned, st.RFRowsPruned)
		}
		if st.PipelineOps > 0 {
			fmt.Fprintf(&sb, " pipeline[ops=%d batches=%d rows=%d]",
				st.PipelineOps, st.PipelineBatches, st.PipelineRows)
		}
		if st.Dec64Batches > 0 || st.Dec64Escapes > 0 {
			fmt.Fprintf(&sb, " dec64[batches=%d escapes=%d]",
				st.Dec64Batches, st.Dec64Escapes)
		}
		if st.Recovered > 0 {
			fmt.Fprintf(&sb, " recovery[recovered=%d]", st.Recovered)
		}
		if st.Speculated > 0 {
			fmt.Fprintf(&sb, " spec[launched=%d won=%d]", st.Speculated, st.SpecWins)
		}
		if st.Retries > 0 {
			fmt.Fprintf(&sb, " retries[%d]", st.Retries)
		}
		sb.WriteByte('\n')
		for i := range st.Ops {
			op := &st.Ops[i]
			fmt.Fprintf(&sb, "%s%s%s\n", pad, strings.Repeat("  ", op.Depth+1), op.line())
			if op.Upstream >= 0 {
				render(op.Upstream, indent+op.Depth+2)
			}
		}
	}
	render(q.Root, 0)
	// Defensive: surface stages the stitch walk missed (should not happen)
	// rather than silently dropping them.
	for _, st := range q.Stages {
		if !seen[st.ID] {
			render(st.ID, 0)
		}
	}
	return sb.String()
}

// encString renders the per-encoding block counts compactly.
func encString(c [3]int64) string {
	parts := make([]string, 0, 3)
	for i, n := range c {
		if n > 0 {
			parts = append(parts, fmt.Sprintf("%s:%d", shuffle.EncodingNames[i], n))
		}
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ",")
}

// BoundaryFraction reports the fraction of total operator time spent in
// row<->column boundary nodes (Adapter/Transition) — the §6.3 metric. The
// distributed path runs pure-Photon fragments, so this is mainly meaningful
// on single-task hybrid plans. Returns 0 when no operator time was recorded.
func (q *QueryProfile) BoundaryFraction() float64 {
	var boundary, total int64
	for _, st := range q.Stages {
		for _, op := range st.Ops {
			total += op.TimeNanos
			if strings.HasPrefix(op.Name, "Adapter") || strings.HasPrefix(op.Name, "Transition") {
				boundary += op.TimeNanos
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(boundary) / float64(total)
}

// RowsByName sums RowsOut per operator name across all stages — the
// cross-parallelism invariant checked by the merge-correctness tests (scan,
// filter, project, and join outputs are partition-independent).
func (q *QueryProfile) RowsByName() map[string]int64 {
	out := map[string]int64{}
	for _, st := range q.Stages {
		for _, op := range st.Ops {
			out[op.Name] += op.RowsOut
		}
	}
	return out
}

// singleProfile wraps one task's operator tree as a one-stage profile so
// single-task runs and distributed runs share the EXPLAIN ANALYZE surface.
func singleProfile(root any, wall time.Duration, e *expr.Ctx) *QueryProfile {
	ops := mergeSnapshots(nil, exec.SnapshotStats(root))
	sp := StageProfile{
		ID: 0, Label: "single-task", Out: "gather",
		TasksPlanned: 1, TasksRun: 1,
		WallNanos: int64(wall), Ops: ops,
		Dec64Batches: e.Dec64Batches, Dec64Escapes: e.Dec64Escapes,
	}
	for _, pi := range exec.CollectPipelines(root) {
		sp.PipelineOps += pi.Ops
		sp.PipelineBatches += pi.Batches
		sp.PipelineRows += pi.Rows
	}
	return &QueryProfile{Root: 0, Stages: []StageProfile{sp}}
}
