package driver

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"

	"photon/internal/fault"
	"photon/internal/sql/catalyst"
	"photon/internal/tpch"
)

// unfused returns planner options with the fused-pipeline pass disabled.
func unfused() catalyst.Config {
	return catalyst.Config{DisableFusedPipelines: true}
}

// TestFusedPipelineEquivalence is the correctness gate of fused pipeline
// execution: fusion is a pure execution-strategy rewrite, so it must never
// change any result. Every TPC-H query runs unfused at parallelism 1 (the
// reference) and then fused/unfused at parallelism 1 and 4 — including
// forced-shuffle joins and a seeded fault-injection variant — and all result
// sets must agree.
func TestFusedPipelineEquivalence(t *testing.T) {
	cat := tpch.NewGen(0.002).Generate()
	for _, q := range tpch.QueryNumbers() {
		q := q
		t.Run(fmt.Sprintf("Q%02d", q), func(t *testing.T) {
			ref := render(runTPCH(t, cat, q, Options{
				Parallelism: 1, ShuffleDir: t.TempDir(), Config: unfused(),
			}))
			sort.Strings(ref)
			variants := []struct {
				name string
				opts Options
			}{
				{"par1-fused", Options{Parallelism: 1, ShuffleDir: t.TempDir()}},
				{"par4-fused", Options{Parallelism: 4, ShuffleDir: t.TempDir()}},
				{"par4-unfused", Options{Parallelism: 4, ShuffleDir: t.TempDir(), Config: unfused()}},
				{"par4-shuffle-fused", Options{Parallelism: 4, ShuffleDir: t.TempDir(), BroadcastRows: -1}},
				{"par4-shuffle-unfused", Options{Parallelism: 4, ShuffleDir: t.TempDir(), BroadcastRows: -1, Config: unfused()}},
			}
			for _, v := range variants {
				got := render(runTPCH(t, cat, q, v.opts))
				sort.Strings(got)
				if !reflect.DeepEqual(ref, got) {
					t.Fatalf("Q%d %s: %d rows != reference %d rows", q, v.name, len(got), len(ref))
				}
			}
		})
	}
}

// TestFusedPipelineEquivalenceUnderChaos re-checks fused execution with
// deterministic fault injection armed on the retry-covered distributed
// sites: recovery re-runs rebuild fused fragments too, and results must
// still match the clean unfused reference.
func TestFusedPipelineEquivalenceUnderChaos(t *testing.T) {
	cat := tpch.NewGen(0.002).Generate()
	refs := map[int][]string{}
	for _, q := range []int{3, 10, 18} { // shuffle-heavy multi-join queries
		ref := render(runTPCH(t, cat, q, Options{
			Parallelism: 1, ShuffleDir: t.TempDir(), Config: unfused(),
		}))
		sort.Strings(ref)
		refs[q] = ref
	}

	r := fault.NewRegistry(23)
	for _, s := range []fault.Site{fault.ShuffleWrite, fault.ShuffleRead, fault.BroadcastFetch, fault.TaskStart} {
		r.Arm(s, fault.Policy{FailN: 1})
	}
	defer fault.Activate(r)()

	for q, ref := range refs {
		got := render(runTPCH(t, cat, q, Options{
			Parallelism: 4,
			ShuffleDir:  t.TempDir(),
			Pool:        faultTolerantPool(4, 8),
		}))
		sort.Strings(got)
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("Q%d fused under chaos: %d rows != reference %d rows", q, len(got), len(ref))
		}
	}
	if r.TotalFires() == 0 {
		t.Error("chaos variant injected zero faults")
	}
}

// profileRows flattens the ID-stable part of a merged profile: per stage,
// every operator's pre-order ID, depth, name, and row counters. Fusing must
// leave all of it unchanged (only time attribution moves).
func profileRows(p *QueryProfile) []string {
	var out []string
	for _, st := range p.Stages {
		for _, op := range st.Ops {
			out = append(out, fmt.Sprintf("stage=%d id=%d depth=%d name=%s in=%d out=%d batches=%d tasks=%d",
				st.ID, op.ID, op.Depth, op.Name, op.RowsIn, op.RowsOut, op.BatchesOut, op.Tasks))
		}
	}
	return out
}

// TestFusedExplainAnalyzeProfile: EXPLAIN ANALYZE for a fused stage must
// still report every logical operator with unchanged pre-order IDs and
// row counts, plus the per-stage pipeline[...] summary line. Runtime
// filters are disabled here so row counters are timing-independent.
func TestFusedExplainAnalyzeProfile(t *testing.T) {
	cat := tpch.NewGen(0.002).Generate()
	run := func(cfg catalyst.Config) *RunStats {
		var rs RunStats
		runTPCH(t, cat, 3, Options{
			Parallelism: 4, ShuffleDir: t.TempDir(),
			Config: cfg, DisableRuntimeFilters: true, Stats: &rs,
		})
		return &rs
	}
	fusedStats := run(catalyst.Config{})
	unfusedStats := run(unfused())
	if fusedStats.Profile == nil || unfusedStats.Profile == nil {
		t.Fatal("missing profiles")
	}

	fusedRows := profileRows(fusedStats.Profile)
	unfusedRows := profileRows(unfusedStats.Profile)
	if len(fusedRows) == 0 || !reflect.DeepEqual(fusedRows, unfusedRows) {
		t.Fatalf("fused profile rows diverged\nfused:\n%s\nunfused:\n%s",
			strings.Join(fusedRows, "\n"), strings.Join(unfusedRows, "\n"))
	}
	// Sanity: the logical operators really carry row traffic in fused mode.
	var scanOut int64
	for _, st := range fusedStats.Profile.Stages {
		for _, op := range st.Ops {
			if strings.Contains(op.Name, "Scan") {
				scanOut += op.RowsOut
			}
		}
	}
	if scanOut == 0 {
		t.Errorf("fused profile reports no scan output rows\n%s", fusedStats.Profile.Render())
	}

	fusedRender := fusedStats.Profile.Render()
	if !strings.Contains(fusedRender, "pipeline[ops=") {
		t.Errorf("fused profile missing pipeline[...] stage line:\n%s", fusedRender)
	}
	if strings.Contains(unfusedStats.Profile.Render(), "pipeline[ops=") {
		t.Error("unfused profile unexpectedly reports fused pipelines")
	}
}
