package driver

import (
	"context"
	"fmt"
	"reflect"
	"sort"
	"testing"

	"photon/internal/catalog"
	"photon/internal/sql"
	"photon/internal/sql/catalyst"
	"photon/internal/tpch"
)

// TestDistributedMatchesSingleTask runs every TPC-H query through the
// exchange-based stage DAG at Parallelism 4 and compares against
// single-task execution. This covers parallel scans, broadcast and shuffle
// joins, split aggregations, DISTINCT, and the two-phase parallel sort.
func TestDistributedMatchesSingleTask(t *testing.T) {
	cat := tpch.NewGen(0.002).Generate()
	for _, q := range tpch.QueryNumbers() {
		q := q
		t.Run(fmt.Sprintf("Q%02d", q), func(t *testing.T) {
			single := runTPCH(t, cat, q, Options{Parallelism: 1, ShuffleDir: t.TempDir()})
			dist := runTPCH(t, cat, q, Options{Parallelism: 4, ShuffleDir: t.TempDir()})
			a := render(single)
			b := render(dist)
			sort.Strings(a)
			sort.Strings(b)
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("Q%d: distributed (%d rows) != single (%d rows)", q, len(b), len(a))
			}
		})
	}
}

// TestShuffleJoinMatchesBroadcast forces the all-shuffle join path
// (BroadcastRows < 0) on join-heavy queries and checks results against the
// default broadcast planning.
func TestShuffleJoinMatchesBroadcast(t *testing.T) {
	cat := tpch.NewGen(0.002).Generate()
	for _, q := range []int{3, 5, 10, 12, 14, 18} {
		q := q
		t.Run(fmt.Sprintf("Q%02d", q), func(t *testing.T) {
			bcast := runTPCH(t, cat, q, Options{Parallelism: 4, ShuffleDir: t.TempDir()})
			shuf := runTPCH(t, cat, q, Options{
				Parallelism: 4, ShuffleDir: t.TempDir(), BroadcastRows: -1,
			})
			a := render(bcast)
			b := render(shuf)
			sort.Strings(a)
			sort.Strings(b)
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("Q%d: shuffle join (%d rows) != broadcast join (%d rows)", q, len(b), len(a))
			}
		})
	}
}

func runTPCH(t *testing.T, cat *catalog.Catalog, q int, opts Options) [][]any {
	t.Helper()
	stmt, err := sql.Parse(tpch.Queries[q])
	if err != nil {
		t.Fatal(err)
	}
	plan, err := sql.Analyze(cat, stmt)
	if err != nil {
		t.Fatal(err)
	}
	plan, err = catalyst.Optimize(plan)
	if err != nil {
		t.Fatal(err)
	}
	rows, _, err := Run(context.Background(), plan, opts)
	if err != nil {
		t.Fatalf("Q%d (par=%d): %v", q, opts.Parallelism, err)
	}
	return rows
}

func render(rows [][]any) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = fmt.Sprint(r)
	}
	return out
}

func TestCoalescePartitions(t *testing.T) {
	// checkCover verifies every partition is assigned exactly once and that
	// partition order is preserved within and across groups.
	checkCover := func(t *testing.T, groups [][]int, n int) {
		t.Helper()
		next := 0
		for _, g := range groups {
			if len(g) == 0 {
				t.Fatal("empty group")
			}
			for _, p := range g {
				if p != next {
					t.Fatalf("expected partition %d, got %d (groups %v)", next, p, groups)
				}
				next++
			}
		}
		if next != n {
			t.Fatalf("covered %d of %d partitions (groups %v)", next, n, groups)
		}
	}

	// Skewed sizes: tiny partitions merge, big ones stand alone.
	groups := coalescePartitions([]int64{100, 5, 5, 5, 200, 5, 5})
	checkCover(t, groups, 7)
	if len(groups) >= 7 {
		t.Errorf("no coalescing happened: %v", groups)
	}

	// All-empty partitions still produce groups covering all.
	groups = coalescePartitions([]int64{0, 0, 0})
	checkCover(t, groups, 3)

	// Single partition: one group, one partition.
	groups = coalescePartitions([]int64{42})
	checkCover(t, groups, 1)
	if len(groups) != 1 {
		t.Fatalf("single partition produced %v", groups)
	}

	// Extreme skew (keyless aggregation): all bytes in partition 0. The
	// heavy partition must be alone in its group.
	groups = coalescePartitions([]int64{1 << 20, 0, 0, 0})
	checkCover(t, groups, 4)
	if len(groups[0]) != 1 || groups[0][0] != 0 {
		t.Errorf("heavy partition not isolated: %v", groups)
	}

	// Uniform sizes: no coalescing, one group per partition.
	groups = coalescePartitions([]int64{10, 10, 10, 10})
	checkCover(t, groups, 4)
	if len(groups) != 4 {
		t.Errorf("uniform partitions coalesced: %v", groups)
	}
}
