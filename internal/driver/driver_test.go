package driver

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"photon/internal/sql"
	"photon/internal/sql/catalyst"
	"photon/internal/tpch"
)

// TestDistributedMatchesSingleTask runs aggregation queries through the
// two-stage map/shuffle/reduce pipeline and compares against single-task
// execution.
func TestDistributedMatchesSingleTask(t *testing.T) {
	cat := tpch.NewGen(0.002).Generate()
	queries := []int{1, 3, 4, 5, 6, 10, 12, 16, 18, 21}
	for _, q := range queries {
		q := q
		t.Run(fmt.Sprintf("Q%02d", q), func(t *testing.T) {
			stmt, err := sql.Parse(tpch.Queries[q])
			if err != nil {
				t.Fatal(err)
			}
			plan, err := sql.Analyze(cat, stmt)
			if err != nil {
				t.Fatal(err)
			}
			plan, err = catalyst.Optimize(plan)
			if err != nil {
				t.Fatal(err)
			}
			single, _, err := Run(plan, Options{Parallelism: 1, ShuffleDir: t.TempDir()})
			if err != nil {
				t.Fatal(err)
			}
			// Re-plan: physical planning mutates nothing, but rebuild to be
			// safe about any cached state.
			stmt2, _ := sql.Parse(tpch.Queries[q])
			plan2, _ := sql.Analyze(cat, stmt2)
			plan2, _ = catalyst.Optimize(plan2)
			dist, _, err := Run(plan2, Options{Parallelism: 4, ShuffleDir: t.TempDir()})
			if err != nil {
				t.Fatal(err)
			}
			a := render(single)
			b := render(dist)
			sort.Strings(a)
			sort.Strings(b)
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("Q%d: distributed (%d rows) != single (%d rows)", q, len(b), len(a))
			}
		})
	}
}

func render(rows [][]any) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = fmt.Sprint(r)
	}
	return out
}

func TestCoalescePartitions(t *testing.T) {
	// Skewed sizes: tiny partitions merge, big ones stand alone.
	groups := coalescePartitions([]int64{100, 5, 5, 5, 200, 5, 5})
	covered := map[int]bool{}
	for _, g := range groups {
		if len(g) == 0 {
			t.Fatal("empty group")
		}
		for _, p := range g {
			if covered[p] {
				t.Fatalf("partition %d assigned twice", p)
			}
			covered[p] = true
		}
	}
	if len(covered) != 7 {
		t.Fatalf("covered %d of 7 partitions", len(covered))
	}
	if len(groups) >= 7 {
		t.Errorf("no coalescing happened: %v", groups)
	}
	// All-empty partitions still produce at least one group covering all.
	groups = coalescePartitions([]int64{0, 0, 0})
	n := 0
	for _, g := range groups {
		n += len(g)
	}
	if n != 3 {
		t.Errorf("empty partitions coverage: %v", groups)
	}
}
