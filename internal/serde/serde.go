// Package serde implements a compact binary columnar serialization for
// column batches, used by spill files (sort, aggregation, join) and as the
// base layer of the shuffle format. Only active rows are written; batches
// deserialize dense (Sel == nil).
//
// Layout per batch:
//
//	u32 numRows
//	per column:
//	  u8 hasNulls; if 1: numRows null bytes
//	  values:
//	    fixed-width types: numRows * width little-endian bytes
//	    strings: u32 totalBytes, numRows u32 lengths, payload bytes
//
// A batch with numRows == math.MaxUint32 marks end-of-stream (written by
// Writer.Close), which lets readers distinguish clean EOF from truncation.
package serde

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"photon/internal/types"
	"photon/internal/vector"
)

const eosMarker = math.MaxUint32

// Writer serializes batches to an underlying stream.
type Writer struct {
	w       *bufio.Writer
	scratch []byte
	// Rows and Bytes count what has been written (for metrics).
	Rows  int64
	Bytes int64
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 1<<16)}
}

func (sw *Writer) u32(v uint32) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	n, err := sw.w.Write(b[:])
	sw.Bytes += int64(n)
	return err
}

// WriteBatch serializes b's active rows.
func (sw *Writer) WriteBatch(b *vector.Batch) error {
	n := b.NumActive()
	if err := sw.u32(uint32(n)); err != nil {
		return err
	}
	sw.Rows += int64(n)
	for _, v := range b.Vecs {
		if err := sw.writeVector(v, b.Sel, b.NumRows, n); err != nil {
			return err
		}
	}
	return nil
}

func (sw *Writer) writeVector(v *vector.Vector, sel []int32, numRows, n int) error {
	// Nulls.
	hasNulls := v.HasNulls()
	nb := byte(0)
	if hasNulls {
		nb = 1
	}
	if err := sw.w.WriteByte(nb); err != nil {
		return err
	}
	sw.Bytes++
	if hasNulls {
		buf := sw.grow(n)
		gatherBytes(v.Nulls, sel, n, buf)
		if _, err := sw.w.Write(buf); err != nil {
			return err
		}
		sw.Bytes += int64(n)
	}
	// Values.
	switch v.Type.ID {
	case types.Bool:
		buf := sw.grow(n)
		gatherBytes(v.Bool, sel, n, buf)
		_, err := sw.w.Write(buf)
		sw.Bytes += int64(n)
		return err
	case types.Int32, types.Date:
		buf := sw.grow(n * 4)
		if sel == nil {
			for i := 0; i < n; i++ {
				binary.LittleEndian.PutUint32(buf[i*4:], uint32(v.I32[i]))
			}
		} else {
			for k, i := range sel {
				binary.LittleEndian.PutUint32(buf[k*4:], uint32(v.I32[i]))
			}
		}
		_, err := sw.w.Write(buf)
		sw.Bytes += int64(len(buf))
		return err
	case types.Int64, types.Timestamp:
		buf := sw.grow(n * 8)
		if sel == nil {
			for i := 0; i < n; i++ {
				binary.LittleEndian.PutUint64(buf[i*8:], uint64(v.I64[i]))
			}
		} else {
			for k, i := range sel {
				binary.LittleEndian.PutUint64(buf[k*8:], uint64(v.I64[i]))
			}
		}
		_, err := sw.w.Write(buf)
		sw.Bytes += int64(len(buf))
		return err
	case types.Float64:
		buf := sw.grow(n * 8)
		if sel == nil {
			for i := 0; i < n; i++ {
				binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(v.F64[i]))
			}
		} else {
			for k, i := range sel {
				binary.LittleEndian.PutUint64(buf[k*8:], math.Float64bits(v.F64[i]))
			}
		}
		_, err := sw.w.Write(buf)
		sw.Bytes += int64(len(buf))
		return err
	case types.Decimal:
		buf := sw.grow(n * 16)
		if sel == nil {
			for i := 0; i < n; i++ {
				binary.LittleEndian.PutUint64(buf[i*16:], v.Dec[i].Lo)
				binary.LittleEndian.PutUint64(buf[i*16+8:], uint64(v.Dec[i].Hi))
			}
		} else {
			for k, i := range sel {
				binary.LittleEndian.PutUint64(buf[k*16:], v.Dec[i].Lo)
				binary.LittleEndian.PutUint64(buf[k*16+8:], uint64(v.Dec[i].Hi))
			}
		}
		_, err := sw.w.Write(buf)
		sw.Bytes += int64(len(buf))
		return err
	case types.String:
		total := 0
		if sel == nil {
			for i := 0; i < n; i++ {
				total += len(v.Str[i])
			}
		} else {
			for _, i := range sel {
				total += len(v.Str[i])
			}
		}
		if err := sw.u32(uint32(total)); err != nil {
			return err
		}
		buf := sw.grow(n * 4)
		if sel == nil {
			for i := 0; i < n; i++ {
				binary.LittleEndian.PutUint32(buf[i*4:], uint32(len(v.Str[i])))
			}
		} else {
			for k, i := range sel {
				binary.LittleEndian.PutUint32(buf[k*4:], uint32(len(v.Str[i])))
			}
		}
		if _, err := sw.w.Write(buf); err != nil {
			return err
		}
		sw.Bytes += int64(len(buf))
		write := func(i int32) error {
			m, err := sw.w.Write(v.Str[i])
			sw.Bytes += int64(m)
			return err
		}
		if sel == nil {
			for i := 0; i < n; i++ {
				if err := write(int32(i)); err != nil {
					return err
				}
			}
		} else {
			for _, i := range sel {
				if err := write(i); err != nil {
					return err
				}
			}
		}
		return nil
	}
	return fmt.Errorf("serde: unsupported type %v", v.Type)
}

func (sw *Writer) grow(n int) []byte {
	if cap(sw.scratch) < n {
		sw.scratch = make([]byte, n)
	}
	return sw.scratch[:n]
}

// gatherBytes copies active byte lanes densely into dst.
func gatherBytes(src []byte, sel []int32, n int, dst []byte) {
	if sel == nil {
		copy(dst, src[:n])
		return
	}
	for k, i := range sel {
		dst[k] = src[i]
	}
}

// Close writes the end-of-stream marker and flushes. It does not close the
// underlying writer.
func (sw *Writer) Close() error {
	if err := sw.u32(eosMarker); err != nil {
		return err
	}
	return sw.w.Flush()
}

// Flush flushes buffered bytes without ending the stream.
func (sw *Writer) Flush() error { return sw.w.Flush() }

// Reader deserializes batches written by Writer.
type Reader struct {
	r      *bufio.Reader
	schema *types.Schema
}

// NewReader wraps r for the given schema.
func NewReader(r io.Reader, schema *types.Schema) *Reader {
	return &Reader{r: bufio.NewReaderSize(r, 1<<16), schema: schema}
}

func (sr *Reader) u32() (uint32, error) {
	var b [4]byte
	if _, err := io.ReadFull(sr.r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

// ReadBatch reads the next batch into dst (which must have the stream's
// schema and sufficient capacity for the incoming row count; batches written
// from pools sized alike always fit). Returns io.EOF at the end-of-stream
// marker.
func (sr *Reader) ReadBatch(dst *vector.Batch) error {
	n32, err := sr.u32()
	if err != nil {
		if err == io.EOF {
			return fmt.Errorf("serde: truncated stream (missing end marker): %w", io.ErrUnexpectedEOF)
		}
		return err
	}
	if n32 == eosMarker {
		return io.EOF
	}
	n := int(n32)
	if n > dst.Capacity() {
		return fmt.Errorf("serde: batch of %d rows exceeds capacity %d", n, dst.Capacity())
	}
	dst.Reset()
	dst.NumRows = n
	for ci, v := range dst.Vecs {
		if err := sr.readVector(v, n); err != nil {
			return fmt.Errorf("serde: column %d (%s): %w", ci, sr.schema.Field(ci).Name, err)
		}
	}
	return nil
}

func (sr *Reader) readVector(v *vector.Vector, n int) error {
	nb, err := sr.r.ReadByte()
	if err != nil {
		return err
	}
	if nb == 1 {
		if _, err := io.ReadFull(sr.r, v.Nulls[:n]); err != nil {
			return err
		}
		v.RecomputeHasNulls(nil, n)
	}
	switch v.Type.ID {
	case types.Bool:
		_, err := io.ReadFull(sr.r, v.Bool[:n])
		return err
	case types.Int32, types.Date:
		buf := make([]byte, n*4)
		if _, err := io.ReadFull(sr.r, buf); err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			v.I32[i] = int32(binary.LittleEndian.Uint32(buf[i*4:]))
		}
	case types.Int64, types.Timestamp:
		buf := make([]byte, n*8)
		if _, err := io.ReadFull(sr.r, buf); err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			v.I64[i] = int64(binary.LittleEndian.Uint64(buf[i*8:]))
		}
	case types.Float64:
		buf := make([]byte, n*8)
		if _, err := io.ReadFull(sr.r, buf); err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			v.F64[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[i*8:]))
		}
	case types.Decimal:
		buf := make([]byte, n*16)
		if _, err := io.ReadFull(sr.r, buf); err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			v.Dec[i] = types.Decimal128{
				Lo: binary.LittleEndian.Uint64(buf[i*16:]),
				Hi: int64(binary.LittleEndian.Uint64(buf[i*16+8:])),
			}
		}
	case types.String:
		total, err := sr.u32()
		if err != nil {
			return err
		}
		lens := make([]byte, n*4)
		if _, err := io.ReadFull(sr.r, lens); err != nil {
			return err
		}
		payload := make([]byte, total)
		if _, err := io.ReadFull(sr.r, payload); err != nil {
			return err
		}
		off := uint32(0)
		for i := 0; i < n; i++ {
			l := binary.LittleEndian.Uint32(lens[i*4:])
			v.Str[i] = payload[off : off+l : off+l]
			off += l
		}
	default:
		return fmt.Errorf("unsupported type %v", v.Type)
	}
	return nil
}
