package serde

import (
	"bytes"
	"io"
	"math/rand"
	"reflect"
	"testing"

	"photon/internal/types"
	"photon/internal/vector"
)

func roundTrip(t *testing.T, schema *types.Schema, batches []*vector.Batch) []*vector.Batch {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, b := range batches {
		if err := w.WriteBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf, schema)
	var out []*vector.Batch
	for {
		dst := vector.NewBatch(schema, 4096)
		err := r.ReadBatch(dst)
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, dst)
	}
}

func TestRoundTripAllTypes(t *testing.T) {
	schema := types.NewSchema(
		types.Field{Name: "b", Type: types.BoolType, Nullable: true},
		types.Field{Name: "i", Type: types.Int32Type, Nullable: true},
		types.Field{Name: "l", Type: types.Int64Type, Nullable: true},
		types.Field{Name: "f", Type: types.Float64Type, Nullable: true},
		types.Field{Name: "s", Type: types.StringType, Nullable: true},
		types.Field{Name: "d", Type: types.DateType, Nullable: true},
		types.Field{Name: "ts", Type: types.TimestampType, Nullable: true},
		types.Field{Name: "dec", Type: types.DecimalType(20, 2), Nullable: true},
	)
	b := vector.NewBatch(schema, 16)
	b.AppendRow(true, int32(1), int64(2), 3.5, "hello", int32(100), int64(1e12), types.DecimalFromInt64(1234))
	b.AppendRow(false, nil, int64(-9), -0.5, "", int32(-5), nil, types.DecimalFromInt64(-77))
	b.AppendRow(nil, int32(7), nil, nil, nil, nil, int64(0), nil)
	got := roundTrip(t, schema, []*vector.Batch{b})
	if len(got) != 1 {
		t.Fatalf("batches = %d", len(got))
	}
	if !reflect.DeepEqual(got[0].Rows(), b.Rows()) {
		t.Errorf("round trip mismatch:\n got %v\nwant %v", got[0].Rows(), b.Rows())
	}
}

func TestRoundTripSelectionOnlyActive(t *testing.T) {
	schema := types.NewSchema(types.Field{Name: "x", Type: types.Int64Type})
	b := vector.NewBatch(schema, 8)
	for i := 0; i < 8; i++ {
		b.AppendRow(int64(i))
	}
	b.SetSel([]int32{1, 3, 5})
	got := roundTrip(t, schema, []*vector.Batch{b})
	rows := got[0].Rows()
	if len(rows) != 3 || rows[0][0].(int64) != 1 || rows[2][0].(int64) != 5 {
		t.Errorf("selective serialize: %v", rows)
	}
	if !got[0].AllActive() {
		t.Error("deserialized batch should be dense")
	}
}

func TestEmptyStreamAndEmptyBatch(t *testing.T) {
	schema := types.NewSchema(types.Field{Name: "x", Type: types.Int64Type})
	got := roundTrip(t, schema, nil)
	if len(got) != 0 {
		t.Errorf("empty stream: %d batches", len(got))
	}
	b := vector.NewBatch(schema, 4)
	got = roundTrip(t, schema, []*vector.Batch{b})
	if len(got) != 1 || got[0].NumRows != 0 {
		t.Errorf("empty batch round trip failed")
	}
}

func TestTruncationDetected(t *testing.T) {
	schema := types.NewSchema(types.Field{Name: "x", Type: types.Int64Type})
	var buf bytes.Buffer
	w := NewWriter(&buf)
	b := vector.NewBatch(schema, 4)
	b.AppendRow(int64(42))
	if err := w.WriteBatch(b); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil { // no Close: no end marker
		t.Fatal(err)
	}
	r := NewReader(&buf, schema)
	dst := vector.NewBatch(schema, 4)
	if err := r.ReadBatch(dst); err != nil {
		t.Fatal(err)
	}
	err := r.ReadBatch(dst)
	if err == nil || err == io.EOF {
		t.Errorf("truncated stream not detected: %v", err)
	}
}

func TestRandomRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	schema := types.NewSchema(
		types.Field{Name: "i", Type: types.Int64Type, Nullable: true},
		types.Field{Name: "s", Type: types.StringType, Nullable: true},
	)
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(200)
		b := vector.NewBatch(schema, 256)
		var want [][]any
		for i := 0; i < n; i++ {
			var iv, sv any
			if rng.Intn(5) > 0 {
				iv = rng.Int63()
			}
			if rng.Intn(5) > 0 {
				l := rng.Intn(30)
				s := make([]byte, l)
				rng.Read(s)
				sv = string(s)
			}
			b.AppendRow(iv, sv)
			want = append(want, []any{iv, sv})
		}
		got := roundTrip(t, schema, []*vector.Batch{b})
		var gotRows [][]any
		for _, g := range got {
			gotRows = append(gotRows, g.Rows()...)
		}
		if !reflect.DeepEqual(gotRows, want) && !(len(want) == 0 && len(gotRows) == 0) {
			t.Fatalf("trial %d mismatch (n=%d)", trial, n)
		}
	}
}

func TestWriterMetrics(t *testing.T) {
	schema := types.NewSchema(types.Field{Name: "x", Type: types.Int64Type})
	var buf bytes.Buffer
	w := NewWriter(&buf)
	b := vector.NewBatch(schema, 4)
	b.AppendRow(int64(1))
	b.AppendRow(int64(2))
	if err := w.WriteBatch(b); err != nil {
		t.Fatal(err)
	}
	if w.Rows != 2 {
		t.Errorf("Rows = %d", w.Rows)
	}
	if w.Bytes == 0 {
		t.Error("Bytes not counted")
	}
}
