package rf

import "sync"

// Registry collects runtime filters across stage boundaries. Producer tasks
// (hash-join build stages) publish their partial filters as they finish;
// consumer tasks (probe-side stages) look a filter up once every producer
// task has reported. Keys are producer fragment IDs, which are unique within
// one query, so one registry serves a whole staged job.
//
// The registry is strictly best-effort from the consumer's point of view: a
// missing or incomplete filter reads as nil and the consumer runs
// unfiltered. Correctness never depends on a publish racing ahead of a
// lookup — the driver orders probe stages after their producers, so in
// practice the filter is always complete by the time it is consulted.
type Registry struct {
	mu sync.Mutex
	m  map[int]*entry
}

type entry struct {
	need int          // number of producer tasks expected to publish
	got  map[int]bool // task IDs that have published (idempotent)
	f    *Filter      // merged filter (nil until a non-nil publish)
	dead bool         // a producer task could not build; filter dropped
}

// NewRegistry creates an empty filter registry.
func NewRegistry() *Registry {
	return &Registry{m: map[int]*entry{}}
}

// Expect declares that producer fragment id will publish from numTasks
// tasks. Idempotent; must be called before the producer stage runs.
func (r *Registry) Expect(id, numTasks int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.m[id]; !ok {
		r.m[id] = &entry{need: numTasks, got: map[int]bool{}}
	}
}

// Publish folds one producer task's partial filter in. A nil f means the
// task contributed nothing but still completed (e.g. it was coalesced away
// by adaptive partition merging) — it counts toward completeness without
// widening the filter. Duplicate publishes from one task are ignored.
func (r *Registry) Publish(id, taskID int, f *Filter) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.m[id]
	if !ok || e.got[taskID] {
		return
	}
	e.got[taskID] = true
	if e.dead || f == nil {
		return
	}
	if e.f == nil {
		e.f = f
		return
	}
	e.f.Merge(f)
}

// Drop marks producer id's filter unusable (a task failed to build one).
// Consumers then read nil and run unfiltered — speed lost, never rows.
func (r *Registry) Drop(id int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.m[id]; ok {
		e.dead = true
		e.f = nil
	}
}

// Filter returns producer id's merged filter, or nil while any producer
// task is still outstanding (or the filter was dropped / never expected).
func (r *Registry) Filter(id int) *Filter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.m[id]
	if !ok || e.dead || len(e.got) < e.need {
		return nil
	}
	return e.f
}
