// Package rf implements runtime filters: per-join-key filters derived from
// a hash join's build side and pushed to the probe side before it is
// scanned, shuffled, or probed. Each filter combines a min/max range (for
// fixed-width orderable keys) with a register-blocked split-block Bloom
// filter over key hashes. Filters are strictly best-effort — they may pass
// rows that do not join (Bloom false positives, range slack) but never drop
// a row that would join, so discarding a filter can only cost speed, never
// correctness.
package rf

import "photon/internal/kernels"

// Split-block Bloom filter (the Parquet/Impala design): the filter is an
// array of 256-bit blocks (8 x 32-bit words). A key sets exactly one bit in
// each word of one block, so an insert or probe touches a single cache line
// and the per-word bit positions are computed with independent odd
// multipliers — a SWAR-friendly, branch-free loop.

const (
	blockWords = 8
	// BitsPerKey is the design density: ~16 bits per expected build key
	// gives a theoretical false-positive rate well under 0.1%.
	BitsPerKey = 16
	// minBlocks/maxBlocks clamp the filter between 512 bytes and 1 MiB so
	// tiny build sides still get a useful filter and misestimated giant
	// ones cannot exhaust memory (an oversized build side only degrades
	// the false-positive rate, never correctness).
	minBlocks = 16
	maxBlocks = 1 << 15
)

// salt holds the per-word odd multipliers of the split-block design.
var salt = [blockWords]uint32{
	0x47b6137b, 0x44974d91, 0x8824ad5b, 0xa2b7289d,
	0x705495c7, 0x2df1424b, 0x9efc4947, 0x5c6bfb31,
}

// Bloom is a split-block Bloom filter over 64-bit key hashes.
type Bloom struct {
	words []uint32
	mask  uint64 // numBlocks - 1 (numBlocks is a power of two)
}

// NewBloom sizes a filter for the expected number of distinct keys at
// BitsPerKey density. All tasks of a producer stage must size from the same
// estimate so their partial filters can be unioned word-for-word.
func NewBloom(expectedKeys int64) *Bloom {
	if expectedKeys < 1 {
		expectedKeys = 1
	}
	blocks := kernels.NextPow2(uint64(expectedKeys*BitsPerKey) / (blockWords * 32))
	if blocks < minBlocks {
		blocks = minBlocks
	}
	if blocks > maxBlocks {
		blocks = maxBlocks
	}
	return &Bloom{words: make([]uint32, blocks*blockWords), mask: blocks - 1}
}

// NumBits returns the filter's size in bits.
func (b *Bloom) NumBits() int64 { return int64(len(b.words)) * 32 }

// block returns the 8-word block for hash h. The block index consumes the
// high hash bits; the low 32 bits drive the in-block bit positions, so the
// two are independent.
func (b *Bloom) block(h uint64) []uint32 {
	i := ((h >> 32) & b.mask) * blockWords
	return b.words[i : i+blockWords : i+blockWords]
}

// Add inserts a key hash.
func (b *Bloom) Add(h uint64) {
	w := b.block(h)
	x := uint32(h)
	w[0] |= 1 << (x * salt[0] >> 27)
	w[1] |= 1 << (x * salt[1] >> 27)
	w[2] |= 1 << (x * salt[2] >> 27)
	w[3] |= 1 << (x * salt[3] >> 27)
	w[4] |= 1 << (x * salt[4] >> 27)
	w[5] |= 1 << (x * salt[5] >> 27)
	w[6] |= 1 << (x * salt[6] >> 27)
	w[7] |= 1 << (x * salt[7] >> 27)
}

// MayContain reports whether h may have been added. No false negatives;
// false positives at roughly the design rate. The check accumulates the
// missing bits of all eight words without branching (SWAR-style) so probe
// loops stay tight.
func (b *Bloom) MayContain(h uint64) bool {
	w := b.block(h)
	x := uint32(h)
	miss := ^w[0] & (1 << (x * salt[0] >> 27))
	miss |= ^w[1] & (1 << (x * salt[1] >> 27))
	miss |= ^w[2] & (1 << (x * salt[2] >> 27))
	miss |= ^w[3] & (1 << (x * salt[3] >> 27))
	miss |= ^w[4] & (1 << (x * salt[4] >> 27))
	miss |= ^w[5] & (1 << (x * salt[5] >> 27))
	miss |= ^w[6] & (1 << (x * salt[6] >> 27))
	miss |= ^w[7] & (1 << (x * salt[7] >> 27))
	return miss == 0
}

// Union ORs o into b. Both filters must have been sized from the same
// estimate (equal word counts); mismatched sizes report false and leave b
// unchanged, and the caller should drop the filter (best-effort semantics).
func (b *Bloom) Union(o *Bloom) bool {
	if o == nil || len(b.words) != len(o.words) {
		return false
	}
	for i, w := range o.words {
		b.words[i] |= w
	}
	return true
}
