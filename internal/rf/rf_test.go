package rf

import (
	"math"
	"math/rand"
	"testing"

	"photon/internal/kernels"
	"photon/internal/types"
	"photon/internal/vector"
)

// TestBloomNoFalseNegatives is the property every runtime filter rests on:
// a key that was added is always reported as possibly present.
func TestBloomNoFalseNegatives(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 100, 10_000, 200_000} {
		b := NewBloom(int64(n))
		keys := make([]uint64, n)
		for i := range keys {
			keys[i] = rng.Uint64()
			b.Add(keys[i])
		}
		for i, k := range keys {
			if !b.MayContain(k) {
				t.Fatalf("n=%d: false negative on key %d (%#x)", n, i, k)
			}
		}
	}
}

// TestBloomFalsePositiveRate checks the measured FPP at the n/m design point
// against the split-block theoretical rate. A split-block filter sets one
// bit per 32-bit word of one 256-bit block, so its theoretical FPP is the
// Poisson mixture over per-block loads L of (1 - (31/32)^L)^8 — higher than
// a classic Bloom filter of the same size (block-load variance), which is
// the price of one-cache-line probes. The measurement must stay within 2x
// of that theory.
func TestBloomFalsePositiveRate(t *testing.T) {
	const n = 50_000
	b := NewBloom(n)

	// Insert hashes of keys [0, n); probe [n, n+1M) — disjoint by Mix64
	// bijectivity.
	for i := 0; i < n; i++ {
		b.Add(kernels.Mix64(uint64(i)))
	}
	const probes = 1_000_000
	fp := 0
	for i := n; i < n+probes; i++ {
		if b.MayContain(kernels.Mix64(uint64(i))) {
			fp++
		}
	}
	measured := float64(fp) / probes

	// Split-block theory at this filter's actual geometry.
	numBlocks := float64(b.NumBits() / (blockWords * 32))
	lambda := n / numBlocks
	theory := 0.0
	pmf := math.Exp(-lambda)
	for l := 0; l < 256; l++ {
		if l > 0 {
			pmf *= lambda / float64(l)
		}
		theory += pmf * math.Pow(1-math.Pow(31.0/32.0, float64(l)), blockWords)
	}
	t.Logf("bits=%d bits/key=%.1f measured=%.5f%% theory=%.5f%%",
		b.NumBits(), float64(b.NumBits())/n, 100*measured, 100*theory)
	if theory > 0.005 {
		t.Fatalf("design point too weak: theoretical FPP %.4f%% > 0.5%%", 100*theory)
	}
	if measured > 2*theory {
		t.Fatalf("measured FPP %.5f%% exceeds 2x theoretical %.5f%%", 100*measured, 100*theory)
	}
}

// TestBloomUnion checks partial-filter unioning: the union must contain
// every key either side contained, and mismatched sizes must be rejected.
func TestBloomUnion(t *testing.T) {
	a, b := NewBloom(1000), NewBloom(1000)
	for i := 0; i < 500; i++ {
		a.Add(kernels.Mix64(uint64(i)))
		b.Add(kernels.Mix64(uint64(10_000 + i)))
	}
	if !a.Union(b) {
		t.Fatal("union of same-size filters failed")
	}
	for i := 0; i < 500; i++ {
		if !a.MayContain(kernels.Mix64(uint64(i))) || !a.MayContain(kernels.Mix64(uint64(10_000+i))) {
			t.Fatalf("union lost key %d", i)
		}
	}
	if a.Union(NewBloom(1 << 20)) {
		t.Fatal("union of mismatched sizes must report false")
	}
	if a.Union(nil) {
		t.Fatal("union with nil must report false")
	}
}

// buildVec fills a vector of type tp from vals ( nil entries become NULL).
func buildVec(tp types.DataType, vals []any) *vector.Vector {
	v := vector.New(tp, len(vals))
	for i, x := range vals {
		if x == nil {
			v.SetNull(i)
			continue
		}
		v.Set(i, x)
	}
	return v
}

// TestColFilterNoFalseNegatives: every non-NULL probe value equal to some
// build value survives ProbeVec, for each supported key type.
func TestColFilterNoFalseNegatives(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cases := []struct {
		tp  types.DataType
		gen func() any
	}{
		{types.Int64Type, func() any { return rng.Int63n(1 << 40) }},
		{types.Int32Type, func() any { return int32(rng.Int31()) }},
		{types.Float64Type, func() any { return rng.NormFloat64() * 1e6 }},
		{types.StringType, func() any {
			b := make([]byte, 1+rng.Intn(20))
			rng.Read(b)
			return b
		}},
	}
	for _, tc := range cases {
		const n = 4096
		vals := make([]any, n)
		for i := range vals {
			if i%37 == 0 {
				continue // NULL build keys are skipped by AddVec
			}
			vals[i] = tc.gen()
		}
		v := buildVec(tc.tp, vals)
		c := NewColFilter(tc.tp, n)
		if c == nil {
			t.Fatalf("%v: unsupported", tc.tp)
		}
		var s HashScratch
		c.AddVec(v, nil, n, &s)
		out := c.ProbeVec(v, nil, n, &s, nil)
		// Every non-NULL row must survive a self-probe.
		want := 0
		for _, x := range vals {
			if x != nil {
				want++
			}
		}
		if len(out) != want {
			t.Fatalf("%v: self-probe kept %d of %d non-NULL rows", tc.tp, len(out), want)
		}
	}
}

// TestColFilterRejects: values far outside the build range are rejected by
// the range envelope, and an empty build side rejects everything.
func TestColFilterRejects(t *testing.T) {
	build := buildVec(types.Int64Type, []any{int64(100), int64(200), int64(300)})
	c := NewColFilter(types.Int64Type, 3)
	var s HashScratch
	c.AddVec(build, nil, 3, &s)

	probe := buildVec(types.Int64Type, []any{int64(50), int64(200), int64(999), nil})
	out := c.ProbeVec(probe, nil, 4, &s, nil)
	if len(out) != 1 || out[0] != 1 {
		t.Fatalf("want only row 1 (value 200), got %v", out)
	}

	empty := NewColFilter(types.Int64Type, 3)
	if got := empty.ProbeVec(probe, nil, 4, &s, nil); len(got) != 0 {
		t.Fatalf("empty build side must reject everything, got %v", got)
	}

	// Range-stat overlap checks (file/row-group pruning path).
	if c.OverlapsBoxed(int64(400), int64(500)) {
		t.Fatal("disjoint stats must not overlap")
	}
	if !c.OverlapsBoxed(int64(250), int64(500)) {
		t.Fatal("intersecting stats must overlap")
	}
	if c.OverlapsBoxed(nil, nil) {
		t.Fatal("all-NULL chunk must not overlap (NULL keys never join)")
	}
	if empty.OverlapsBoxed(int64(0), int64(1<<40)) {
		t.Fatal("empty filter must not overlap anything")
	}
}

// TestColFilterMerge: merged partials behave like a filter built from the
// concatenated inputs.
func TestColFilterMerge(t *testing.T) {
	a := NewColFilter(types.Int64Type, 100)
	b := NewColFilter(types.Int64Type, 100)
	var s HashScratch
	va := buildVec(types.Int64Type, []any{int64(1), int64(2)})
	vb := buildVec(types.Int64Type, []any{int64(1000), int64(2000)})
	a.AddVec(va, nil, 2, &s)
	b.AddVec(vb, nil, 2, &s)
	a.Merge(b)
	probe := buildVec(types.Int64Type, []any{int64(1), int64(2000), int64(500_000)})
	out := a.ProbeVec(probe, nil, 3, &s, nil)
	if len(out) != 2 || out[0] != 0 || out[1] != 1 {
		t.Fatalf("merged filter: want rows [0 1], got %v", out)
	}
	if a.N != 4 {
		t.Fatalf("merged N = %d, want 4", a.N)
	}
}

// TestFilterNaNKillsRange: a NaN build key disables the range envelope but
// keeps the Bloom filter; probes equal to build keys still pass.
func TestFilterNaNKillsRange(t *testing.T) {
	c := NewColFilter(types.Float64Type, 10)
	var s HashScratch
	v := buildVec(types.Float64Type, []any{1.5, math.NaN(), 99.5})
	c.AddVec(v, nil, 3, &s)
	probe := buildVec(types.Float64Type, []any{1.5, 99.5, math.NaN()})
	out := c.ProbeVec(probe, nil, 3, &s, nil)
	// Rows 0 and 1 must pass (no false negatives). NaN probe hashes like the
	// build NaN, so row 2 passing is acceptable too.
	if len(out) < 2 || out[0] != 0 || out[1] != 1 {
		t.Fatalf("NaN build: want rows 0,1 to survive, got %v", out)
	}
	if !c.OverlapsBoxed(float64(1e12), float64(2e12)) {
		t.Fatal("range must be disabled (conservative overlap) after NaN")
	}
}

// TestRegistry covers the publish/expect lifecycle and its best-effort
// degradation modes.
func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.Expect(5, 2)
	if r.Filter(5) != nil {
		t.Fatal("filter must be nil before all tasks publish")
	}
	f0 := NewFilter([]types.DataType{types.Int64Type}, 10)
	var s HashScratch
	b := vector.NewBatch(types.NewSchema(types.Field{Name: "k", Type: types.Int64Type}), 2)
	b.Vecs[0].Set(0, int64(7))
	b.Vecs[0].Set(1, int64(8))
	b.NumRows = 2
	f0.Add(b, []int{0}, nil, 2, &s)
	r.Publish(5, 0, f0)
	if r.Filter(5) != nil {
		t.Fatal("filter must be nil while task 1 is outstanding")
	}
	r.Publish(5, 1, nil) // coalesced-away task: counts, contributes nothing
	got := r.Filter(5)
	if got == nil || !got.Usable() {
		t.Fatal("filter must be complete after all tasks publish")
	}
	if got.Cols[0].N != 2 {
		t.Fatalf("merged N = %d, want 2", got.Cols[0].N)
	}
	// Duplicate publish is idempotent.
	r.Publish(5, 0, NewFilter([]types.DataType{types.Int64Type}, 10))
	if r.Filter(5).Cols[0].N != 2 {
		t.Fatal("duplicate publish must be ignored")
	}
	// Drop: consumers read nil.
	r.Drop(5)
	if r.Filter(5) != nil {
		t.Fatal("dropped filter must read nil")
	}
	// Unknown IDs and nil registries are safe.
	if r.Filter(99) != nil {
		t.Fatal("unknown id must read nil")
	}
	var nilReg *Registry
	nilReg.Expect(1, 1)
	nilReg.Publish(1, 0, nil)
	if nilReg.Filter(1) != nil {
		t.Fatal("nil registry must read nil")
	}
}

// TestUnsupportedKeyType: Decimal keys yield a nil ColFilter (pass-through)
// without breaking the surrounding Filter.
func TestUnsupportedKeyType(t *testing.T) {
	f := NewFilter([]types.DataType{types.DecimalType(10, 2), types.Int64Type}, 10)
	if f.Cols[0] != nil {
		t.Fatal("decimal key must yield a nil column filter")
	}
	if !f.Usable() {
		t.Fatal("filter with one supported column must be usable")
	}
	if NewFilter([]types.DataType{types.DecimalType(10, 2)}, 10).Usable() {
		t.Fatal("filter with no supported columns must not be usable")
	}
}
