package rf

import (
	"math"

	"photon/internal/expr"
	"photon/internal/kernels"
	"photon/internal/types"
	"photon/internal/vector"
)

// ColFilter is the runtime filter for one join-key column: an exact-ish
// value-range envelope plus a Bloom filter over single-column key hashes.
// The hash function is HashVec on both the build and probe side, so a probe
// key equal to some build key always hashes identically (no false
// negatives by construction).
type ColFilter struct {
	Type types.DataType
	// N counts the non-NULL build keys folded in. N == 0 means the build
	// side produced no joinable rows: the probe side matches nothing.
	N     int64
	Bloom *Bloom

	// Range envelope for orderable fixed-width keys (ints, dates,
	// timestamps, floats). hasRange is false until the first key arrives
	// and permanently false for unordered types (strings, bools) and for
	// float columns that observed a NaN.
	hasRange   bool
	rangeDead  bool
	minI, maxI int64
	minF, maxF float64
}

// Supported reports whether runtime filters can be built over keys of t.
func Supported(t types.DataType) bool {
	switch t.ID {
	case types.Bool, types.Int32, types.Int64, types.Date, types.Timestamp,
		types.Float64, types.String:
		return true
	}
	return false // Decimal et al.: no hash widening defined here
}

// ranged reports whether t keeps a min/max envelope.
func ranged(t types.DataType) bool {
	switch t.ID {
	case types.Int32, types.Int64, types.Date, types.Timestamp, types.Float64:
		return true
	}
	return false
}

// NewColFilter builds an empty column filter sized for expectedKeys, or nil
// when the key type is unsupported (the column then passes everything).
func NewColFilter(t types.DataType, expectedKeys int64) *ColFilter {
	if !Supported(t) {
		return nil
	}
	return &ColFilter{Type: t, Bloom: NewBloom(expectedKeys)}
}

// HashScratch holds the per-operator scratch buffers of the hashing and
// probing loops (a task-local object, never shared).
type HashScratch struct {
	hashes []uint64
	lanes  []uint64
}

func (s *HashScratch) ensure(n int) {
	if len(s.hashes) < n {
		s.hashes = make([]uint64, n)
		s.lanes = make([]uint64, n)
	}
}

// HashVec hashes one key column's active rows into the scratch hash array
// (indexed by physical row). This is the single-column variant of the join
// hashing kernels and must stay in lockstep with them: Mix64 over widened
// 64-bit lanes for fixed-width types, FNV-1a+Mix64 for strings.
func HashVec(v *vector.Vector, sel []int32, n int, s *HashScratch) []uint64 {
	s.ensure(n)
	if v.Type.ID == types.String {
		kernels.HashBytes(v.Str, v.Nulls, v.HasNulls(), sel, n, s.hashes)
		return s.hashes
	}
	lanes := s.lanes
	switch v.Type.ID {
	case types.Bool:
		apply(sel, n, func(i int32) { lanes[i] = uint64(v.Bool[i]) })
	case types.Int32, types.Date:
		apply(sel, n, func(i int32) { lanes[i] = uint64(uint32(v.I32[i])) })
	case types.Int64, types.Timestamp:
		apply(sel, n, func(i int32) { lanes[i] = uint64(v.I64[i]) })
	case types.Float64:
		apply(sel, n, func(i int32) { lanes[i] = math.Float64bits(v.F64[i]) })
	}
	kernels.HashU64(lanes, v.Nulls, v.HasNulls(), sel, n, s.hashes)
	return s.hashes
}

// apply visits the active rows.
func apply(sel []int32, n int, f func(int32)) {
	if sel == nil {
		for i := 0; i < n; i++ {
			f(int32(i))
		}
		return
	}
	for _, i := range sel {
		f(i)
	}
}

// AddVec folds one batch's key column into the filter. NULL keys are
// skipped: an equi-join can never match them, so the probe side is free to
// drop its own NULL keys. sel/n follow the batch position-list convention.
func (c *ColFilter) AddVec(v *vector.Vector, sel []int32, n int, s *HashScratch) {
	hashes := HashVec(v, sel, n, s)
	nulls := v.HasNulls()
	add := func(i int32) {
		if nulls && v.Nulls[i] != 0 {
			return
		}
		c.Bloom.Add(hashes[i])
		c.N++
		c.observeRange(v, i)
	}
	apply(sel, n, add)
}

// observeRange widens the envelope with row i's value.
func (c *ColFilter) observeRange(v *vector.Vector, i int32) {
	if c.rangeDead {
		return
	}
	if !ranged(c.Type) {
		c.rangeDead = true
		return
	}
	switch c.Type.ID {
	case types.Int32, types.Date:
		c.observeI(int64(v.I32[i]))
	case types.Int64, types.Timestamp:
		c.observeI(v.I64[i])
	case types.Float64:
		f := v.F64[i]
		if math.IsNaN(f) {
			// NaN breaks ordering; give up on the range, keep the Bloom.
			c.hasRange = false
			c.rangeDead = true
			return
		}
		if !c.hasRange || f < c.minF {
			c.minF = f
		}
		if !c.hasRange || f > c.maxF {
			c.maxF = f
		}
		c.hasRange = true
	}
}

func (c *ColFilter) observeI(x int64) {
	if !c.hasRange || x < c.minI {
		c.minI = x
	}
	if !c.hasRange || x > c.maxI {
		c.maxI = x
	}
	c.hasRange = true
}

// ProbeVec appends to out the active rows of v that may match some build
// key: non-NULL, inside the range envelope, and present in the Bloom
// filter. out is reset; the returned slice aliases it.
func (c *ColFilter) ProbeVec(v *vector.Vector, sel []int32, n int, s *HashScratch, out []int32) []int32 {
	out = out[:0]
	if c.N == 0 {
		return out // empty build side: nothing can join
	}
	hashes := HashVec(v, sel, n, s)
	nulls := v.HasNulls()
	switch {
	case c.hasRange && (c.Type.ID == types.Int32 || c.Type.ID == types.Date):
		lo, hi := int32(c.minI), int32(c.maxI)
		apply(sel, n, func(i int32) {
			if nulls && v.Nulls[i] != 0 {
				return
			}
			x := v.I32[i]
			if x < lo || x > hi || !c.Bloom.MayContain(hashes[i]) {
				return
			}
			out = append(out, i)
		})
	case c.hasRange && (c.Type.ID == types.Int64 || c.Type.ID == types.Timestamp):
		lo, hi := c.minI, c.maxI
		apply(sel, n, func(i int32) {
			if nulls && v.Nulls[i] != 0 {
				return
			}
			x := v.I64[i]
			if x < lo || x > hi || !c.Bloom.MayContain(hashes[i]) {
				return
			}
			out = append(out, i)
		})
	case c.hasRange && c.Type.ID == types.Float64:
		lo, hi := c.minF, c.maxF
		apply(sel, n, func(i int32) {
			if nulls && v.Nulls[i] != 0 {
				return
			}
			x := v.F64[i]
			if x < lo || x > hi || !c.Bloom.MayContain(hashes[i]) {
				return
			}
			out = append(out, i)
		})
	default:
		apply(sel, n, func(i int32) {
			if nulls && v.Nulls[i] != 0 {
				return
			}
			if !c.Bloom.MayContain(hashes[i]) {
				return
			}
			out = append(out, i)
		})
	}
	return out
}

// Merge widens c with another task's partial filter over the same column.
func (c *ColFilter) Merge(o *ColFilter) {
	if o == nil {
		return
	}
	if !c.Bloom.Union(o.Bloom) {
		// Size mismatch (should not happen: tasks size from one estimate).
		// Degrade to pass-everything by saturating the filter.
		for i := range c.Bloom.words {
			c.Bloom.words[i] = ^uint32(0)
		}
	}
	c.N += o.N
	if o.rangeDead {
		c.rangeDead = true
		c.hasRange = false
	}
	if c.rangeDead || !o.hasRange {
		return
	}
	if !c.hasRange {
		c.minI, c.maxI, c.minF, c.maxF = o.minI, o.maxI, o.minF, o.maxF
		c.hasRange = true
		return
	}
	c.minI = min(c.minI, o.minI)
	c.maxI = max(c.maxI, o.maxI)
	c.minF = math.Min(c.minF, o.minF)
	c.maxF = math.Max(c.maxF, o.maxF)
}

// RangeFilter renders the envelope as a pushdown predicate (col >= min AND
// col <= max) for file-level statistics skipping, or nil when no range is
// tracked. col must reference the probe-side scan column.
func (c *ColFilter) RangeFilter(col *expr.ColRef) expr.Filter {
	if !c.hasRange {
		return nil
	}
	var loV, hiV any
	switch c.Type.ID {
	case types.Int32, types.Date:
		loV, hiV = int32(c.minI), int32(c.maxI)
	case types.Int64, types.Timestamp:
		loV, hiV = c.minI, c.maxI
	case types.Float64:
		loV, hiV = c.minF, c.maxF
	default:
		return nil
	}
	return &expr.And{Filters: []expr.Filter{
		expr.MustCmp(kernels.CmpGe, col, expr.Lit(loV, col.T)),
		expr.MustCmp(kernels.CmpLe, col, expr.Lit(hiV, col.T)),
	}}
}

// OverlapsBoxed reports whether a statistics envelope [lo, hi] (boxed
// values, e.g. decoded Parquet chunk stats) can intersect the filter's key
// range. Conservative: unknown types or an untracked range report true. A
// nil bound (all-NULL chunk) reports false — NULL keys never join. An
// empty filter (N == 0) reports false.
func (c *ColFilter) OverlapsBoxed(lo, hi any) bool {
	if c.N == 0 {
		return false
	}
	if lo == nil || hi == nil {
		return false
	}
	if !c.hasRange {
		return true
	}
	switch c.Type.ID {
	case types.Int32, types.Date:
		l, lok := lo.(int32)
		h, hok := hi.(int32)
		return !lok || !hok || (int64(h) >= c.minI && int64(l) <= c.maxI)
	case types.Int64, types.Timestamp:
		l, lok := lo.(int64)
		h, hok := hi.(int64)
		return !lok || !hok || (h >= c.minI && l <= c.maxI)
	case types.Float64:
		l, lok := lo.(float64)
		h, hok := hi.(float64)
		return !lok || !hok || (h >= c.minF && l <= c.maxF)
	}
	return true
}

// Filter is the runtime filter of one join: one ColFilter per key column
// (nil entries pass everything — unsupported key types).
type Filter struct {
	Cols []*ColFilter
}

// NewFilter sizes an empty filter for the given key types and expected
// build rows. Every producer task must use the same expectedRows so the
// per-task Blooms union cleanly.
func NewFilter(keyTypes []types.DataType, expectedRows int64) *Filter {
	f := &Filter{Cols: make([]*ColFilter, len(keyTypes))}
	for i, t := range keyTypes {
		f.Cols[i] = NewColFilter(t, expectedRows)
	}
	return f
}

// Usable reports whether the filter can reject anything.
func (f *Filter) Usable() bool {
	if f == nil {
		return false
	}
	for _, c := range f.Cols {
		if c != nil {
			return true
		}
	}
	return false
}

// Add folds the key columns of b's rows (sel/n window) into the filter.
func (f *Filter) Add(b *vector.Batch, keyCols []int, sel []int32, n int, s *HashScratch) {
	for k, col := range keyCols {
		if c := f.Cols[k]; c != nil {
			c.AddVec(b.Vecs[col], sel, n, s)
		}
	}
}

// Merge folds another task's partial filter into f.
func (f *Filter) Merge(o *Filter) {
	if o == nil {
		return
	}
	for i, c := range f.Cols {
		if c == nil || i >= len(o.Cols) {
			continue
		}
		if o.Cols[i] == nil {
			// The other task could not track this column; drop ours too.
			f.Cols[i] = nil
			continue
		}
		c.Merge(o.Cols[i])
	}
}
