package exec

import (
	"errors"
	"strings"
	"testing"

	"photon/internal/expr"
	"photon/internal/mem"
	"photon/internal/types"
	"photon/internal/vector"
)

// Failure injection: operators must surface errors cleanly rather than
// panic or silently truncate.

func TestOOMWithoutSpillDirErrors(t *testing.T) {
	schema := intSchema("g", "v")
	var rows [][]any
	for i := 0; i < 20000; i++ {
		rows = append(rows, []any{int64(i), int64(i)}) // every row a new group
	}
	scan := NewMemScan(schema, BuildBatches(schema, rows, 64))
	agg, _ := NewHashAgg(scan, AggComplete, []expr.Expr{expr.Col(0, "g", types.Int64Type)}, []string{"g"},
		[]expr.AggSpec{{Kind: expr.AggSum, Arg: expr.Col(1, "v", types.Int64Type), Name: "s"}})
	tc := NewTaskCtx(mem.NewManager(64<<10), 64)
	tc.SpillDir = "" // spilling disabled
	_, err := CollectRows(agg, tc)
	if err == nil {
		t.Fatal("expected an out-of-memory error with spilling disabled")
	}
	var oom *mem.OOMError
	if !errors.As(err, &oom) && !strings.Contains(err.Error(), "out of memory") {
		t.Errorf("unexpected error type: %v", err)
	}
}

func TestJoinOOMWithoutSpillDirErrors(t *testing.T) {
	schema := intSchema("k")
	var rows [][]any
	for i := 0; i < 50000; i++ {
		rows = append(rows, []any{int64(i)})
	}
	l := NewMemScan(schema, BuildBatches(schema, rows, 64))
	r := NewMemScan(schema, BuildBatches(schema, rows, 64))
	key := []expr.Expr{expr.Col(0, "k", types.Int64Type)}
	j, _ := NewHashJoin(l, r, key, key, InnerJoin)
	tc := NewTaskCtx(mem.NewManager(64<<10), 64)
	_, err := CollectRows(j, tc)
	if err == nil {
		t.Fatal("expected OOM from the build side")
	}
}

type errorOp struct {
	base
	failOn int
	calls  int
}

func newErrorOp(schema *types.Schema, failOn int) *errorOp {
	op := &errorOp{failOn: failOn}
	op.schema = schema
	op.stats.Name = "ErrorOp"
	return op
}

func (e *errorOp) Open(tc *TaskCtx) error { e.tc = tc; return nil }
func (e *errorOp) Close() error           { return nil }
func (e *errorOp) Next() (*vector.Batch, error) {
	e.calls++
	if e.calls >= e.failOn {
		return nil, errors.New("injected source failure")
	}
	b := vector.NewBatch(e.schema, 8)
	b.AppendRow(int64(e.calls))
	return b, nil
}

func TestChildErrorPropagatesThroughPipeline(t *testing.T) {
	schema := intSchema("v")
	src := newErrorOp(schema, 3)
	filt := NewFilter(src, expr.MustCmp(0, expr.Col(0, "v", types.Int64Type), expr.Int64Lit(1)))
	agg, _ := NewHashAgg(filt, AggComplete, nil, nil, []expr.AggSpec{{Kind: expr.AggCount, Name: "c"}})
	_, err := CollectRows(agg, NewTaskCtx(nil, 8))
	if err == nil || !strings.Contains(err.Error(), "injected") {
		t.Fatalf("error not propagated: %v", err)
	}
}

// Recursive spill (§5.3): two memory consumers share one manager; the
// second's reservation forces the first to spill on its behalf, and both
// produce correct results.
func TestRecursiveSpillAcrossOperators(t *testing.T) {
	schema := intSchema("g", "v")
	var rows [][]any
	for i := 0; i < 6000; i++ {
		rows = append(rows, []any{int64(i % 1500), int64(i)})
	}
	mm := mem.NewManager(96 << 10)
	tc := NewTaskCtx(mm, 64)
	tc.SpillDir = t.TempDir()

	// Pipeline: Agg (hash table memory) feeding Sort (buffer memory); both
	// reserve from the same manager.
	scan := NewMemScan(schema, BuildBatches(schema, rows, 64))
	agg, _ := NewHashAgg(scan, AggComplete,
		[]expr.Expr{expr.Col(0, "g", types.Int64Type)}, []string{"g"},
		[]expr.AggSpec{{Kind: expr.AggSum, Arg: expr.Col(1, "v", types.Int64Type), Name: "s"}})
	sorted := NewSort(agg, []SortKey{{Col: 0}})
	got, err := CollectRows(sorted, tc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1500 {
		t.Fatalf("groups = %d", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i][0].(int64) <= got[i-1][0].(int64) {
			t.Fatal("output not sorted")
		}
	}
	if mm.SpillCount == 0 {
		t.Error("expected spills under the shared 96KB limit")
	}
	// Verify against unconstrained execution.
	scan2 := NewMemScan(schema, BuildBatches(schema, rows, 64))
	agg2, _ := NewHashAgg(scan2, AggComplete,
		[]expr.Expr{expr.Col(0, "g", types.Int64Type)}, []string{"g"},
		[]expr.AggSpec{{Kind: expr.AggSum, Arg: expr.Col(1, "v", types.Int64Type), Name: "s"}})
	sorted2 := NewSort(agg2, []SortKey{{Col: 0}})
	want, err := CollectRows(sorted2, newTC(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Fatalf("row counts differ: %d vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i][0] != want[i][0] || got[i][1] != want[i][1] {
			t.Fatalf("row %d differs: %v vs %v", i, got[i], want[i])
		}
	}
}
