package exec

import (
	"container/heap"
	"context"
	"fmt"

	"photon/internal/types"
	"photon/internal/vector"
)

// mergeCheckRows is how often (in merged rows) the driver-side k-way merge
// polls its context for cancellation.
const mergeCheckRows = 1024

// Exchange operators are the physical form of stage boundaries (§2.2):
// a ShuffleWriteOp terminates a map stage, hash-partitioning its input
// across the next stage's tasks; ShuffleReadOp / BroadcastReadOp are the
// leaf operators of the consuming stage. They are first-class operators —
// they appear in the stats tree like any other node — while the storage
// format stays behind the ShuffleSink/ShuffleSource interfaces so exec does
// not depend on the shuffle layer's encoding.

// ShuffleSink receives partitioned batches at a stage boundary
// (implemented by shuffle.Writer). WritePartition encodes b's *active*
// rows, so callers can route subsets via the batch's selection vector.
type ShuffleSink interface {
	WritePartition(part int, b *vector.Batch) error
	Close() error
}

// ShuffleSource streams decoded batches of one shuffle partition
// (implemented by shuffle.Reader). Next fills dst and reports whether a
// block was decoded.
type ShuffleSource interface {
	Next(dst *vector.Batch) (bool, error)
}

// PartitionFunc maps a batch's active rows to output partitions, returning
// one position list per partition (see shuffle.Partitioner.Split). The
// returned lists may alias internal buffers valid until the next call.
type PartitionFunc func(b *vector.Batch) [][]int32

// ShuffleWriteOp drains its child and routes every row to a shuffle
// partition. It is a sink: Next performs the whole write and returns end of
// input without emitting batches. The driver reads per-partition byte
// statistics from the concrete sink afterwards (AQE coalescing, §5.5).
type ShuffleWriteOp struct {
	base
	child Operator
	sink  ShuffleSink
	split PartitionFunc // nil = everything to partition 0 (keyless/broadcast)
	done  bool
}

// NewShuffleWrite builds a shuffle-write sink over child. A nil split sends
// every row to partition 0 (the keyless-aggregation and broadcast cases).
func NewShuffleWrite(child Operator, sink ShuffleSink, split PartitionFunc) *ShuffleWriteOp {
	s := &ShuffleWriteOp{child: child, sink: sink, split: split}
	s.schema = child.Schema()
	s.stats.Name = "ShuffleWrite"
	return s
}

// Open implements Operator.
func (s *ShuffleWriteOp) Open(tc *TaskCtx) error {
	s.tc = tc
	s.done = false
	return s.child.Open(tc)
}

// Next implements Operator: the first call drains the child into the sink;
// every call reports end of input.
func (s *ShuffleWriteOp) Next() (*vector.Batch, error) {
	if s.done {
		return nil, nil
	}
	err := s.timed(func() error {
		for {
			// Batch-boundary cancellation check: a cancelled query stops
			// writing shuffle output within one batch.
			if err := s.tc.Cancelled(); err != nil {
				return err
			}
			b, err := s.child.Next()
			if err != nil {
				return err
			}
			if b == nil {
				s.done = true
				return nil
			}
			n := int64(b.NumActive())
			s.stats.RowsIn.Add(n)
			// Straggler detection input: report work at batch granularity.
			s.tc.ReportProgress(n, 0)
			if n == 0 {
				continue
			}
			if s.split == nil {
				if err := s.sink.WritePartition(0, b); err != nil {
					return err
				}
				s.stats.RowsOut.Add(n)
				continue
			}
			saved := b.Sel
			for part, sel := range s.split(b) {
				if len(sel) == 0 {
					continue
				}
				b.Sel = sel
				if err := s.sink.WritePartition(part, b); err != nil {
					b.Sel = saved
					return err
				}
				s.stats.RowsOut.Add(int64(len(sel)))
			}
			b.Sel = saved
		}
	})
	return nil, err
}

// Close implements Operator, closing the sink after the child so partition
// files are complete before the next stage starts.
func (s *ShuffleWriteOp) Close() error {
	errChild := s.child.Close()
	errSink := s.sink.Close()
	if errChild != nil {
		return errChild
	}
	return errSink
}

// exchangeRead is the shared mechanics of the exchange leaf operators: it
// streams a sequence of shuffle sources into a reused batch.
type exchangeRead struct {
	base
	open func() ([]ShuffleSource, error)
	srcs []ShuffleSource
	idx  int
	buf  *vector.Batch
}

func (e *exchangeRead) Open(tc *TaskCtx) error {
	e.tc = tc
	e.idx = 0
	srcs, err := e.open()
	if err != nil {
		return err
	}
	e.srcs = srcs
	return nil
}

func (e *exchangeRead) Next() (*vector.Batch, error) {
	var out *vector.Batch
	err := e.timed(func() error {
		if e.buf == nil {
			// Shuffle blocks were encoded from full writer-side batches, so
			// the decode target must be at least the default batch size.
			e.buf = vector.NewBatch(e.schema, max(e.tc.Pool.BatchSize(), vector.DefaultBatchSize))
		}
		for e.idx < len(e.srcs) {
			// Batch-boundary cancellation check (shuffle/broadcast read).
			if err := e.tc.Cancelled(); err != nil {
				return err
			}
			ok, err := e.srcs[e.idx].Next(e.buf)
			if err != nil {
				return err
			}
			if ok {
				n := int64(e.buf.NumActive())
				e.stats.RowsOut.Add(n)
				e.stats.BatchesOut.Add(1)
				// Straggler detection input: exchange-read progress.
				e.tc.ReportProgress(n, 0)
				out = e.buf
				return nil
			}
			e.idx++
		}
		return nil
	})
	return out, err
}

func (e *exchangeRead) Close() error {
	e.srcs = nil
	return nil
}

// ShuffleReadOp reads this task's (possibly coalesced) set of hash
// partitions of an upstream stage's shuffle output.
type ShuffleReadOp struct{ exchangeRead }

// NewShuffleRead builds a shuffle-read leaf; open yields one source per
// assigned partition.
func NewShuffleRead(name string, schema *types.Schema, open func() ([]ShuffleSource, error)) *ShuffleReadOp {
	op := &ShuffleReadOp{}
	op.schema = schema
	op.open = open
	op.stats.Name = name
	if name == "" {
		op.stats.Name = "ShuffleRead"
	}
	return op
}

// BroadcastReadOp reads the *entire* replicated output of an upstream
// stage (every map task's broadcast file) — the build-side input of a
// broadcast hash join. Unlike ShuffleReadOp, every task of the consuming
// stage sees all rows.
type BroadcastReadOp struct{ exchangeRead }

// NewBroadcastRead builds a broadcast-read leaf; open yields the sources
// covering the full broadcast dataset.
func NewBroadcastRead(name string, schema *types.Schema, open func() ([]ShuffleSource, error)) *BroadcastReadOp {
	op := &BroadcastReadOp{}
	op.schema = schema
	op.open = open
	op.stats.Name = name
	if name == "" {
		op.stats.Name = "BroadcastRead"
	}
	return op
}

// Drain runs op to completion for its side effects (shuffle writes),
// discarding any output batches.
func Drain(op Operator, tc *TaskCtx) error {
	if err := op.Open(tc); err != nil {
		return err
	}
	defer op.Close()
	for {
		b, err := op.Next()
		if err != nil {
			return err
		}
		if b == nil {
			return nil
		}
	}
}

// mergeCursor walks one sorted run (a task's ordered output batches).
type mergeCursor struct {
	batches []*vector.Batch
	bi      int // batch index
	ri      int // row position within batches[bi]'s active rows
}

func (c *mergeCursor) skipEmpty() {
	for c.bi < len(c.batches) && c.ri >= c.batches[c.bi].NumActive() {
		c.bi++
		c.ri = 0
	}
}

func (c *mergeCursor) done() bool { return c.bi >= len(c.batches) }

// current returns the (batch, physical row) under the cursor.
func (c *mergeCursor) current() (*vector.Batch, int) {
	b := c.batches[c.bi]
	return b, b.RowIndex(c.ri)
}

// runHeap is a min-heap of cursors ordered by their current row.
type runHeap struct {
	keys []SortKey
	cur  []*mergeCursor
}

func (h *runHeap) Len() int { return len(h.cur) }
func (h *runHeap) Less(x, y int) bool {
	ba, ia := h.cur[x].current()
	bb, ib := h.cur[y].current()
	return compareBatchRowsMixed(ba, ia, bb, ib, h.keys) < 0
}
func (h *runHeap) Swap(x, y int) { h.cur[x], h.cur[y] = h.cur[y], h.cur[x] }
func (h *runHeap) Push(x any)    { h.cur = append(h.cur, x.(*mergeCursor)) }
func (h *runHeap) Pop() any {
	old := h.cur
	n := len(old)
	x := old[n-1]
	h.cur = old[:n-1]
	return x
}

// MergeSortedRuns k-way merges per-task sorted outputs into globally
// ordered rows — the driver-side second phase of a two-phase parallel sort.
// Each run must already be ordered under keys; limit >= 0 truncates the
// merged output. ctx is observed every mergeCheckRows merged rows, so a
// cancelled query aborts the driver-side merge promptly even when the merge
// itself is the long pole (giant pre-sorted inputs). A nil ctx disables the
// check.
func MergeSortedRuns(ctx context.Context, runs [][]*vector.Batch, keys []SortKey, limit int64) ([][]any, error) {
	if len(keys) == 0 {
		return nil, fmt.Errorf("exec: merge requires sort keys")
	}
	h := &runHeap{keys: keys}
	var total int64
	for _, run := range runs {
		c := &mergeCursor{batches: run}
		c.skipEmpty()
		if !c.done() {
			h.cur = append(h.cur, c)
		}
		for _, b := range run {
			total += int64(b.NumActive())
		}
	}
	if limit >= 0 && limit < total {
		total = limit
	}
	heap.Init(h)
	out := make([][]any, 0, total)
	for h.Len() > 0 {
		if limit >= 0 && int64(len(out)) >= limit {
			break
		}
		if ctx != nil && len(out)%mergeCheckRows == 0 {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("exec: merge cancelled: %w", err)
			}
		}
		c := h.cur[0]
		b, i := c.current()
		out = append(out, b.Row(i))
		c.ri++
		c.skipEmpty()
		if c.done() {
			heap.Pop(h)
		} else {
			heap.Fix(h, 0)
		}
	}
	return out, nil
}
