package exec

import (
	"photon/internal/types"
	"photon/internal/vector"
)

// VirtualSource adapts a row-producing snapshot function into the batch
// feed a virtual table serves: each call materializes the source's current
// rows into fresh batches. System tables (query history, active queries,
// metrics) use this to route diagnostics through the same MemScan →
// filter → aggregate path as user data.
func VirtualSource(schema *types.Schema, rows func() [][]any, batchSize int) func() []*vector.Batch {
	return func() []*vector.Batch {
		return BuildBatches(schema, rows(), batchSize)
	}
}
