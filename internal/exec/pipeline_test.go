package exec

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"photon/internal/expr"
	"photon/internal/kernels"
	"photon/internal/rf"
	"photon/internal/types"
	"photon/internal/vector"
)

// ---------------------------------------------------------------------------
// Property test: a Filter→Filter→Project chain must produce byte-identical
// batches fused and unfused — same values, same NumRows, and the same
// selection-vector representation (including the dense fast path where an
// all-pass filter over a dense batch keeps Sel == nil instead of
// materializing the identity selection).
// ---------------------------------------------------------------------------

// batchSnap captures one output batch's observable bytes: the selection
// vector exactly as represented (nil vs materialized), the physical row
// count, and every active row's values.
type batchSnap struct {
	SelNil  bool
	Sel     []int32
	NumRows int
	Rows    [][]any
}

func snapshotBatch(b *vector.Batch) batchSnap {
	s := batchSnap{SelNil: b.Sel == nil, NumRows: b.NumRows}
	if b.Sel != nil {
		s.Sel = append([]int32(nil), b.Sel...)
	}
	n := b.NumActive()
	for i := 0; i < n; i++ {
		row := append([]any(nil), b.Row(b.RowIndex(i))...)
		s.Rows = append(s.Rows, row)
	}
	return s
}

// statRow is the ID-stable subset of a stats snapshot that must match
// between fused and unfused execution (TimeNanos legitimately differs: in
// fused mode loop time accrues to the hidden pipeline node).
type statRow struct {
	ID, Depth                   int
	Name                        string
	RowsIn, RowsOut, BatchesOut int64
}

// buildChain assembles Filter(a >= lo) → Filter(b < hi) → Project(b, a+1000)
// over the given batches.
func buildChain(schema *types.Schema, batches []*vector.Batch, lo, hi int64) Operator {
	scan := NewMemScan(schema, batches)
	f1 := NewFilter(scan, expr.MustCmp(kernels.CmpGe, expr.Col(0, "a", types.Int64Type), expr.Int64Lit(lo)))
	f2 := NewFilter(f1, expr.MustCmp(kernels.CmpLt, expr.Col(1, "b", types.Int64Type), expr.Int64Lit(hi)))
	return NewProject(f2, []expr.Expr{
		expr.Col(1, "b", types.Int64Type),
		expr.MustArith(expr.OpAdd, expr.Col(0, "a", types.Int64Type), expr.Int64Lit(1000)),
	}, []string{"b", "a1k"})
}

// runChain executes the chain (optionally fused) and returns per-batch
// snapshots plus the stats rows of the logical operators.
func runChain(t *testing.T, schema *types.Schema, batches []*vector.Batch, lo, hi int64, fused bool) ([]batchSnap, []statRow) {
	t.Helper()
	root := buildChain(schema, batches, lo, hi)
	if fused {
		root = FusePipelines(root)
		if _, ok := root.(*PipelineOp); !ok {
			t.Fatalf("FusePipelines did not fuse the chain: %T", root)
		}
	}
	AssignStatsIDs(root)
	tc := newTC(t)
	if err := root.Open(tc); err != nil {
		t.Fatal(err)
	}
	var snaps []batchSnap
	for {
		b, err := root.Next()
		if err != nil {
			t.Fatal(err)
		}
		if b == nil {
			break
		}
		snaps = append(snaps, snapshotBatch(b))
	}
	var stats []statRow
	for _, s := range SnapshotStats(root) {
		stats = append(stats, statRow{
			ID: s.ID, Depth: s.Depth, Name: s.Name,
			RowsIn: s.RowsIn, RowsOut: s.RowsOut, BatchesOut: s.BatchesOut,
		})
	}
	if err := root.Close(); err != nil {
		t.Fatal(err)
	}
	return snaps, stats
}

// randomBatches generates batches of random size; sparse=true attaches a
// random (possibly empty) sorted selection to each.
func randomBatches(r *rand.Rand, schema *types.Schema, sparse bool) []*vector.Batch {
	nb := 3 + r.Intn(5)
	out := make([]*vector.Batch, 0, nb)
	for i := 0; i < nb; i++ {
		// newTC sizes the expression arena for 64-row batches.
		n := 1 + r.Intn(64)
		b := vector.NewBatch(schema, n)
		for row := 0; row < n; row++ {
			b.Vecs[0].I64[row] = r.Int63n(1000)
			b.Vecs[1].I64[row] = r.Int63n(1000)
		}
		b.NumRows = n
		if sparse {
			var sel []int32
			for row := 0; row < n; row++ {
				if r.Intn(3) == 0 {
					sel = append(sel, int32(row))
				}
			}
			b.SetSel(sel) // may be empty: a fully-deselected batch
		}
		out = append(out, b)
	}
	return out
}

func cloneBatches(in []*vector.Batch) []*vector.Batch {
	out := make([]*vector.Batch, len(in))
	for i, b := range in {
		out[i] = b.Clone()
	}
	return out
}

func TestFusedPipelinePropertyEquivalence(t *testing.T) {
	schema := intSchema("a", "b")
	cases := []struct {
		name   string
		sparse bool
		lo, hi int64 // Filter(a >= lo), Filter(b < hi)
	}{
		{"dense_selective", false, 500, 500},
		{"sparse_selective", true, 500, 500},
		{"dense_all_pass", false, 0, 1 << 40}, // dense fast path: Sel must stay nil
		{"sparse_all_pass", true, 0, 1 << 40},
		{"dense_all_drop", false, 1 << 40, 500},
		{"sparse_all_drop", true, 1 << 40, 500},
	}
	for _, tcase := range cases {
		t.Run(tcase.name, func(t *testing.T) {
			for trial := 0; trial < 20; trial++ {
				r := rand.New(rand.NewSource(int64(trial)*7919 + 1))
				batches := randomBatches(r, schema, tcase.sparse)
				// Filters shrink Sel in place, so each run gets its own copy.
				ref, refStats := runChain(t, schema, cloneBatches(batches), tcase.lo, tcase.hi, false)
				got, gotStats := runChain(t, schema, cloneBatches(batches), tcase.lo, tcase.hi, true)
				if !reflect.DeepEqual(ref, got) {
					t.Fatalf("trial %d: fused output differs\nunfused: %v\nfused:   %v", trial, ref, got)
				}
				if !reflect.DeepEqual(refStats, gotStats) {
					t.Fatalf("trial %d: fused stats differ\nunfused: %v\nfused:   %v", trial, refStats, gotStats)
				}
				if tcase.name == "dense_all_pass" {
					for i, s := range got {
						if !s.SelNil {
							t.Fatalf("trial %d batch %d: all-pass dense batch materialized Sel (fast path lost)", trial, i)
						}
					}
				}
			}
		})
	}
}

// TestFusedPipelineStatsIDs: fusing must not shift pre-order operator IDs,
// names, or depths — distributed EXPLAIN ANALYZE merges snapshots by ID.
func TestFusedPipelineStatsIDs(t *testing.T) {
	schema := intSchema("a", "b")
	r := rand.New(rand.NewSource(42))
	batches := randomBatches(r, schema, false)
	_, refStats := runChain(t, schema, cloneBatches(batches), 250, 750, false)
	_, gotStats := runChain(t, schema, cloneBatches(batches), 250, 750, true)
	if len(refStats) == 0 || !reflect.DeepEqual(refStats, gotStats) {
		t.Fatalf("stats rows differ\nunfused: %v\nfused:   %v", refStats, gotStats)
	}
}

// TestCollectPipelines: the fused plan reports its pipeline shape for the
// stage profile's pipeline[...] line.
func TestCollectPipelines(t *testing.T) {
	schema := intSchema("a", "b")
	r := rand.New(rand.NewSource(7))
	batches := randomBatches(r, schema, false)
	root := FusePipelines(buildChain(schema, batches, 0, 1<<40))
	tc := newTC(t)
	rows, err := CollectRows(root, tc)
	if err != nil {
		t.Fatal(err)
	}
	infos := CollectPipelines(root)
	if len(infos) != 1 {
		t.Fatalf("pipelines = %d, want 1", len(infos))
	}
	// Source scan + two filters + project.
	if infos[0].Ops != 4 {
		t.Errorf("fused ops = %d, want 4", infos[0].Ops)
	}
	if infos[0].Rows != int64(len(rows)) {
		t.Errorf("pipeline rows = %d, want %d", infos[0].Rows, len(rows))
	}
	if infos[0].Batches != int64(len(batches)) {
		t.Errorf("pipeline batches = %d, want %d", infos[0].Batches, len(batches))
	}
}

// ---------------------------------------------------------------------------
// Prompt cancellation inside fused loops (the 1M-row giant-batch tests,
// extended to the fused path).
// ---------------------------------------------------------------------------

// TestFusedFilterCancelsWithinGiantBatch: a fused filter pipeline must
// observe cancellation inside one giant batch via the windowed selection
// kernel, not only between batches.
func TestFusedFilterCancelsWithinGiantBatch(t *testing.T) {
	const n = 1 << 20
	schema := intSchema("a")
	ctx, cancel := context.WithCancel(context.Background())
	src := &cancelOnNextSource{batch: giantBatch(schema, n), cancel: cancel}
	src.schema = schema

	filt := NewFilter(src, expr.MustCmp(kernels.CmpGe, expr.Col(0, "a", types.Int64Type), expr.Int64Lit(0)))
	root := FusePipelines(filt)
	if _, ok := root.(*PipelineOp); !ok {
		t.Fatalf("expected fused pipeline, got %T", root)
	}
	tc := newTC(t)
	tc.Ctx = ctx
	_, err := CollectRows(root, tc)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestAggUpdateCancelsWithinGiantBatch: the hash-aggregate group-resolution
// loop runs under the hash table's guard, so cancellation lands inside a
// single giant batch with a bounded number of groups inserted.
func TestAggUpdateCancelsWithinGiantBatch(t *testing.T) {
	const n = 1 << 20
	schema := intSchema("g")
	ctx, cancel := context.WithCancel(context.Background())
	src := &cancelOnNextSource{batch: giantBatch(schema, n), cancel: cancel}
	src.schema = schema

	agg, err := NewHashAgg(src, AggComplete,
		[]expr.Expr{expr.Col(0, "g", types.Int64Type)}, []string{"g"},
		[]expr.AggSpec{{Kind: expr.AggCount, Name: "cnt"}})
	if err != nil {
		t.Fatal(err)
	}
	tc := newTC(t)
	tc.Ctx = ctx
	_, err = CollectRows(agg, tc)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if got := agg.tbl.NumRows(); got > cancelCheckRows {
		t.Fatalf("agg inserted %d groups after cancellation (window=%d)", got, cancelCheckRows)
	}
}

// TestJoinProbeCancelsWithinGiantBatch: the probe-side Find runs under the
// hash table's guard too; cancellation during one giant probe batch aborts
// without resolving the whole batch.
func TestJoinProbeCancelsWithinGiantBatch(t *testing.T) {
	const n = 1 << 20
	probeSchema := intSchema("rid")
	ctx, cancel := context.WithCancel(context.Background())
	src := &cancelOnNextSource{batch: giantBatch(probeSchema, n), cancel: cancel}
	src.schema = probeSchema

	buildSchema := intSchema("bid")
	var buildRows [][]any
	for i := 0; i < 100; i++ {
		buildRows = append(buildRows, []any{int64(i)})
	}
	// Probe side (left) is the giant cancelling source; the small build
	// side (right) completes before cancellation fires.
	build := NewMemScan(buildSchema, BuildBatches(buildSchema, buildRows, 32))
	j, err := NewHashJoin(src, build,
		[]expr.Expr{expr.Col(0, "rid", types.Int64Type)},
		[]expr.Expr{expr.Col(0, "bid", types.Int64Type)}, InnerJoin)
	if err != nil {
		t.Fatal(err)
	}
	tc := newTC(t)
	tc.Ctx = ctx
	_, err = CollectRows(j, tc)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestFusedRuntimeFilterCancelsWithinGiantBatch: the runtime-filter probe
// operator windows its row probes inside a fused pipeline as well.
func TestFusedRuntimeFilterCancelsWithinGiantBatch(t *testing.T) {
	const n = 1 << 20
	schema := intSchema("k")
	ctx, cancel := context.WithCancel(context.Background())
	src := &cancelOnNextSource{batch: giantBatch(schema, n), cancel: cancel}
	src.schema = schema

	f := rf.NewFilter([]types.DataType{types.Int64Type}, 4)
	build := vector.NewBatch(schema, 3)
	for i, k := range []int64{1, 2, 3} {
		build.Vecs[0].I64[i] = k
	}
	build.NumRows = 3
	var hs rf.HashScratch
	f.Add(build, []int{0}, nil, 3, &hs)

	rfo := NewRuntimeFilter(src, []int{0}, f, 0)
	root := FusePipelines(rfo)
	if _, ok := root.(*PipelineOp); !ok {
		t.Fatalf("expected fused pipeline, got %T", root)
	}
	tc := newTC(t)
	tc.Ctx = ctx
	_, err := CollectRows(root, tc)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}
