package exec

import (
	"fmt"

	"photon/internal/vector"
)

// Fused pipeline execution (§4.3; Flare's loop fusion; Shaikhha et al.'s
// observation that fusion, not push-vs-pull, is what wins): instead of one
// virtual Next() dispatch, stats closure, and batch handoff per operator per
// batch, a maximal run of fusable operators above a pipeline breaker is
// compiled into a single PipelineOp that drives one loop per source batch.
// The selection vector shrinks in place through the run's filters,
// projections feed zero-copy off it, and the consuming breaker (HashAgg's
// update side, HashJoin's probe side, a sort or shuffle write) acts as the
// run's terminal by pulling from the pipeline directly.

// batchProcessor is the contract fused operators implement: the per-batch
// body of Next, detached from the pull loop. processBatch returns the
// operator's output batch (usually its input with a shrunk position list or
// replaced vectors) or nil when the batch was consumed entirely (fully
// filtered). All stats counting happens inside processBatch, so fused and
// unfused execution report identical RowsIn/RowsOut/BatchesOut.
type batchProcessor interface {
	Operator
	processBatch(b *vector.Batch) (*vector.Batch, error)
	// bind attaches the task context without opening the child: the
	// pipeline opens its source exactly once.
	bind(tc *TaskCtx)
	// source returns the operator's input.
	source() Operator
	// closeLocal releases operator-local resources without closing the
	// child.
	closeLocal() error
}

// PipelineOp executes a fused run of operators (Filter, Project,
// RuntimeFilter) over one source as a single loop per batch.
//
// The wrapped operators stay linked as children for the stats walk, and
// PipelineOp hides its own stats node (statsHidden), so pre-order OpStats
// IDs — and therefore distributed EXPLAIN ANALYZE merging — are identical
// to unfused execution. Per-operator wall time is not recorded in fused
// mode — per-batch clock reads are themselves part of the interpretive
// overhead fusion removes; pipeline activity surfaces through the stage
// profile's pipeline[ops= batches= rows=] line instead.
type PipelineOp struct {
	base
	src   Operator
	chain []batchProcessor // outermost (output side) first
}

// newPipeline fuses chain (outermost first) over src.
func newPipeline(chain []batchProcessor, src Operator) *PipelineOp {
	p := &PipelineOp{src: src, chain: chain}
	p.schema = chain[0].Schema()
	p.stats.Name = fmt.Sprintf("Pipeline[%d ops]", len(chain)+1)
	return p
}

// statsHidden hides the pipeline's own stats node from the walk.
func (p *PipelineOp) statsHidden() {}

// children links the fused chain into the stats walk unchanged.
func (p *PipelineOp) children() []any { return []any{p.chain[0]} }

// Open implements Operator: the source opens once; fused operators only
// bind the task context. The source's per-batch timing is switched off —
// inside a pipeline, clock reads per batch are interpretive overhead, and
// fused mode documents per-operator times as unrecorded.
func (p *PipelineOp) Open(tc *TaskCtx) error {
	p.tc = tc
	for _, op := range p.chain {
		op.bind(tc)
	}
	if u, ok := p.src.(interface{ disableTiming() }); ok {
		u.disableTiming()
	}
	return p.src.Open(tc)
}

// Next implements Operator: one fused loop per source batch. Cancellation is
// checked per batch here and every ~64K rows inside the stages' own windowed
// kernels (filter evaluation, runtime-filter probes, hash-table guards), so
// even a single giant batch cancels promptly.
func (p *PipelineOp) Next() (*vector.Batch, error) {
	for {
		if err := p.tc.Cancelled(); err != nil {
			return nil, err
		}
		b, err := p.src.Next()
		if err != nil || b == nil {
			return nil, err
		}
		// Deliberately untimed: per-batch clock reads are exactly the
		// interpretive overhead fusion exists to remove, and the hidden
		// stats node never surfaces a duration anyway.
		for i := len(p.chain) - 1; i >= 0; i-- {
			b, err = p.chain[i].processBatch(b)
			if err != nil || b == nil {
				break
			}
		}
		if err != nil {
			return nil, err
		}
		if b == nil {
			continue // fully filtered: pull the next source batch
		}
		p.stats.RowsOut.Add(int64(b.NumActive()))
		p.stats.BatchesOut.Add(1)
		return b, nil
	}
}

// Close implements Operator.
func (p *PipelineOp) Close() error {
	var first error
	for _, op := range p.chain {
		if err := op.closeLocal(); err != nil && first == nil {
			first = err
		}
	}
	if err := p.src.Close(); err != nil && first == nil {
		first = err
	}
	return first
}

// FusePipelines rewrites an operator tree, compiling every maximal run of
// fusable operators into a PipelineOp. Pipeline breakers — exchanges,
// sorts, limits, aggregation and join builds — keep their place and have
// their inputs fused recursively, which makes HashAgg's update side and
// HashJoin's probe side the terminals of the pipelines feeding them.
func FusePipelines(root Operator) Operator {
	if root == nil {
		return nil
	}
	var chain []batchProcessor
	cur := root
	for {
		bp, ok := cur.(batchProcessor)
		if !ok {
			break
		}
		chain = append(chain, bp)
		cur = bp.source()
	}
	if rw, ok := cur.(childRewriter); ok {
		rw.rewriteChildren(FusePipelines)
	}
	if len(chain) == 0 {
		return cur
	}
	return newPipeline(chain, cur)
}

// childRewriter lets the fusion pass rewrite a pipeline breaker's inputs in
// place, preserving the node (and its stats identity) itself.
type childRewriter interface {
	rewriteChildren(func(Operator) Operator)
}

func (op *HashAggOp) rewriteChildren(f func(Operator) Operator) { op.child = f(op.child) }
func (op *HashJoinOp) rewriteChildren(f func(Operator) Operator) {
	op.left = f(op.left)
	op.right = f(op.right)
}
func (s *SortOp) rewriteChildren(f func(Operator) Operator)         { s.child = f(s.child) }
func (t *TopKOp) rewriteChildren(f func(Operator) Operator)         { t.child = f(t.child) }
func (l *LimitOp) rewriteChildren(f func(Operator) Operator)        { l.child = f(l.child) }
func (s *ShuffleWriteOp) rewriteChildren(f func(Operator) Operator) { s.child = f(s.child) }
func (op *RuntimeFilterBuildOp) rewriteChildren(f func(Operator) Operator) {
	op.child = f(op.child)
}

// PipelineInfo summarizes one fused pipeline's execution for the stage
// profile's pipeline[...] line.
type PipelineInfo struct {
	Ops     int   // fused operators, including the source
	Batches int64 // batches the pipeline emitted
	Rows    int64 // rows the pipeline emitted
}

// CollectPipelines gathers fused-pipeline summaries reachable from root
// (an Operator or a mixed plan node).
func CollectPipelines(root any) []PipelineInfo {
	var out []PipelineInfo
	var walk func(n any)
	walk = func(n any) {
		if p, ok := n.(*PipelineOp); ok {
			out = append(out, PipelineInfo{
				Ops:     len(p.chain) + 1,
				Batches: p.stats.BatchesOut.Load(),
				Rows:    p.stats.RowsOut.Load(),
			})
		}
		if sc, ok := n.(statsChild); ok {
			for _, c := range sc.children() {
				walk(c)
			}
		}
	}
	walk(root)
	return out
}
