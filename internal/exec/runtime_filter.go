package exec

import (
	"fmt"

	"photon/internal/rf"
	"photon/internal/vector"
)

// RuntimeFilterOp drops probe-side rows that cannot match any build-side
// join key, using a runtime filter published by the join's build stage
// (ISSUE: level-2 pre-shuffle and level-3 pre-probe filtering). Like
// FilterOp it only shrinks each batch's position list — data vectors are
// untouched, and Bloom false positives merely pass extra rows, so the
// operator is semantics-free by construction.
type RuntimeFilterOp struct {
	base
	child  Operator
	keys   []int      // child-schema ordinals of the join key columns
	filter *rf.Filter // nil or unusable = pass-through
	hs     rf.HashScratch
	selA   []int32
	selB   []int32
	selAcc []int32
	winSel []int32
}

// NewRuntimeFilter builds a runtime-filter operator over child. producer is
// the fragment ID of the build stage that published the filter (display
// only). filter may be nil: the operator then forwards batches unchanged.
func NewRuntimeFilter(child Operator, keys []int, filter *rf.Filter, producer int) *RuntimeFilterOp {
	op := &RuntimeFilterOp{child: child, keys: keys, filter: filter}
	op.schema = child.Schema()
	op.stats.Name = fmt.Sprintf("RuntimeFilter(stage=%d)", producer)
	return op
}

// Open implements Operator.
func (op *RuntimeFilterOp) Open(tc *TaskCtx) error {
	op.tc = tc
	return op.child.Open(tc)
}

// Next implements Operator.
func (op *RuntimeFilterOp) Next() (*vector.Batch, error) {
	for {
		if err := op.tc.Cancelled(); err != nil {
			return nil, err
		}
		b, err := op.child.Next()
		if err != nil || b == nil {
			return nil, err
		}
		var out *vector.Batch
		err = op.timed(func() error {
			var err error
			out, err = op.processBatch(b)
			return err
		})
		if err != nil {
			return nil, err
		}
		if out != nil {
			return out, nil
		}
	}
}

// processBatch probes one batch through the runtime filter, shrinking its
// position list; nil output means every row was pruned. Shared by the pull
// path and fused pipelines — all stats counting lives here.
func (op *RuntimeFilterOp) processBatch(b *vector.Batch) (*vector.Batch, error) {
	op.stats.RowsIn.Add(int64(b.NumActive()))
	anyCol := false
	if op.filter.Usable() {
		for _, c := range op.filter.Cols {
			if c != nil {
				anyCol = true
				break
			}
		}
	}
	if !anyCol {
		// Unusable filter or no usable column filter: pass through.
		op.stats.RowsOut.Add(int64(b.NumActive()))
		op.stats.BatchesOut.Add(1)
		return b, nil
	}
	active := b.NumActive()
	var sel []int32
	if active <= cancelCheckRows {
		sel = op.probeRows(b, b.Sel)
	} else {
		// Giant batch: probe in windows with a cancellation check between
		// windows, accumulating the survivors.
		acc := op.selAcc[:0]
		savedSel := b.Sel
		for lo := 0; lo < active; lo += cancelCheckRows {
			if err := op.tc.Cancelled(); err != nil {
				return nil, err
			}
			hi := min(lo+cancelCheckRows, active)
			acc = append(acc, op.probeRows(b, op.window(savedSel, lo, hi))...)
		}
		op.selAcc = acc
		sel = acc
	}
	if len(sel) == 0 {
		return nil, nil // whole batch pruned
	}
	b.SetSel(sel)
	op.stats.RowsOut.Add(int64(b.NumActive()))
	op.stats.BatchesOut.Add(1)
	return b, nil
}

// probeRows runs every usable column filter over one selection window,
// returning the surviving rows (the result aliases op.selA/op.selB).
func (op *RuntimeFilterOp) probeRows(b *vector.Batch, sel []int32) []int32 {
	useA, first := true, true
	for k, col := range op.keys {
		c := op.filter.Cols[k]
		if c == nil {
			continue // unsupported key type: this column passes all
		}
		if !first && len(sel) == 0 {
			break
		}
		// Alternate output buffers: ProbeVec resets its out slice, so it
		// must never be handed the slice it is reading sel from.
		buf := op.selB
		if useA {
			buf = op.selA
		}
		res := c.ProbeVec(b.Vecs[col], sel, b.NumRows, &op.hs, buf)
		if useA {
			op.selA = res
		} else {
			op.selB = res
		}
		sel, useA, first = res, !useA, false
	}
	return sel
}

// window returns a selection for active rows [lo, hi).
func (op *RuntimeFilterOp) window(sel []int32, lo, hi int) []int32 {
	if sel != nil {
		return sel[lo:hi]
	}
	if cap(op.winSel) < hi-lo {
		op.winSel = make([]int32, hi-lo)
	}
	w := op.winSel[:hi-lo]
	for i := range w {
		w[i] = int32(lo + i)
	}
	return w
}

// bind attaches the task context without opening the child (fused path).
func (op *RuntimeFilterOp) bind(tc *TaskCtx) { op.tc = tc }

// source returns the operator's input (fused path).
func (op *RuntimeFilterOp) source() Operator { return op.child }

// closeLocal releases operator-local resources (fused path; none to free).
func (op *RuntimeFilterOp) closeLocal() error { return nil }

// Close implements Operator.
func (op *RuntimeFilterOp) Close() error { return op.child.Close() }

// RuntimeFilterBuildOp is a pass-through tap on a join build stage's output:
// every batch flowing to the shuffle/broadcast writer is also folded into a
// runtime filter, which the driver publishes when the stage's tasks finish.
// Rows are folded in windows of cancelCheckRows with a cancellation check
// between windows, so a giant single-batch build cancels promptly.
type RuntimeFilterBuildOp struct {
	base
	child  Operator
	keys   []int // child-schema ordinals of the join key columns
	filter *rf.Filter
	hs     rf.HashScratch
	winSel []int32
}

// NewRuntimeFilterBuild taps child's batches into filter over the given key
// columns.
func NewRuntimeFilterBuild(child Operator, keys []int, filter *rf.Filter) *RuntimeFilterBuildOp {
	op := &RuntimeFilterBuildOp{child: child, keys: keys, filter: filter}
	op.schema = child.Schema()
	op.stats.Name = "RuntimeFilterBuild"
	return op
}

// Filter returns the filter being built (complete once the stage drains).
func (op *RuntimeFilterBuildOp) Filter() *rf.Filter { return op.filter }

// Open implements Operator.
func (op *RuntimeFilterBuildOp) Open(tc *TaskCtx) error {
	op.tc = tc
	return op.child.Open(tc)
}

// Next implements Operator.
func (op *RuntimeFilterBuildOp) Next() (*vector.Batch, error) {
	b, err := op.child.Next()
	if err != nil || b == nil {
		return nil, err
	}
	err = op.timed(func() error {
		n := int64(b.NumActive())
		op.stats.RowsIn.Add(n)
		if err := op.fold(b); err != nil {
			return err
		}
		op.stats.RowsOut.Add(n)
		op.stats.BatchesOut.Add(1)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return b, nil
}

// fold adds b's active rows to the filter in cancellation-checked windows.
func (op *RuntimeFilterBuildOp) fold(b *vector.Batch) error {
	active := b.NumActive()
	if active <= cancelCheckRows {
		if err := op.tc.Cancelled(); err != nil {
			return err
		}
		op.filter.Add(b, op.keys, b.Sel, b.NumRows, &op.hs)
		return nil
	}
	for lo := 0; lo < active; lo += cancelCheckRows {
		if err := op.tc.Cancelled(); err != nil {
			return err
		}
		hi := min(lo+cancelCheckRows, active)
		op.filter.Add(b, op.keys, op.window(b.Sel, lo, hi), b.NumRows, &op.hs)
	}
	return nil
}

// window returns a selection for active rows [lo, hi).
func (op *RuntimeFilterBuildOp) window(sel []int32, lo, hi int) []int32 {
	if sel != nil {
		return sel[lo:hi]
	}
	if cap(op.winSel) < hi-lo {
		op.winSel = make([]int32, hi-lo)
	}
	w := op.winSel[:hi-lo]
	for i := range w {
		w[i] = int32(lo + i)
	}
	return w
}

// Close implements Operator.
func (op *RuntimeFilterBuildOp) Close() error { return op.child.Close() }
