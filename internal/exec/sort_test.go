package exec

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"photon/internal/mem"
	"photon/internal/types"
)

func TestSortBasic(t *testing.T) {
	schema := intSchema("a", "b")
	rows := [][]any{
		{int64(3), int64(30)},
		{int64(1), int64(10)},
		{nil, int64(99)},
		{int64(2), int64(20)},
	}
	scan := NewMemScan(schema, BuildBatches(schema, rows, 64))
	s := NewSort(scan, []SortKey{{Col: 0}})
	got, err := CollectRows(s, newTC(t))
	if err != nil {
		t.Fatal(err)
	}
	// NULLs first ascending.
	want := [][]any{
		{nil, int64(99)},
		{int64(1), int64(10)},
		{int64(2), int64(20)},
		{int64(3), int64(30)},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("sort asc: %v", got)
	}
	scan2 := NewMemScan(schema, BuildBatches(schema, rows, 64))
	s2 := NewSort(scan2, []SortKey{{Col: 0, Desc: true}})
	got, err = CollectRows(s2, newTC(t))
	if err != nil {
		t.Fatal(err)
	}
	if got[0][0].(int64) != 3 || got[3][0] != nil {
		t.Errorf("sort desc: %v", got)
	}
}

func TestSortMultiKeyStrings(t *testing.T) {
	schema := types.NewSchema(
		types.Field{Name: "s", Type: types.StringType},
		types.Field{Name: "n", Type: types.Int64Type},
	)
	rows := [][]any{
		{"b", int64(2)}, {"a", int64(9)}, {"b", int64(1)}, {"a", int64(3)},
	}
	scan := NewMemScan(schema, BuildBatches(schema, rows, 64))
	s := NewSort(scan, []SortKey{{Col: 0}, {Col: 1, Desc: true}})
	got, err := CollectRows(s, newTC(t))
	if err != nil {
		t.Fatal(err)
	}
	want := [][]any{
		{"a", int64(9)}, {"a", int64(3)}, {"b", int64(2)}, {"b", int64(1)},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("multi-key sort: %v", got)
	}
}

func TestExternalSortMatchesInMemory(t *testing.T) {
	schema := intSchema("v")
	rng := rand.New(rand.NewSource(3))
	var rows [][]any
	for i := 0; i < 8000; i++ {
		rows = append(rows, []any{rng.Int63n(10_000)})
	}
	run := func(limit int64) ([][]any, *SortOp) {
		scan := NewMemScan(schema, BuildBatches(schema, rows, 64))
		s := NewSort(scan, []SortKey{{Col: 0}})
		tc := NewTaskCtx(mem.NewManager(limit), 64)
		tc.SpillDir = t.TempDir()
		out, err := CollectRows(s, tc)
		if err != nil {
			t.Fatal(err)
		}
		return out, s
	}
	want, _ := run(0)
	got, s := run(16 << 10)
	if s.Stats().SpillCount.Load() == 0 {
		t.Fatal("expected external sort to spill under 16KB")
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("external sort differs from in-memory sort")
	}
	// And both are actually sorted permutations of the input.
	if !sort.SliceIsSorted(got, func(i, j int) bool {
		return got[i][0].(int64) < got[j][0].(int64)
	}) {
		t.Error("output not sorted")
	}
	if len(got) != len(rows) {
		t.Errorf("row count %d != %d", len(got), len(rows))
	}
}

func TestTopK(t *testing.T) {
	schema := intSchema("v")
	var rows [][]any
	for i := 0; i < 1000; i++ {
		rows = append(rows, []any{int64((i * 7919) % 1000)})
	}
	scan := NewMemScan(schema, BuildBatches(schema, rows, 64))
	tk, err := NewTopK(scan, []SortKey{{Col: 0}}, 5)
	if err != nil {
		t.Fatal(err)
	}
	got, err := CollectRows(tk, newTC(t))
	if err != nil {
		t.Fatal(err)
	}
	want := [][]any{{int64(0)}, {int64(1)}, {int64(2)}, {int64(3)}, {int64(4)}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("topk: %v", got)
	}
	// Desc order takes the largest.
	scan2 := NewMemScan(schema, BuildBatches(schema, rows, 64))
	tk2, _ := NewTopK(scan2, []SortKey{{Col: 0, Desc: true}}, 3)
	got, err = CollectRows(tk2, newTC(t))
	if err != nil {
		t.Fatal(err)
	}
	if got[0][0].(int64) != 999 || got[2][0].(int64) != 997 {
		t.Errorf("topk desc: %v", got)
	}
}

func TestTopKMatchesSortLimit(t *testing.T) {
	schema := types.NewSchema(
		types.Field{Name: "s", Type: types.StringType, Nullable: true},
	)
	rng := rand.New(rand.NewSource(11))
	var rows [][]any
	for i := 0; i < 500; i++ {
		if rng.Intn(20) == 0 {
			rows = append(rows, []any{nil})
		} else {
			b := make([]byte, 1+rng.Intn(8))
			for j := range b {
				b[j] = byte('a' + rng.Intn(26))
			}
			rows = append(rows, []any{string(b)})
		}
	}
	keys := []SortKey{{Col: 0}}
	scan1 := NewMemScan(schema, BuildBatches(schema, rows, 64))
	tk, _ := NewTopK(scan1, keys, 20)
	gotTK, err := CollectRows(tk, newTC(t))
	if err != nil {
		t.Fatal(err)
	}
	scan2 := NewMemScan(schema, BuildBatches(schema, rows, 64))
	sl := NewLimit(NewSort(scan2, keys), 20)
	gotSL, err := CollectRows(sl, newTC(t))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotTK, gotSL) {
		t.Errorf("TopK != Sort+Limit:\n%v\n%v", gotTK, gotSL)
	}
}

func TestLimit(t *testing.T) {
	schema := intSchema("v")
	var rows [][]any
	for i := 0; i < 100; i++ {
		rows = append(rows, []any{int64(i)})
	}
	scan := NewMemScan(schema, BuildBatches(schema, rows, 16))
	got, err := CollectRows(NewLimit(scan, 37), newTC(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 37 {
		t.Errorf("limit rows = %d", len(got))
	}
	if got[36][0].(int64) != 36 {
		t.Errorf("last row = %v", got[36])
	}
	// Limit larger than input passes everything.
	scan2 := NewMemScan(schema, BuildBatches(schema, rows, 16))
	got, err = CollectRows(NewLimit(scan2, 1000), newTC(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 {
		t.Errorf("limit > input: %d", len(got))
	}
}

type sliceRows struct {
	schema *types.Schema
	rows   [][]any
	pos    int
}

func (s *sliceRows) Schema() *types.Schema { return s.schema }
func (s *sliceRows) Open() error           { s.pos = 0; return nil }
func (s *sliceRows) Close() error          { return nil }
func (s *sliceRows) NextRow() ([]any, error) {
	if s.pos >= len(s.rows) {
		return nil, nil
	}
	r := s.rows[s.pos]
	s.pos++
	return r, nil
}

func TestAdapterAndTransitionRoundTrip(t *testing.T) {
	schema := intSchema("a", "b")
	var rows [][]any
	for i := 0; i < 300; i++ {
		rows = append(rows, []any{int64(i), int64(i * i)})
	}
	// rows -> Adapter -> Photon filter -> Transition -> rows
	tc := newTC(t)
	ad := NewAdapter(&sliceRows{schema: schema, rows: rows})
	tr := NewTransition(ad, tc)
	if err := tr.Open(); err != nil {
		t.Fatal(err)
	}
	var got [][]any
	for {
		r, err := tr.NextRow()
		if err != nil {
			t.Fatal(err)
		}
		if r == nil {
			break
		}
		got = append(got, append([]any(nil), r...))
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, rows) {
		t.Errorf("adapter/transition round trip mismatch: %d rows", len(got))
	}
	// Boundary crossings are amortized per batch, not per row (§6.3).
	if ad.Calls > 10 {
		t.Errorf("adapter boundary calls = %d for %d rows (expected per-batch)", ad.Calls, len(rows))
	}
}
