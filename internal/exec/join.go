package exec

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"

	"photon/internal/expr"
	"photon/internal/ht"
	"photon/internal/kernels"
	"photon/internal/mem"
	"photon/internal/serde"
	"photon/internal/types"
	"photon/internal/vector"
)

// JoinType selects the join semantics. The left child is always the probe
// side and the right child the build side.
type JoinType uint8

// Join types.
const (
	InnerJoin JoinType = iota
	LeftOuterJoin
	LeftSemiJoin
	LeftAntiJoin
)

func (jt JoinType) String() string {
	return [...]string{"Inner", "LeftOuter", "LeftSemi", "LeftAnti"}[jt]
}

// HashJoinOp is Photon's vectorized hash join (§4.4). The build side is
// consumed into the vectorized hash table with entries stored as rows (key
// columns + the full build row as payload); probing proceeds hash → batch
// candidate loads → column-wise compare, with the batched loads providing
// the memory-level parallelism responsible for most of the join speedup.
//
// Two adaptive behaviours from §4.6 are implemented:
//   - sparse probe batches are compacted (gathered dense) before probing
//     when sparsity exceeds the task's threshold (Fig. 9);
//   - on memory pressure the join degrades to a grace join, hash-partitioning
//     both sides to disk and joining partition-at-a-time (§5.3 spilling).
type HashJoinOp struct {
	base
	left, right Operator
	leftKeys    []expr.Expr
	rightKeys   []expr.Expr
	joinType    JoinType

	keyTypes   []types.DataType
	buildTypes []types.DataType
	buildOffs  []int
	payloadW   int

	tbl      *ht.Table
	consumer *mem.FuncConsumer
	reserved int64

	// Grace-join state.
	graced      bool
	merging     bool
	buildFiles  []*os.File
	buildWs     []*serde.Writer
	probeFiles  []*os.File
	probeWs     []*serde.Writer
	curPart     int
	partProbeRd *serde.Reader
	partProbeB  *vector.Batch

	// Filter-mode probe (§4.3/§4.6): when every build key is unique (the
	// common primary-key join), the join behaves like a filter — the output
	// shares the probe batch's vectors, gains gathered build columns, and
	// carries a shrunken position list. Sparsity thus propagates to
	// downstream probes, which is exactly the scenario Fig. 9's adaptive
	// compaction addresses. Semi/anti joins always use filter mode.
	uniqueKeys bool
	fmOut      *vector.Batch
	fmBuild    []*vector.Vector
	fmSel      []int32
	fmAcc      *vector.Batch // coalescing compaction accumulator
	fmStash    *vector.Batch // dense batch deferred while flushing fmAcc
	fmEOF      bool

	// Probe iteration state.
	built      bool
	probeBatch *vector.Batch
	probeSel   []int32 // active, non-null-key probe rows with their chain state
	probePos   int     // index into probeSel
	chain      []int32 // current chain entry per physical probe row
	matchedAny []bool  // per physical probe row: matched at least once
	hashes     []uint64
	rowIDs     []int32
	keyVecs    []*vector.Vector
	keyOwned   []bool
	nullSel    []int32 // probe rows with a NULL key (for anti/outer)
	nullPos    int

	compacted       *vector.Batch // private gather target for adaptive compaction
	lanes           laneScratch
	insertedScratch []bool
	winSel          []int32 // synthetic selection for chunked giant-batch builds

	out *vector.Batch
}

// NewHashJoin builds a hash join; key lists must be type-aligned.
func NewHashJoin(left, right Operator, leftKeys, rightKeys []expr.Expr, jt JoinType) (*HashJoinOp, error) {
	if len(leftKeys) != len(rightKeys) || len(leftKeys) == 0 {
		return nil, fmt.Errorf("exec: join requires matching, non-empty key lists")
	}
	op := &HashJoinOp{left: left, right: right, leftKeys: leftKeys, rightKeys: rightKeys, joinType: jt}
	op.stats.Name = fmt.Sprintf("HashJoin(%v)", jt)
	for i := range leftKeys {
		lt, rt := leftKeys[i].Type(), rightKeys[i].Type()
		if lt.ID != rt.ID {
			return nil, fmt.Errorf("exec: join key %d type mismatch: %v vs %v", i, lt, rt)
		}
		op.keyTypes = append(op.keyTypes, rt)
	}
	// Payload layout: every build-side column as a row slot.
	off := 0
	for _, f := range right.Schema().Fields {
		op.buildTypes = append(op.buildTypes, f.Type)
		op.buildOffs = append(op.buildOffs, off)
		w := f.Type.FixedWidth()
		if w == 0 {
			w = 8
		}
		off += 1 + w
	}
	op.payloadW = off

	switch jt {
	case LeftSemiJoin, LeftAntiJoin:
		op.schema = left.Schema()
	default:
		// Right columns become nullable under LeftOuter.
		fields := append([]types.Field(nil), left.Schema().Fields...)
		for _, f := range right.Schema().Fields {
			nf := f
			if jt == LeftOuterJoin {
				nf.Nullable = true
			}
			fields = append(fields, nf)
		}
		op.schema = &types.Schema{Fields: fields}
	}
	return op, nil
}

// Open implements Operator.
func (op *HashJoinOp) Open(tc *TaskCtx) error {
	op.tc = tc
	op.tbl = ht.New(op.keyTypes, op.payloadW)
	op.tbl.Guard = tc.Cancelled
	op.consumer = &mem.FuncConsumer{ConsumerName: op.stats.Name, SpillFunc: op.spillBuild}
	op.built = false
	op.graced = false
	op.curPart = 0
	n := tc.Pool.BatchSize()
	op.hashes = make([]uint64, n)
	op.rowIDs = make([]int32, n)
	op.chain = make([]int32, n)
	op.matchedAny = make([]bool, n)
	op.keyVecs = make([]*vector.Vector, len(op.keyTypes))
	op.keyOwned = make([]bool, len(op.keyTypes))
	// fmSel must be non-nil even when empty: a nil position list means
	// "all rows active", the opposite of an empty selection.
	op.fmSel = make([]int32, 0, n)
	if err := op.left.Open(tc); err != nil {
		return err
	}
	return op.right.Open(tc)
}

// evalKeys evaluates the given key expressions over b into op.keyVecs.
func (op *HashJoinOp) evalKeys(keys []expr.Expr, b *vector.Batch) error {
	for c, k := range keys {
		v, err := k.Eval(op.tc.Expr, b)
		if err != nil {
			return err
		}
		_, isCol := k.(*expr.ColRef)
		op.keyVecs[c] = v
		op.keyOwned[c] = !isCol
	}
	return nil
}

func (op *HashJoinOp) releaseKeys() {
	for c, v := range op.keyVecs {
		if v != nil && op.keyOwned[c] {
			op.tc.Expr.Put(v)
		}
		op.keyVecs[c] = nil
	}
}

// ensureCap grows scratch arrays to batch capacity cap.
func (op *HashJoinOp) ensureCap(n int) {
	if len(op.hashes) < n {
		op.hashes = make([]uint64, n)
		op.rowIDs = make([]int32, n)
		op.chain = make([]int32, n)
		op.matchedAny = make([]bool, n)
	}
}

// build consumes the build (right) side.
func (op *HashJoinOp) build() error {
	for {
		// Batch-boundary cancellation check (join build side).
		if err := op.tc.Cancelled(); err != nil {
			return err
		}
		b, err := op.right.Next()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		op.stats.RowsIn.Add(int64(b.NumActive()))
		if op.graced {
			if err := op.partitionBuildBatch(b); err != nil {
				return err
			}
			continue
		}
		if err := op.insertBuildBatch(b, op.tbl); err != nil {
			return err
		}
		// Reservation phase: may trigger our own spillBuild, flipping to
		// grace mode.
		want := op.tbl.MemoryUsage()
		if want > op.reserved {
			if err := op.tc.Mem.Reserve(op.consumer, want-op.reserved); err != nil {
				return err
			}
			if !op.graced {
				op.reserved = want
			}
			op.stats.observePeak(want)
		}
	}
	if op.graced {
		for _, w := range op.buildWs {
			if err := w.Close(); err != nil {
				return err
			}
		}
	}
	return nil
}

// cancelCheckRows bounds how many rows a long-running build loop processes
// between TaskCtx cancellation checks, so even a single giant batch cancels
// promptly (ROADMAP: cancellation inside long-running loops).
const cancelCheckRows = 64 << 10

// insertBuildBatch inserts one batch into tbl (keys + payload columns).
// Batches larger than cancelCheckRows are inserted in windows with a
// cancellation check between windows.
func (op *HashJoinOp) insertBuildBatch(b *vector.Batch, tbl *ht.Table) error {
	n := b.NumRows
	op.ensureCap(n)
	op.tc.Expr.ResetPerBatch()
	if err := op.evalKeys(op.rightKeys, b); err != nil {
		return err
	}
	defer op.releaseKeys()
	// Build rows with NULL keys can never match an equi-join; skip them.
	sel := op.nonNullKeySel(b, nil)
	hashKeyVectorsScratch(op.keyVecs, sel, n, op.hashes, &op.lanes)
	if cap(op.insertedScratch) < n {
		op.insertedScratch = make([]bool, n)
	}
	active := n
	if sel != nil {
		active = len(sel)
	}
	if active <= cancelCheckRows {
		return op.insertBuildRows(b, tbl, sel, n)
	}
	for lo := 0; lo < active; lo += cancelCheckRows {
		if err := op.tc.Cancelled(); err != nil {
			return err
		}
		hi := min(lo+cancelCheckRows, active)
		if err := op.insertBuildRows(b, tbl, op.windowSel(sel, lo, hi), n); err != nil {
			return err
		}
	}
	return nil
}

// windowSel returns a selection covering active rows [lo, hi): a reslice of
// sel when one exists, else a synthetic run of physical row indexes.
func (op *HashJoinOp) windowSel(sel []int32, lo, hi int) []int32 {
	if sel != nil {
		return sel[lo:hi]
	}
	if cap(op.winSel) < hi-lo {
		op.winSel = make([]int32, hi-lo)
	}
	w := op.winSel[:hi-lo]
	for i := range w {
		w[i] = int32(lo + i)
	}
	return w
}

// insertBuildRows inserts the sel window of an already-hashed batch.
func (op *HashJoinOp) insertBuildRows(b *vector.Batch, tbl *ht.Table, sel []int32, n int) error {
	inserted := op.insertedScratch[:n]
	if err := tbl.InsertDup(op.keyVecs, op.hashes, sel, n, op.rowIDs, inserted); err != nil {
		return err
	}
	// Encode payload (full build row) for each inserted entry.
	encode := func(i int32) {
		p := tbl.PayloadBytes(op.rowIDs[i])
		for c, v := range b.Vecs {
			encodeSlot(p[op.buildOffs[c]:], v, int(i), tbl)
		}
	}
	if sel == nil {
		for i := 0; i < n; i++ {
			encode(int32(i))
		}
	} else {
		for _, i := range sel {
			encode(i)
		}
	}
	return nil
}

// nonNullKeySel returns the subset of b's active rows whose key vectors are
// all non-NULL (nil when nothing was filtered), appending NULL-key rows to
// op.nullSel when collectNull is set.
func (op *HashJoinOp) nonNullKeySel(b *vector.Batch, collectNull *[]int32) []int32 {
	anyNulls := false
	for _, v := range op.keyVecs {
		if v.HasNulls() {
			anyNulls = true
			break
		}
	}
	if !anyNulls {
		return b.Sel
	}
	out := make([]int32, 0, b.NumActive())
	apply(b.Sel, b.NumRows, func(i int32) {
		for _, v := range op.keyVecs {
			if v.Nulls[i] != 0 {
				if collectNull != nil {
					*collectNull = append(*collectNull, i)
				}
				return
			}
		}
		out = append(out, i)
	})
	return out
}

// encodeSlot writes v[i] into a (null byte + value) row slot, spilling
// var-len bytes to the table heap.
func encodeSlot(slot []byte, v *vector.Vector, i int, tbl *ht.Table) {
	if v.Nulls[i] != 0 {
		slot[0] = 1
		return
	}
	slot[0] = 0
	dst := slot[1:]
	switch v.Type.ID {
	case types.Bool:
		dst[0] = v.Bool[i]
	case types.Int32, types.Date:
		binary.LittleEndian.PutUint32(dst, uint32(v.I32[i]))
	case types.Int64, types.Timestamp:
		binary.LittleEndian.PutUint64(dst, uint64(v.I64[i]))
	case types.Float64:
		binary.LittleEndian.PutUint64(dst, math.Float64bits(v.F64[i]))
	case types.Decimal:
		binary.LittleEndian.PutUint64(dst, v.Dec[i].Lo)
		binary.LittleEndian.PutUint64(dst[8:], uint64(v.Dec[i].Hi))
	case types.String:
		off, ln := tbl.AppendHeap(v.Str[i])
		binary.LittleEndian.PutUint32(dst, off)
		binary.LittleEndian.PutUint32(dst[4:], ln)
	}
}

// decodeSlot reads a row slot into v[i].
func decodeSlot(slot []byte, t types.DataType, v *vector.Vector, i int, tbl *ht.Table) {
	if slot[0] != 0 {
		v.SetNull(i)
		return
	}
	v.Nulls[i] = 0
	src := slot[1:]
	switch t.ID {
	case types.Bool:
		v.Bool[i] = src[0]
	case types.Int32, types.Date:
		v.I32[i] = int32(binary.LittleEndian.Uint32(src))
	case types.Int64, types.Timestamp:
		v.I64[i] = int64(binary.LittleEndian.Uint64(src))
	case types.Float64:
		v.F64[i] = math.Float64frombits(binary.LittleEndian.Uint64(src))
	case types.Decimal:
		v.Dec[i] = types.Decimal128{
			Lo: binary.LittleEndian.Uint64(src),
			Hi: int64(binary.LittleEndian.Uint64(src[8:])),
		}
	case types.String:
		off := binary.LittleEndian.Uint32(src)
		ln := binary.LittleEndian.Uint32(src[4:])
		v.Str[i] = tbl.HeapBytes(off, ln)
	}
}

const gracePartitions = 16

// spillBuild is the memory-consumer callback: dump the current table's rows
// to hash partitions and switch to grace mode.
func (op *HashJoinOp) spillBuild(need int64) (int64, error) {
	if op.merging || op.graced || op.tc.SpillDir == "" {
		return 0, nil
	}
	if err := op.openPartFiles(&op.buildFiles, &op.buildWs, "join-build"); err != nil {
		return 0, err
	}
	// Decode every stored row (heads and duplicates) back into batches.
	rs := op.right.Schema()
	batches := make([]*vector.Batch, gracePartitions)
	for p := range batches {
		batches[p] = vector.NewBatch(rs, op.tc.Pool.BatchSize())
	}
	hashes := op.tbl.RowHashes()
	for row := 0; row < op.tbl.NumRows(); row++ {
		p := int(kernels.Mix64(hashes[row]) % gracePartitions)
		b := batches[p]
		i := b.NumRows
		pay := op.tbl.PayloadBytes(int32(row))
		for c, t := range op.buildTypes {
			decodeSlot(pay[op.buildOffs[c]:], t, b.Vecs[c], i, op.tbl)
		}
		b.NumRows++
		if b.NumRows == b.Capacity() {
			if err := op.buildWs[p].WriteBatch(b); err != nil {
				return 0, err
			}
			b.Reset()
		}
	}
	for p, b := range batches {
		if b.NumRows > 0 {
			if err := op.buildWs[p].WriteBatch(b); err != nil {
				return 0, err
			}
		}
	}
	freed := op.reserved
	op.tc.Mem.Release(op.consumer, op.reserved)
	op.reserved = 0
	op.tbl = ht.New(op.keyTypes, op.payloadW)
	op.tbl.Guard = op.tc.Cancelled
	op.graced = true
	op.stats.SpillCount.Add(1)
	op.stats.SpillBytes.Add(freed)
	return freed, nil
}

func (op *HashJoinOp) openPartFiles(files *[]*os.File, ws *[]*serde.Writer, prefix string) error {
	if *files != nil {
		return nil
	}
	*files = make([]*os.File, gracePartitions)
	*ws = make([]*serde.Writer, gracePartitions)
	for p := 0; p < gracePartitions; p++ {
		f, err := op.tc.NewSpillFile(fmt.Sprintf("%s-p%d", prefix, p))
		if err != nil {
			return err
		}
		(*files)[p] = f
		(*ws)[p] = serde.NewWriter(f)
	}
	return nil
}

// partitionBuildBatch routes a build batch to partition files (grace mode).
func (op *HashJoinOp) partitionBuildBatch(b *vector.Batch) error {
	op.tc.Expr.ResetPerBatch()
	if err := op.evalKeys(op.rightKeys, b); err != nil {
		return err
	}
	defer op.releaseKeys()
	sel := op.nonNullKeySel(b, nil)
	return op.partitionOut(b, sel, op.buildWs)
}

// partitionOut hashes key vectors and appends each active row to its
// partition's writer.
func (op *HashJoinOp) partitionOut(b *vector.Batch, sel []int32, ws []*serde.Writer) error {
	n := b.NumRows
	op.ensureCap(n)
	hashKeyVectorsScratch(op.keyVecs, sel, n, op.hashes, &op.lanes)
	// Build per-partition position lists, then write each subset.
	parts := make([][]int32, gracePartitions)
	apply(sel, n, func(i int32) {
		p := int(kernels.Mix64(op.hashes[i]) % gracePartitions)
		parts[p] = append(parts[p], i)
	})
	savedSel, savedN := b.Sel, b.NumRows
	defer func() { b.Sel, b.NumRows = savedSel, savedN }()
	for p, rows := range parts {
		if len(rows) == 0 {
			continue
		}
		b.Sel = rows
		if err := ws[p].WriteBatch(b); err != nil {
			return err
		}
	}
	return nil
}
