package exec

import (
	"fmt"
	"strings"
)

// Per-operator metrics are the vectorized model's observability story
// (§3.3): operator boundaries survive execution, so every operator reports
// rows, batches, time, spills, and peak memory — "the primary interface to
// debugging performance issues in customer workloads". WalkStats collects
// the live tree; RenderStats formats it like a query profile.

// statsChild exposes operator children for stats walking without widening
// the Operator interface.
type statsChild interface{ children() []Operator }

func (f *FilterOp) children() []Operator   { return []Operator{f.child} }
func (p *ProjectOp) children() []Operator  { return []Operator{p.child} }
func (op *HashAggOp) children() []Operator { return []Operator{op.child} }
func (op *HashJoinOp) children() []Operator {
	return []Operator{op.left, op.right}
}
func (s *SortOp) children() []Operator  { return []Operator{s.child} }
func (t *TopKOp) children() []Operator  { return []Operator{t.child} }
func (l *LimitOp) children() []Operator { return []Operator{l.child} }

// WalkStats visits every operator in the tree with its depth.
func WalkStats(op Operator, visit func(op Operator, depth int)) {
	var walk func(o Operator, d int)
	walk = func(o Operator, d int) {
		visit(o, d)
		if sc, ok := o.(statsChild); ok {
			for _, c := range sc.children() {
				walk(c, d+1)
			}
		}
	}
	walk(op, 0)
}

// RenderStats formats the operator tree's live metrics.
func RenderStats(op Operator) string {
	var sb strings.Builder
	WalkStats(op, func(o Operator, depth int) {
		s := o.Stats()
		fmt.Fprintf(&sb, "%s%s\n", strings.Repeat("  ", depth), s.String())
	})
	return sb.String()
}
