package exec

import (
	"fmt"
	"strings"
)

// Per-operator metrics are the vectorized model's observability story
// (§3.3): operator boundaries survive execution, so every operator reports
// rows, batches, time, spills, and peak memory — "the primary interface to
// debugging performance issues in customer workloads". WalkStats collects
// the live tree; RenderStats formats it like a query profile.

// statsNode is any node carrying operator metrics. Both Photon operators
// and the row-boundary TransitionOp (a RowIterator, not an Operator)
// qualify, so the stats walk can cross engine boundaries.
type statsNode interface{ Stats() *OpStats }

// statsChild exposes node children for stats walking without widening the
// Operator interface. Children are `any` because a mixed Photon/row-engine
// plan interleaves Operators with RowIterators (AdapterOp wraps a
// RowIterator; TransitionOp wraps an Operator).
type statsChild interface{ children() []any }

// statsHidden marks a node whose own stats must be skipped by the walk while
// its children are still visited. PipelineOp uses this so a fused plan
// assigns the exact pre-order IDs of its unfused equivalent — distributed
// EXPLAIN ANALYZE merges on those IDs across fused and unfused tasks.
type statsHidden interface{ statsHidden() }

func (f *FilterOp) children() []any   { return []any{f.child} }
func (p *ProjectOp) children() []any  { return []any{p.child} }
func (op *HashAggOp) children() []any { return []any{op.child} }
func (op *HashJoinOp) children() []any {
	return []any{op.left, op.right}
}
func (s *SortOp) children() []any  { return []any{s.child} }
func (t *TopKOp) children() []any  { return []any{t.child} }
func (l *LimitOp) children() []any { return []any{l.child} }

// Engine-boundary nodes: without these the walk silently truncated any
// mixed Photon/row-engine plan at the first adapter or transition.
func (a *AdapterOp) children() []any    { return []any{a.rows} }
func (t *TransitionOp) children() []any { return []any{t.child} }

// Leaves report no children explicitly so the walk terminates cleanly.
func (s *SourceOp) children() []any { return nil }

// Exchange operators participate like any other node. The read sides are
// stage-input leaves *within a task* — their actual input is another
// fragment's ShuffleWrite in a different set of tasks — so each read op
// records its producing fragment (OpStats.SetUpstream) and RenderStats
// prints the "<- stage N" stitch point instead of silently truncating the
// tree at stage inputs. Distributed EXPLAIN ANALYZE follows the same
// marker to splice the producer fragment's merged profile underneath.
func (s *ShuffleWriteOp) children() []any  { return []any{s.child} }
func (e *ShuffleReadOp) children() []any   { return nil }
func (e *BroadcastReadOp) children() []any { return nil }

// Runtime-filter operators (build-side tap and probe-side prune).
func (op *RuntimeFilterOp) children() []any      { return []any{op.child} }
func (op *RuntimeFilterBuildOp) children() []any { return []any{op.child} }

// WalkStats visits every metrics-carrying node reachable from root with
// its depth. Root is usually an Operator but may be any plan node; nodes
// without metrics (pure row-engine operators) are traversed silently when
// they expose children, and end the walk otherwise.
func WalkStats(root any, visit func(s *OpStats, depth int)) {
	var walk func(n any, d int)
	walk = func(n any, d int) {
		next := d
		if sn, ok := n.(statsNode); ok {
			if _, hidden := n.(statsHidden); !hidden {
				visit(sn.Stats(), d)
				next = d + 1
			}
		}
		if sc, ok := n.(statsChild); ok {
			for _, c := range sc.children() {
				walk(c, next)
			}
		}
	}
	walk(root, 0)
}

// RenderStats formats the operator tree's live metrics.
func RenderStats(op Operator) string {
	var sb strings.Builder
	WalkStats(op, func(s *OpStats, depth int) {
		fmt.Fprintf(&sb, "%s%s\n", strings.Repeat("  ", depth), s.String())
	})
	return sb.String()
}

// AssignStatsIDs numbers every metrics-carrying node reachable from root in
// pre-order. Called once per task before execution; because every task of a
// stage builds the identical operator tree from its fragment's plan, the
// assigned IDs are stable across tasks and serve as the per-fragment merge
// key for distributed EXPLAIN ANALYZE.
func AssignStatsIDs(root any) {
	id := 0
	WalkStats(root, func(s *OpStats, depth int) {
		s.ID = id
		id++
	})
}

// StatsSnapshot is a point-in-time copy of one operator's metrics, safe to
// ship across goroutines after the owning task completes.
type StatsSnapshot struct {
	ID    int
	Depth int
	Name  string
	// Upstream is the producing fragment for exchange-read leaves
	// (-1 for every other operator).
	Upstream int

	RowsIn, RowsOut, BatchesOut, TimeNanos          int64
	SpillCount, SpillBytes, PeakMemory, Compactions int64
}

// Snapshot copies the operator's counters at the given plan depth.
func (s *OpStats) Snapshot(depth int) StatsSnapshot {
	up := -1
	if f, ok := s.UpstreamFrag(); ok {
		up = f
	}
	return StatsSnapshot{
		ID:          s.ID,
		Depth:       depth,
		Name:        s.Name,
		Upstream:    up,
		RowsIn:      s.RowsIn.Load(),
		RowsOut:     s.RowsOut.Load(),
		BatchesOut:  s.BatchesOut.Load(),
		TimeNanos:   s.TimeNanos.Load(),
		SpillCount:  s.SpillCount.Load(),
		SpillBytes:  s.SpillBytes.Load(),
		PeakMemory:  s.PeakMemory.Load(),
		Compactions: s.Compactions.Load(),
	}
}

// SnapshotStats walks the plan reachable from root and snapshots every
// metrics-carrying node in pre-order (the task-side half of distributed
// EXPLAIN ANALYZE; the driver merges snapshots across a stage's tasks).
func SnapshotStats(root any) []StatsSnapshot {
	var out []StatsSnapshot
	WalkStats(root, func(s *OpStats, depth int) {
		out = append(out, s.Snapshot(depth))
	})
	return out
}
