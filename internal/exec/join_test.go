package exec

import (
	"reflect"
	"testing"

	"photon/internal/expr"
	"photon/internal/mem"
	"photon/internal/types"
)

func keyCol(i int, name string) expr.Expr { return expr.Col(i, name, types.Int64Type) }

func joinFixture() (left, right *MemScan) {
	ls := intSchema("lid", "lval")
	rs := intSchema("rid", "rval")
	lrows := [][]any{
		{int64(1), int64(10)},
		{int64(2), int64(20)},
		{int64(3), int64(30)},
		{nil, int64(40)},
		{int64(5), int64(50)},
	}
	rrows := [][]any{
		{int64(1), int64(100)},
		{int64(2), int64(200)},
		{int64(2), int64(201)}, // duplicate build key
		{int64(9), int64(900)},
		{nil, int64(999)}, // NULL build key never matches
	}
	return NewMemScan(ls, BuildBatches(ls, lrows, 64)), NewMemScan(rs, BuildBatches(rs, rrows, 64))
}

func TestInnerJoin(t *testing.T) {
	l, r := joinFixture()
	j, err := NewHashJoin(l, r, []expr.Expr{keyCol(0, "lid")}, []expr.Expr{keyCol(0, "rid")}, InnerJoin)
	if err != nil {
		t.Fatal(err)
	}
	got, err := CollectRows(j, newTC(t))
	if err != nil {
		t.Fatal(err)
	}
	sortRows(got)
	want := [][]any{
		{int64(1), int64(10), int64(1), int64(100)},
		{int64(2), int64(20), int64(2), int64(200)},
		{int64(2), int64(20), int64(2), int64(201)},
	}
	sortRows(want)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("inner join:\n got %v\nwant %v", got, want)
	}
}

func TestLeftOuterJoin(t *testing.T) {
	l, r := joinFixture()
	j, _ := NewHashJoin(l, r, []expr.Expr{keyCol(0, "lid")}, []expr.Expr{keyCol(0, "rid")}, LeftOuterJoin)
	got, err := CollectRows(j, newTC(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 6 { // 1 + 2 (dup) + 1 (unmatched 3) + 1 (null) + 1 (unmatched 5)
		t.Fatalf("outer join rows = %d: %v", len(got), got)
	}
	// Unmatched and NULL-key rows carry NULL build columns.
	nullPadded := 0
	for _, row := range got {
		if row[2] == nil && row[3] == nil {
			nullPadded++
		}
	}
	if nullPadded != 3 {
		t.Errorf("null-padded rows = %d, want 3", nullPadded)
	}
}

func TestSemiAntiJoin(t *testing.T) {
	l, r := joinFixture()
	semi, _ := NewHashJoin(l, r, []expr.Expr{keyCol(0, "lid")}, []expr.Expr{keyCol(0, "rid")}, LeftSemiJoin)
	got, err := CollectRows(semi, newTC(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 { // lid 1 and 2 (dup matches emit once)
		t.Errorf("semi join rows = %d: %v", len(got), got)
	}

	l2, r2 := joinFixture()
	anti, _ := NewHashJoin(l2, r2, []expr.Expr{keyCol(0, "lid")}, []expr.Expr{keyCol(0, "rid")}, LeftAntiJoin)
	got, err = CollectRows(anti, newTC(t))
	if err != nil {
		t.Fatal(err)
	}
	// lid 3, 5 unmatched; NULL key also emits under anti.
	if len(got) != 3 {
		t.Errorf("anti join rows = %d: %v", len(got), got)
	}
}

func TestJoinLargeWithDuplicatesAndResume(t *testing.T) {
	// More matches than one output batch can hold: exercises emit resume.
	ls := intSchema("k")
	rs := intSchema("k", "v")
	var lrows, rrows [][]any
	for i := 0; i < 50; i++ {
		lrows = append(lrows, []any{int64(i % 10)})
	}
	for i := 0; i < 40; i++ {
		rrows = append(rrows, []any{int64(i % 10), int64(i)})
	}
	l := NewMemScan(ls, BuildBatches(ls, lrows, 16))
	r := NewMemScan(rs, BuildBatches(rs, rrows, 16))
	j, _ := NewHashJoin(l, r, []expr.Expr{keyCol(0, "k")}, []expr.Expr{keyCol(0, "k")}, InnerJoin)
	got, err := CollectRows(j, newTC(t))
	if err != nil {
		t.Fatal(err)
	}
	// Every left row matches 4 build rows: 50*4 = 200.
	if len(got) != 200 {
		t.Errorf("join output = %d rows, want 200", len(got))
	}
}

func TestGraceJoinSpillMatchesInMemory(t *testing.T) {
	ls := intSchema("k", "lv")
	rs := intSchema("k", "rv")
	var lrows, rrows [][]any
	for i := 0; i < 3000; i++ {
		lrows = append(lrows, []any{int64(i % 500), int64(i)})
	}
	for i := 0; i < 2000; i++ {
		rrows = append(rrows, []any{int64(i % 700), int64(i * 10)})
	}
	run := func(limit int64) ([][]any, *HashJoinOp) {
		l := NewMemScan(ls, BuildBatches(ls, lrows, 64))
		r := NewMemScan(rs, BuildBatches(rs, rrows, 64))
		j, _ := NewHashJoin(l, r, []expr.Expr{keyCol(0, "k")}, []expr.Expr{keyCol(0, "k")}, InnerJoin)
		tc := NewTaskCtx(mem.NewManager(limit), 64)
		tc.SpillDir = t.TempDir()
		rows, err := CollectRows(j, tc)
		if err != nil {
			t.Fatal(err)
		}
		return rows, j
	}
	want, _ := run(0)
	got, j := run(48 << 10)
	if j.Stats().SpillCount.Load() == 0 {
		t.Fatal("expected the 48KB-limit join to spill")
	}
	sortRows(want)
	sortRows(got)
	if len(got) != len(want) {
		t.Fatalf("grace join rows = %d, in-memory = %d", len(got), len(want))
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("grace join results differ from in-memory join")
	}
}

func TestJoinAdaptiveCompaction(t *testing.T) {
	// A highly selective filter upstream produces sparse batches; the join
	// should compact them when enabled.
	ls := intSchema("k")
	rs := intSchema("k")
	var lrows, rrows [][]any
	for i := 0; i < 2000; i++ {
		lrows = append(lrows, []any{int64(i)})
	}
	for i := 0; i < 100; i++ {
		rrows = append(rrows, []any{int64(i * 20)})
	}
	build := func(enable bool) *HashJoinOp {
		l := NewMemScan(ls, BuildBatches(ls, lrows, 256))
		filt := NewFilter(l, expr.MustCmp(0 /*CmpEq*/, expr.MustArith(expr.OpMod, expr.Col(0, "k", types.Int64Type), expr.Int64Lit(20)), expr.Int64Lit(0)))
		r := NewMemScan(rs, BuildBatches(rs, rrows, 256))
		j, _ := NewHashJoin(filt, r, []expr.Expr{keyCol(0, "k")}, []expr.Expr{keyCol(0, "k")}, InnerJoin)
		return j
	}
	jOn := build(true)
	tcOn := NewTaskCtx(nil, 256)
	tcOn.EnableCompaction = true
	rowsOn, err := CollectRows(jOn, tcOn)
	if err != nil {
		t.Fatal(err)
	}
	if jOn.Stats().Compactions.Load() == 0 {
		t.Error("expected compactions on sparse batches")
	}
	jOff := build(false)
	tcOff := NewTaskCtx(nil, 256)
	tcOff.EnableCompaction = false
	rowsOff, err := CollectRows(jOff, tcOff)
	if err != nil {
		t.Fatal(err)
	}
	if jOff.Stats().Compactions.Load() != 0 {
		t.Error("compaction ran while disabled")
	}
	if len(rowsOn) != len(rowsOff) || len(rowsOn) != 100 {
		t.Errorf("compaction changed results: %d vs %d", len(rowsOn), len(rowsOff))
	}
}

func TestJoinStringKeys(t *testing.T) {
	ls := types.NewSchema(types.Field{Name: "k", Type: types.StringType, Nullable: true})
	rs := types.NewSchema(
		types.Field{Name: "k", Type: types.StringType, Nullable: true},
		types.Field{Name: "v", Type: types.Int64Type},
	)
	l := NewMemScan(ls, BuildBatches(ls, [][]any{{"apple"}, {"pear"}, {nil}}, 64))
	r := NewMemScan(rs, BuildBatches(rs, [][]any{{"apple", int64(1)}, {"plum", int64(2)}}, 64))
	lk := []expr.Expr{expr.Col(0, "k", types.StringType)}
	rk := []expr.Expr{expr.Col(0, "k", types.StringType)}
	j, _ := NewHashJoin(l, r, lk, rk, InnerJoin)
	got, err := CollectRows(j, newTC(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0][0] != "apple" || got[0][2].(int64) != 1 {
		t.Errorf("string join = %v", got)
	}
}
