package exec

import (
	"testing"

	"photon/internal/expr"
	"photon/internal/kernels"
	"photon/internal/types"
)

func TestFilterModeFilteredBuildSide(t *testing.T) {
	ps := intSchema("k")
	var prows [][]any
	for i := 0; i < 100; i++ {
		prows = append(prows, []any{int64(i % 10)})
	}
	bs := intSchema("k", "tag")
	var brows [][]any
	for i := 0; i < 10; i++ {
		brows = append(brows, []any{int64(i), int64(i % 2)})
	}
	// Build side filtered to tag=1 (keys 1,3,5,7,9).
	buildScan := NewMemScan(bs, BuildBatches(bs, brows, 4))
	filt := NewFilter(buildScan, expr.MustCmp(kernels.CmpEq, expr.Col(1, "tag", types.Int64Type), expr.Int64Lit(1)))
	probe := NewMemScan(ps, BuildBatches(ps, prows, 16))
	j, err := NewHashJoin(probe,
		filt,
		[]expr.Expr{expr.Col(0, "k", types.Int64Type)},
		[]expr.Expr{expr.Col(0, "k", types.Int64Type)}, InnerJoin)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := CollectRows(j, newTC(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 50 {
		t.Fatalf("rows = %d, want 50", len(rows))
	}
	for _, r := range rows {
		if r[0].(int64)%2 != 1 {
			t.Fatalf("even key passed: %v", r)
		}
	}
}

func TestFilterModeEmptyBuildSide(t *testing.T) {
	ps := intSchema("k")
	var prows [][]any
	for i := 0; i < 100; i++ {
		prows = append(prows, []any{int64(i % 10)})
	}
	bs := intSchema("k", "tag")
	var brows [][]any
	for i := 0; i < 10; i++ {
		brows = append(brows, []any{int64(i), int64(0)})
	}
	buildScan := NewMemScan(bs, BuildBatches(bs, brows, 4))
	// Filter passes nothing.
	filt := NewFilter(buildScan, expr.MustCmp(kernels.CmpEq, expr.Col(1, "tag", types.Int64Type), expr.Int64Lit(99)))
	probe := NewMemScan(ps, BuildBatches(ps, prows, 16))
	j, _ := NewHashJoin(probe, filt,
		[]expr.Expr{expr.Col(0, "k", types.Int64Type)},
		[]expr.Expr{expr.Col(0, "k", types.Int64Type)}, InnerJoin)
	agg, _ := NewHashAgg(j, AggComplete, nil, nil, []expr.AggSpec{{Kind: expr.AggCount, Name: "c"}})
	rows, err := CollectRows(agg, newTC(t))
	if err != nil {
		t.Fatal(err)
	}
	if rows[0][0].(int64) != 0 {
		t.Fatalf("count = %v, want 0", rows[0][0])
	}
}
