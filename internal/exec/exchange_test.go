package exec

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"photon/internal/types"
	"photon/internal/vector"
)

// memSink is an in-memory ShuffleSink capturing routed rows per partition.
type memSink struct {
	parts  map[int][][]any
	closed bool
}

func (m *memSink) WritePartition(part int, b *vector.Batch) error {
	if m.parts == nil {
		m.parts = map[int][][]any{}
	}
	m.parts[part] = append(m.parts[part], b.Rows()...)
	return nil
}

func (m *memSink) Close() error {
	m.closed = true
	return nil
}

// memSource is an in-memory ShuffleSource replaying one block of rows.
type memSource struct {
	schema *types.Schema
	rows   [][]any
	done   bool
}

func (s *memSource) Next(dst *vector.Batch) (bool, error) {
	if s.done || len(s.rows) == 0 {
		return false, nil
	}
	dst.Reset()
	for _, r := range s.rows {
		dst.AppendRow(r...)
	}
	s.done = true
	return true, nil
}

func exchangeSchema() *types.Schema {
	return types.NewSchema(types.Field{Name: "k", Type: types.Int64Type})
}

func TestShuffleWriteRoutesRows(t *testing.T) {
	schema := exchangeSchema()
	var rows [][]any
	for i := 0; i < 100; i++ {
		rows = append(rows, []any{int64(i)})
	}
	scan := NewMemScan(schema, BuildBatches(schema, rows, 16))
	sink := &memSink{}
	// Route by parity of the key value.
	split := func(b *vector.Batch) [][]int32 {
		parts := make([][]int32, 2)
		for pos := 0; pos < b.NumActive(); pos++ {
			i := b.RowIndex(pos)
			v := b.Vecs[0].I64[i]
			parts[v%2] = append(parts[v%2], int32(i))
		}
		return parts
	}
	w := NewShuffleWrite(scan, sink, split)
	tc := NewTaskCtx(nil, 16)
	if err := Drain(w, tc); err != nil {
		t.Fatal(err)
	}
	if !sink.closed {
		t.Fatal("sink not closed")
	}
	if len(sink.parts[0]) != 50 || len(sink.parts[1]) != 50 {
		t.Fatalf("partition sizes: %d even, %d odd", len(sink.parts[0]), len(sink.parts[1]))
	}
	for part, rs := range sink.parts {
		for _, r := range rs {
			if r[0].(int64)%2 != int64(part) {
				t.Fatalf("row %v routed to partition %d", r, part)
			}
		}
	}
	if got := w.Stats().RowsIn.Load(); got != 100 {
		t.Fatalf("RowsIn = %d, want 100", got)
	}
}

func TestShuffleWriteNilSplit(t *testing.T) {
	schema := exchangeSchema()
	rows := [][]any{{int64(1)}, {int64(2)}, {int64(3)}}
	scan := NewMemScan(schema, BuildBatches(schema, rows, 2))
	sink := &memSink{}
	if err := Drain(NewShuffleWrite(scan, sink, nil), NewTaskCtx(nil, 2)); err != nil {
		t.Fatal(err)
	}
	if len(sink.parts) != 1 || len(sink.parts[0]) != 3 {
		t.Fatalf("nil split routing: %v", sink.parts)
	}
}

func TestShuffleReadStreamsSources(t *testing.T) {
	schema := exchangeSchema()
	open := func() ([]ShuffleSource, error) {
		return []ShuffleSource{
			&memSource{schema: schema, rows: [][]any{{int64(1)}, {int64(2)}}},
			&memSource{schema: schema}, // empty partition
			&memSource{schema: schema, rows: [][]any{{int64(3)}}},
		}, nil
	}
	op := NewShuffleRead("ShuffleRead(test)", schema, open)
	rows, err := CollectRows(op, NewTaskCtx(nil, 16))
	if err != nil {
		t.Fatal(err)
	}
	want := [][]any{{int64(1)}, {int64(2)}, {int64(3)}}
	if !reflect.DeepEqual(rows, want) {
		t.Fatalf("rows = %v, want %v", rows, want)
	}
	if op.Stats().Name != "ShuffleRead(test)" {
		t.Fatalf("stats name = %q", op.Stats().Name)
	}
}

func TestBroadcastReadStreamsAll(t *testing.T) {
	schema := exchangeSchema()
	op := NewBroadcastRead("", schema, func() ([]ShuffleSource, error) {
		return []ShuffleSource{
			&memSource{schema: schema, rows: [][]any{{int64(7)}}},
			&memSource{schema: schema, rows: [][]any{{int64(8)}}},
		}, nil
	})
	rows, err := CollectRows(op, NewTaskCtx(nil, 16))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	if op.Stats().Name != "BroadcastRead" {
		t.Fatalf("stats name = %q", op.Stats().Name)
	}
}

func TestMergeSortedRuns(t *testing.T) {
	schema := exchangeSchema()
	run := func(vals ...int64) []*vector.Batch {
		var rows [][]any
		for _, v := range vals {
			rows = append(rows, []any{v})
		}
		return BuildBatches(schema, rows, 2)
	}
	keys := []SortKey{{Col: 0}}

	rows, err := MergeSortedRuns(nil, [][]*vector.Batch{
		run(1, 4, 9), run(2, 3, 10), run(), run(5),
	}, keys, -1)
	if err != nil {
		t.Fatal(err)
	}
	var got []int64
	for _, r := range rows {
		got = append(got, r[0].(int64))
	}
	want := []int64{1, 2, 3, 4, 5, 9, 10}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("merged = %v, want %v", got, want)
	}

	// Limit truncates the merged stream.
	rows, err = MergeSortedRuns(nil, [][]*vector.Batch{run(1, 3), run(2)}, keys, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[1][0].(int64) != 2 {
		t.Fatalf("limited merge = %v", rows)
	}

	// Descending keys merge descending runs.
	desc := []SortKey{{Col: 0, Desc: true}}
	rows, err = MergeSortedRuns(nil, [][]*vector.Batch{run(9, 4), run(10, 3)}, desc, -1)
	if err != nil {
		t.Fatal(err)
	}
	var dgot []int64
	for _, r := range rows {
		dgot = append(dgot, r[0].(int64))
	}
	if !reflect.DeepEqual(dgot, []int64{10, 9, 4, 3}) {
		t.Fatalf("descending merge = %v", dgot)
	}

	// No keys is an error (merging unordered runs is meaningless).
	if _, err := MergeSortedRuns(nil, nil, nil, -1); err == nil {
		t.Fatal("merge without keys succeeded")
	}
}

// TestStatsWalkCrossesEngineBoundaries pins the stats-tree fix: a plan that
// leaves Photon through a TransitionOp and re-enters through an AdapterOp
// must still report every metrics-carrying node, not truncate at the first
// boundary.
func TestStatsWalkCrossesEngineBoundaries(t *testing.T) {
	schema := exchangeSchema()
	var rows [][]any
	for i := 0; i < 10; i++ {
		rows = append(rows, []any{int64(i)})
	}
	tc := NewTaskCtx(nil, 4)
	scan := NewMemScan(schema, BuildBatches(schema, rows, 4))
	transition := NewTransition(scan, tc) // Photon -> rows
	adapter := NewAdapter(transition)     // rows -> Photon
	limit := NewLimit(adapter, 100)

	if _, err := CollectRows(limit, tc); err != nil {
		t.Fatal(err)
	}

	var names []string
	WalkStats(limit, func(s *OpStats, depth int) {
		names = append(names, fmt.Sprintf("%d:%s", depth, s.Name))
	})
	want := []string{"0:Limit(100)", "1:Adapter", "2:Transition", "3:MemScan"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("stats walk = %v, want %v", names, want)
	}

	// RenderStats covers the same tree.
	out := RenderStats(limit)
	for _, n := range []string{"Limit", "Adapter", "Transition", "MemScan"} {
		if !strings.Contains(out, n) {
			t.Fatalf("rendered stats missing %s:\n%s", n, out)
		}
	}
}
