// Package exec implements Photon's vectorized query operators (§4, §5.2):
// pull-based HasNext/GetNext-style nodes exchanging column batches, with
// per-operator metrics (an explicit design goal of the vectorized model,
// §3.3), unified-memory-manager integration with reservation/allocation
// phases and spilling (§5.3), and the adapter/transition nodes that bridge
// to the row-oriented baseline engine (§5.2).
package exec

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"time"

	"photon/internal/expr"
	"photon/internal/fault"
	"photon/internal/mem"
	"photon/internal/types"
	"photon/internal/vector"
)

// Operator is a vectorized query operator. Next returns the next column
// batch or (nil, nil) at end of input. A returned batch remains valid only
// until the next call to Next or Close; consumers that retain data must
// copy it out.
type Operator interface {
	Schema() *types.Schema
	Open(tc *TaskCtx) error
	Next() (*vector.Batch, error)
	Close() error
	// Stats exposes the operator's live metrics (§5.5: Photon operators
	// export statistics for adaptive decisions and UI display).
	Stats() *OpStats
}

// OpStats carries per-operator metrics. The vectorized model preserves
// operator boundaries, so each operator maintains its own counters —
// the paper's primary debugging interface for customer workloads.
type OpStats struct {
	Name string

	// ID is the operator's stable pre-order position within its stage
	// fragment's plan, assigned before execution (AssignStatsIDs). Every
	// task of a stage builds an identical plan shape from the fragment cut
	// at PlanStages time, so (fragment ID, operator ID) names "the same
	// operator" across parallel tasks — the merge key of distributed
	// EXPLAIN ANALYZE.
	ID int

	// upstream records 1 + the producing fragment's ID on exchange-read
	// leaves (ShuffleRead/BroadcastRead). The per-task stats walk ends at
	// stage inputs; this field is where the merged query profile stitches
	// the consumer's tree onto the producer fragment's ShuffleWrite.
	// 0 means "not an exchange read".
	upstream int

	RowsIn      atomic.Int64
	RowsOut     atomic.Int64
	BatchesOut  atomic.Int64
	TimeNanos   atomic.Int64
	SpillCount  atomic.Int64
	SpillBytes  atomic.Int64
	PeakMemory  atomic.Int64
	Compactions atomic.Int64
}

// SetUpstream records the producing fragment of an exchange-read leaf.
// Called at plan-build time, before the operator runs.
func (s *OpStats) SetUpstream(frag int) { s.upstream = frag + 1 }

// UpstreamFrag returns the producing fragment of an exchange-read leaf
// (ok = false for every other operator).
func (s *OpStats) UpstreamFrag() (int, bool) { return s.upstream - 1, s.upstream > 0 }

// observePeak records a memory high-water mark.
func (s *OpStats) observePeak(n int64) {
	for {
		cur := s.PeakMemory.Load()
		if n <= cur || s.PeakMemory.CompareAndSwap(cur, n) {
			return
		}
	}
}

// String renders a one-line metrics summary with aligned columns. Rows,
// batches, and time always print; spill, peak-memory, and compaction fields
// appear only when nonzero, so the common case stays one clean line.
func (s *OpStats) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-28s in=%-10d out=%-10d batches=%-7d time=%-12v",
		s.Name, s.RowsIn.Load(), s.RowsOut.Load(), s.BatchesOut.Load(),
		time.Duration(s.TimeNanos.Load()).Round(time.Microsecond))
	if n := s.SpillCount.Load(); n > 0 {
		fmt.Fprintf(&sb, " spills=%d spillBytes=%d", n, s.SpillBytes.Load())
	}
	if n := s.PeakMemory.Load(); n > 0 {
		fmt.Fprintf(&sb, " peakMem=%d", n)
	}
	if n := s.Compactions.Load(); n > 0 {
		fmt.Fprintf(&sb, " compactions=%d", n)
	}
	if f, ok := s.UpstreamFrag(); ok {
		fmt.Fprintf(&sb, " <- stage %d", f)
	}
	return strings.TrimRight(sb.String(), " ")
}

// TaskCtx is the per-task execution context: Photon runs as part of a
// single-threaded task (§2.2), so nothing here is shared across tasks except
// the memory Manager.
type TaskCtx struct {
	Expr *expr.Ctx
	Mem  *mem.Manager
	Pool *mem.BatchPool

	// Ctx is the query/job context. Operators check it at batch
	// boundaries (the Cancelled helper), so a cancelled query stops
	// within one batch of work even mid-scan, mid-build, or mid-shuffle.
	// Nil means "never cancelled".
	Ctx context.Context

	// SpillDir receives spill files; empty disables spilling (reservations
	// that would spill then fail).
	SpillDir string

	// EnableCompaction turns on adaptive batch compaction before hash-table
	// probes (§4.6, Fig. 9); CompactionThreshold is the sparsity above
	// which a batch is compacted.
	EnableCompaction    bool
	CompactionThreshold float64

	// Progress, when non-nil, receives cumulative work deltas at batch
	// boundaries (rows and bytes moved through exchange edges). The
	// scheduler's straggler detector reads the accumulated totals to rank
	// speculative re-execution candidates by least progress.
	Progress func(rows, bytes int64)

	spillSeq atomic.Int64
}

// ReportProgress forwards a work delta to the task's progress sink, if any.
// Safe on a nil receiver and with no sink configured.
func (tc *TaskCtx) ReportProgress(rows, bytes int64) {
	if tc == nil || tc.Progress == nil {
		return
	}
	tc.Progress(rows, bytes)
}

// NewTaskCtx builds a context with the given memory manager (nil = new
// unlimited manager) and batch size (0 = default).
func NewTaskCtx(m *mem.Manager, batchSize int) *TaskCtx {
	if m == nil {
		m = mem.NewManager(0)
	}
	return &TaskCtx{
		Expr:                expr.NewCtx(batchSize),
		Mem:                 m,
		Pool:                mem.NewBatchPool(batchSize),
		Ctx:                 context.Background(),
		EnableCompaction:    true,
		CompactionThreshold: 0.5,
	}
}

// Cancelled returns a non-nil error when the task's context is done — the
// batch-boundary cancellation check. The returned error wraps the context
// cause (so errors.Is(err, context.Canceled) holds) while naming the
// cancellation point.
func (tc *TaskCtx) Cancelled() error {
	if tc == nil || tc.Ctx == nil {
		return nil
	}
	if err := tc.Ctx.Err(); err != nil {
		if cause := context.Cause(tc.Ctx); cause != nil && !errors.Is(err, cause) {
			// Keep the ctx error in the wrap chain (so callers can match
			// context.Canceled) but name the cancellation cause.
			return fmt.Errorf("exec: query cancelled: %w (cause: %v)", err, cause)
		}
		return fmt.Errorf("exec: query cancelled: %w", err)
	}
	return nil
}

// NewSpillFile creates a uniquely named spill file. Its failpoint site is
// spill-write; transient OS errors (interrupted syscalls, closed files
// during cancellation) classify as retryable so the scheduler re-runs the
// task instead of failing the query.
func (tc *TaskCtx) NewSpillFile(prefix string) (*os.File, error) {
	if tc.SpillDir == "" {
		return nil, fmt.Errorf("exec: spilling disabled (no spill directory configured)")
	}
	if err := fault.Hit(tc.Ctx, fault.SpillWrite); err != nil {
		return nil, err
	}
	name := fmt.Sprintf("%s-%d.spill", prefix, tc.spillSeq.Add(1))
	f, err := os.Create(filepath.Join(tc.SpillDir, name))
	if err != nil {
		return nil, fault.ClassifyIO(fault.SpillWrite, err)
	}
	return f, nil
}

// base provides common Operator plumbing.
type base struct {
	schema *types.Schema
	stats  OpStats
	tc     *TaskCtx
	// untimed suppresses per-batch wall-clock reads (fused-pipeline
	// members: two clock syscalls per operator per batch are part of the
	// interpretive overhead fusion removes).
	untimed bool
}

func (b *base) Schema() *types.Schema { return b.schema }
func (b *base) Stats() *OpStats       { return &b.stats }

// disableTiming turns off per-batch time accrual for this operator. The
// fused-pipeline compiler applies it to pipeline members; their TimeNanos
// reads as zero, which EXPLAIN ANALYZE documents as fused-mode semantics.
func (b *base) disableTiming() { b.untimed = true }

// timed runs f and accrues wall time into the operator's stats.
func (b *base) timed(f func() error) error {
	if b.untimed {
		return f()
	}
	start := time.Now()
	err := f()
	b.stats.TimeNanos.Add(int64(time.Since(start)))
	return err
}

// CollectAll drains op into a slice of cloned batches (test/result helper).
func CollectAll(op Operator, tc *TaskCtx) ([]*vector.Batch, error) {
	if err := op.Open(tc); err != nil {
		return nil, err
	}
	defer op.Close()
	var out []*vector.Batch
	for {
		// Batch-boundary cancellation check (gather collection).
		if err := tc.Cancelled(); err != nil {
			return nil, err
		}
		b, err := op.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			return out, nil
		}
		if b.NumActive() > 0 {
			out = append(out, b.Clone())
			tc.ReportProgress(int64(b.NumActive()), 0)
		}
	}
}

// CollectRows drains op into materialized rows (test/result helper).
func CollectRows(op Operator, tc *TaskCtx) ([][]any, error) {
	batches, err := CollectAll(op, tc)
	if err != nil {
		return nil, err
	}
	var rows [][]any
	for _, b := range batches {
		rows = append(rows, b.Rows()...)
	}
	return rows, nil
}
