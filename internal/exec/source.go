package exec

import (
	"photon/internal/types"
	"photon/internal/vector"
)

// SourceFunc produces column batches; nil signals end of input. Used to
// adapt storage readers (Delta/Parquet files, shuffle partitions) into the
// operator tree without exec depending on the storage packages.
type SourceFunc func() (*vector.Batch, error)

// SourceOp wraps a SourceFunc as a leaf operator.
type SourceOp struct {
	base
	open func() (SourceFunc, error)
	next SourceFunc
}

// NewSource builds a leaf operator; open is called on Open (and again on
// re-Open), producing a fresh stream.
func NewSource(name string, schema *types.Schema, open func() (SourceFunc, error)) *SourceOp {
	s := &SourceOp{open: open}
	s.schema = schema
	s.stats.Name = name
	return s
}

// Open implements Operator.
func (s *SourceOp) Open(tc *TaskCtx) error {
	s.tc = tc
	next, err := s.open()
	if err != nil {
		return err
	}
	s.next = next
	return nil
}

// Next implements Operator.
func (s *SourceOp) Next() (*vector.Batch, error) {
	var out *vector.Batch
	err := s.timed(func() error {
		b, err := s.next()
		if err != nil {
			return err
		}
		if b != nil {
			s.stats.RowsOut.Add(int64(b.NumActive()))
			s.stats.BatchesOut.Add(1)
		}
		out = b
		return nil
	})
	return out, err
}

// Close implements Operator.
func (s *SourceOp) Close() error {
	s.next = nil
	return nil
}
