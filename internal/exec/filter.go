package exec

import (
	"photon/internal/expr"
	"photon/internal/types"
	"photon/internal/vector"
)

// FilterOp applies a filtering expression by shrinking each batch's position
// list (§4.3). Data vectors are untouched; only the selection changes.
type FilterOp struct {
	base
	child  Operator
	pred   expr.Filter
	sel    []int32
	winSel []int32
}

// NewFilter builds a filter over child.
func NewFilter(child Operator, pred expr.Filter) *FilterOp {
	f := &FilterOp{child: child, pred: pred}
	f.schema = child.Schema()
	f.stats.Name = "Filter(" + pred.String() + ")"
	return f
}

// Open implements Operator.
func (f *FilterOp) Open(tc *TaskCtx) error {
	f.tc = tc
	return f.child.Open(tc)
}

// Next implements Operator.
func (f *FilterOp) Next() (*vector.Batch, error) {
	for {
		b, err := f.child.Next()
		if err != nil || b == nil {
			return nil, err
		}
		var out *vector.Batch
		err = f.timed(func() error {
			var err error
			out, err = f.processBatch(b)
			return err
		})
		if err != nil {
			return nil, err
		}
		if out != nil {
			return out, nil
		}
	}
}

// processBatch applies the predicate to one batch, shrinking its position
// list; nil output means the batch was fully filtered. Shared by the pull
// path and fused pipelines — all stats counting lives here, so both report
// identically.
func (f *FilterOp) processBatch(b *vector.Batch) (*vector.Batch, error) {
	f.stats.RowsIn.Add(int64(b.NumActive()))
	f.sel = f.sel[:0]
	var sel []int32
	var err error
	if active := b.NumActive(); active > cancelCheckRows {
		sel, err = f.evalSelWindowed(b, active)
	} else {
		sel, err = f.pred.EvalSel(f.tc.Expr, b, f.sel)
	}
	if err != nil {
		return nil, err
	}
	f.sel = sel
	if len(sel) == 0 {
		return nil, nil // batch fully filtered
	}
	if len(sel) == b.NumRows && b.Sel == nil {
		// All rows passed: keep the dense fast path.
	} else {
		b.SetSel(sel)
	}
	f.stats.RowsOut.Add(int64(b.NumActive()))
	f.stats.BatchesOut.Add(1)
	return b, nil
}

// evalSelWindowed evaluates the predicate over cancelCheckRows-sized windows
// of active rows with a cancellation check between windows, so one giant
// batch cannot pin a cancelled task inside the filter kernel.
func (f *FilterOp) evalSelWindowed(b *vector.Batch, active int) ([]int32, error) {
	savedSel := b.Sel
	defer func() { b.Sel = savedSel }()
	out := f.sel[:0]
	for lo := 0; lo < active; lo += cancelCheckRows {
		if err := f.tc.Cancelled(); err != nil {
			return nil, err
		}
		hi := min(lo+cancelCheckRows, active)
		if savedSel != nil {
			b.Sel = savedSel[lo:hi]
		} else {
			b.Sel = f.windowSel(lo, hi)
		}
		var err error
		out, err = f.pred.EvalSel(f.tc.Expr, b, out)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// windowSel returns a synthetic selection covering physical rows [lo, hi).
func (f *FilterOp) windowSel(lo, hi int) []int32 {
	if cap(f.winSel) < hi-lo {
		f.winSel = make([]int32, hi-lo)
	}
	w := f.winSel[:hi-lo]
	for i := range w {
		w[i] = int32(lo + i)
	}
	return w
}

// bind attaches the task context without opening the child (fused path).
func (f *FilterOp) bind(tc *TaskCtx) { f.tc = tc }

// source returns the operator's input (fused path).
func (f *FilterOp) source() Operator { return f.child }

// closeLocal releases operator-local resources (fused path; none to free).
func (f *FilterOp) closeLocal() error { return nil }

// Close implements Operator.
func (f *FilterOp) Close() error { return f.child.Close() }

// ProjectOp evaluates expressions into an output batch whose header is
// pooled and whose vectors are expression results or zero-copy column
// references, forwarding the input's position list.
type ProjectOp struct {
	base
	child    Operator
	exprs    []expr.Expr
	out      *vector.Batch
	ownedVec []bool
}

// NewProject builds a projection. names provides output column names
// (empty entries fall back to the expression's rendering).
func NewProject(child Operator, exprs []expr.Expr, names []string) *ProjectOp {
	p := &ProjectOp{child: child, exprs: exprs}
	fields := make([]types.Field, len(exprs))
	for i, e := range exprs {
		name := ""
		if i < len(names) {
			name = names[i]
		}
		if name == "" {
			name = e.String()
		}
		fields[i] = types.Field{Name: name, Type: e.Type(), Nullable: true}
	}
	p.schema = &types.Schema{Fields: fields}
	p.stats.Name = "Project"
	return p
}

// Open implements Operator.
func (p *ProjectOp) Open(tc *TaskCtx) error {
	p.tc = tc
	return p.child.Open(tc)
}

// Next implements Operator.
func (p *ProjectOp) Next() (*vector.Batch, error) {
	b, err := p.child.Next()
	if err != nil || b == nil {
		return nil, err
	}
	var out *vector.Batch
	err = p.timed(func() error {
		var err error
		out, err = p.processBatch(b)
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// processBatch evaluates the projection expressions over one batch. Shared
// by the pull path and fused pipelines — all stats counting lives here.
func (p *ProjectOp) processBatch(b *vector.Batch) (*vector.Batch, error) {
	p.stats.RowsIn.Add(int64(b.NumActive()))
	p.tc.Expr.ResetPerBatch()
	if p.out == nil {
		// The output header comes from the task's batch pool and recycles
		// across batches; vectors are expression-pool outputs or zero-copy
		// column references, never per-batch batch allocations.
		p.out = p.tc.Pool.GetView(p.schema, len(p.exprs))
	} else {
		// Recycle previous output vectors we own.
		for i, v := range p.out.Vecs {
			if v != nil && p.ownedVec[i] {
				p.tc.Expr.Put(v)
			}
		}
	}
	if p.ownedVec == nil {
		p.ownedVec = make([]bool, len(p.exprs))
	}
	for i, e := range p.exprs {
		v, err := e.Eval(p.tc.Expr, b)
		if err != nil {
			return nil, err
		}
		_, isCol := e.(*expr.ColRef)
		p.out.Vecs[i] = v
		p.ownedVec[i] = !isCol
	}
	p.out.Sel = b.Sel
	p.out.NumRows = b.NumRows
	p.stats.RowsOut.Add(int64(p.out.NumActive()))
	p.stats.BatchesOut.Add(1)
	return p.out, nil
}

// bind attaches the task context without opening the child (fused path).
func (p *ProjectOp) bind(tc *TaskCtx) { p.tc = tc }

// source returns the operator's input (fused path).
func (p *ProjectOp) source() Operator { return p.child }

// closeLocal returns owned output vectors to the expression pool and the
// output header to the batch pool.
func (p *ProjectOp) closeLocal() error {
	if p.out != nil {
		for i, v := range p.out.Vecs {
			if v != nil && p.ownedVec[i] {
				p.tc.Expr.Put(v)
			}
		}
		p.tc.Pool.PutView(p.out)
		p.out = nil
	}
	return nil
}

// Close implements Operator.
func (p *ProjectOp) Close() error {
	p.closeLocal()
	return p.child.Close()
}
