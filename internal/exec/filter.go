package exec

import (
	"photon/internal/expr"
	"photon/internal/types"
	"photon/internal/vector"
)

// FilterOp applies a filtering expression by shrinking each batch's position
// list (§4.3). Data vectors are untouched; only the selection changes.
type FilterOp struct {
	base
	child Operator
	pred  expr.Filter
	sel   []int32
}

// NewFilter builds a filter over child.
func NewFilter(child Operator, pred expr.Filter) *FilterOp {
	f := &FilterOp{child: child, pred: pred}
	f.schema = child.Schema()
	f.stats.Name = "Filter(" + pred.String() + ")"
	return f
}

// Open implements Operator.
func (f *FilterOp) Open(tc *TaskCtx) error {
	f.tc = tc
	return f.child.Open(tc)
}

// Next implements Operator.
func (f *FilterOp) Next() (*vector.Batch, error) {
	for {
		b, err := f.child.Next()
		if err != nil || b == nil {
			return nil, err
		}
		var out *vector.Batch
		err = f.timed(func() error {
			f.stats.RowsIn.Add(int64(b.NumActive()))
			f.sel = f.sel[:0]
			sel, err := f.pred.EvalSel(f.tc.Expr, b, f.sel)
			if err != nil {
				return err
			}
			f.sel = sel
			if len(sel) == 0 {
				return nil // batch fully filtered; pull the next one
			}
			if len(sel) == b.NumRows && b.Sel == nil {
				// All rows passed: keep the dense fast path.
				out = b
			} else {
				b.SetSel(sel)
				out = b
			}
			f.stats.RowsOut.Add(int64(out.NumActive()))
			f.stats.BatchesOut.Add(1)
			return nil
		})
		if err != nil {
			return nil, err
		}
		if out != nil {
			return out, nil
		}
	}
}

// Close implements Operator.
func (f *FilterOp) Close() error { return f.child.Close() }

// ProjectOp evaluates expressions into a fresh output batch, forwarding the
// input's position list.
type ProjectOp struct {
	base
	child    Operator
	exprs    []expr.Expr
	out      *vector.Batch
	ownedVec []bool
}

// NewProject builds a projection. names provides output column names
// (empty entries fall back to the expression's rendering).
func NewProject(child Operator, exprs []expr.Expr, names []string) *ProjectOp {
	p := &ProjectOp{child: child, exprs: exprs}
	fields := make([]types.Field, len(exprs))
	for i, e := range exprs {
		name := ""
		if i < len(names) {
			name = names[i]
		}
		if name == "" {
			name = e.String()
		}
		fields[i] = types.Field{Name: name, Type: e.Type(), Nullable: true}
	}
	p.schema = &types.Schema{Fields: fields}
	p.stats.Name = "Project"
	return p
}

// Open implements Operator.
func (p *ProjectOp) Open(tc *TaskCtx) error {
	p.tc = tc
	return p.child.Open(tc)
}

// Next implements Operator.
func (p *ProjectOp) Next() (*vector.Batch, error) {
	b, err := p.child.Next()
	if err != nil || b == nil {
		return nil, err
	}
	var out *vector.Batch
	err = p.timed(func() error {
		p.stats.RowsIn.Add(int64(b.NumActive()))
		p.tc.Expr.ResetPerBatch()
		if p.out == nil {
			p.out = vector.WrapBatch(p.schema, make([]*vector.Vector, len(p.exprs)), nil, 0)
			p.out.SetCapacity(p.tc.Pool.BatchSize())
		} else {
			// Recycle previous output vectors we own.
			for i, v := range p.out.Vecs {
				if v != nil && p.ownedVec[i] {
					p.tc.Expr.Put(v)
				}
			}
		}
		if p.ownedVec == nil {
			p.ownedVec = make([]bool, len(p.exprs))
		}
		for i, e := range p.exprs {
			v, err := e.Eval(p.tc.Expr, b)
			if err != nil {
				return err
			}
			_, isCol := e.(*expr.ColRef)
			p.out.Vecs[i] = v
			p.ownedVec[i] = !isCol
		}
		p.out.Sel = b.Sel
		p.out.NumRows = b.NumRows
		out = p.out
		p.stats.RowsOut.Add(int64(out.NumActive()))
		p.stats.BatchesOut.Add(1)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Close implements Operator.
func (p *ProjectOp) Close() error { return p.child.Close() }
