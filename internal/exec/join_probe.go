package exec

import (
	"io"
	"os"

	"photon/internal/fault"
	"photon/internal/ht"
	"photon/internal/serde"
	"photon/internal/types"
	"photon/internal/vector"
)

// Probe phase of the hash join.

// Next implements Operator.
func (op *HashJoinOp) Next() (*vector.Batch, error) {
	var out *vector.Batch
	err := op.timed(func() error {
		if !op.built {
			if err := op.build(); err != nil {
				return err
			}
			op.built = true
			op.uniqueKeys = op.tbl.NumRows() == op.tbl.Len()
		}
		var err error
		out, err = op.probeNext()
		return err
	})
	if err != nil {
		return nil, err
	}
	if out != nil {
		// NumActive, not NumRows: filter-mode output passes the probe batch
		// through with a shrunk position list, and counting carried (dead)
		// rows would make RowsOut depend on batch boundaries — breaking the
		// cross-parallelism invariant the merged profiles rely on.
		op.stats.RowsOut.Add(int64(out.NumActive()))
		op.stats.BatchesOut.Add(1)
	}
	return out, nil
}

// filterMode reports whether this join emits filter-style output: the
// probe batch's vectors pass through and only the position list shrinks.
func (op *HashJoinOp) filterMode() bool {
	switch op.joinType {
	case LeftSemiJoin, LeftAntiJoin:
		return true
	case InnerJoin, LeftOuterJoin:
		// Grace mode rebuilds per-partition tables whose key uniqueness is
		// unknown up front; stay on the general chain-walking path there.
		return op.uniqueKeys && !op.graced
	}
	return false
}

// probeNext produces the next output batch.
func (op *HashJoinOp) probeNext() (*vector.Batch, error) {
	if op.filterMode() {
		return op.probeNextFilterMode()
	}
	if op.out == nil {
		op.out = vector.NewBatch(op.schema, op.tc.Pool.BatchSize())
	}
	op.out.Reset()
	for {
		// Batch-boundary cancellation check (join probe side).
		if err := op.tc.Cancelled(); err != nil {
			return nil, err
		}
		// Emit pending matches from the current probe batch.
		if op.probeBatch != nil {
			if op.emitMatches() {
				return op.out, nil // output full; resume here next call
			}
			op.probeBatch = nil
		}
		// Pull the next probe batch.
		b, err := op.nextProbeBatch()
		if err != nil {
			return nil, err
		}
		if b == nil {
			if op.out.NumRows > 0 {
				return op.out, nil
			}
			return nil, nil
		}
		if b.NumActive() == 0 {
			continue
		}
		if err := op.startProbe(b); err != nil {
			return nil, err
		}
	}
}

// probeNextFilterMode drives the filter-style probe with adaptive
// coalescing compaction (§4.6): sparse probe batches gather-append into an
// accumulator until it is reasonably full, then probe as one dense batch —
// downstream operators see few full batches instead of many sparse ones.
func (op *HashJoinOp) probeNextFilterMode() (*vector.Batch, error) {
	flushThreshold := 0
	if op.fmAcc != nil {
		flushThreshold = op.fmAcc.Capacity() * 3 / 4
	}
	for {
		// A dense batch deferred while the accumulator flushed goes first.
		b := op.fmStash
		op.fmStash = nil
		if b == nil {
			if op.fmEOF {
				return nil, nil
			}
			var err error
			b, err = op.nextProbeBatch()
			if err != nil {
				return nil, err
			}
		}
		if b == nil {
			op.fmEOF = true
			// Flush whatever accumulated.
			if op.fmAcc != nil && op.fmAcc.NumRows > 0 {
				out, err := op.flushAcc()
				if err != nil {
					return nil, err
				}
				if out != nil && out.NumActive() > 0 {
					return out, nil
				}
			}
			return nil, nil
		}
		if b.NumActive() == 0 {
			continue
		}
		if op.tc.EnableCompaction && b.Sparsity() > op.tc.CompactionThreshold {
			if op.fmAcc == nil {
				op.fmAcc = vector.NewBatch(op.left.Schema(), b.Capacity())
				flushThreshold = op.fmAcc.Capacity() * 3 / 4
			}
			if op.fmAcc.NumRows+b.NumActive() > op.fmAcc.Capacity() {
				// No room: flush first, keep b for the next iteration.
				op.fmStash = b
				out, err := op.flushAcc()
				if err != nil {
					return nil, err
				}
				if out != nil && out.NumActive() > 0 {
					return out, nil
				}
				continue
			}
			b.GatherAppend(op.fmAcc)
			op.stats.Compactions.Add(1)
			if op.fmAcc.NumRows < flushThreshold {
				continue // keep accumulating sparse batches
			}
			out, err := op.flushAcc()
			if err != nil {
				return nil, err
			}
			if out != nil && out.NumActive() > 0 {
				return out, nil
			}
			continue
		}
		// Dense (or compaction off): flush any accumulation first so row
		// order stays deterministic per input, then probe b directly.
		if op.fmAcc != nil && op.fmAcc.NumRows > 0 {
			op.fmStash = b
			out, err := op.flushAcc()
			if err != nil {
				return nil, err
			}
			if out != nil && out.NumActive() > 0 {
				return out, nil
			}
			continue
		}
		out, err := op.probeFilterMode(b)
		if err != nil {
			return nil, err
		}
		if out != nil && out.NumActive() > 0 {
			return out, nil
		}
	}
}

// flushAcc probes the accumulated dense batch and resets it.
func (op *HashJoinOp) flushAcc() (*vector.Batch, error) {
	acc := op.fmAcc
	out, err := op.probeFilterMode(acc)
	if err != nil {
		return nil, err
	}
	// The output aliases acc's vectors, but the consumer finishes with it
	// before the next Next() call — by which time refilling is safe.
	acc.NumRows = 0
	acc.Sel = nil
	return out, nil
}

// probeFilterMode runs one batch through the filter-style probe.
func (op *HashJoinOp) probeFilterMode(b *vector.Batch) (*vector.Batch, error) {
	n := b.NumRows
	op.ensureCap(n)
	op.tc.Expr.ResetPerBatch()
	if err := op.evalKeys(op.leftKeys, b); err != nil {
		return nil, err
	}
	op.nullSel = op.nullSel[:0]
	sel := op.nonNullKeySel(b, &op.nullSel)
	hashKeyVectorsScratch(op.keyVecs, sel, n, op.hashes, &op.lanes)
	if err := op.tbl.Find(op.keyVecs, op.hashes, sel, n, op.rowIDs); err != nil {
		op.releaseKeys()
		return nil, err
	}
	op.releaseKeys()

	// Partition into matched / unmatched.
	op.fmSel = op.fmSel[:0]
	matched := op.fmSel
	appendMatched := func(i int32) {
		if op.rowIDs[i] != -1 {
			matched = append(matched, i)
		}
	}
	if sel == nil {
		for i := 0; i < n; i++ {
			appendMatched(int32(i))
		}
	} else {
		for _, i := range sel {
			appendMatched(i)
		}
	}
	op.fmSel = matched

	switch op.joinType {
	case LeftSemiJoin:
		return op.fmWrap(b, matched, false), nil
	case LeftAntiJoin:
		// Unmatched probe rows plus NULL-key rows, in sorted order.
		unmatched := op.scratchSel(n)
		take := func(i int32) {
			if op.rowIDs[i] == -1 {
				unmatched = append(unmatched, i)
			}
		}
		if sel == nil {
			for i := 0; i < n; i++ {
				take(int32(i))
			}
		} else {
			for _, i := range sel {
				take(i)
			}
		}
		merged := mergeSorted(unmatched, op.nullSel)
		return op.fmWrap(b, merged, false), nil
	case InnerJoin:
		op.fillBuildCols(b, matched)
		return op.fmWrap(b, matched, true), nil
	case LeftOuterJoin:
		// All active rows stay; unmatched (and NULL-key) rows take NULL
		// build columns.
		op.fillBuildCols(b, matched)
		for c := range op.buildTypes {
			v := op.fmBuild[c]
			markNull := func(i int32) {
				if op.rowIDs[i] == -1 {
					v.SetNull(int(i))
				}
			}
			if sel == nil {
				for i := 0; i < n; i++ {
					markNull(int32(i))
				}
			} else {
				for _, i := range sel {
					markNull(i)
				}
			}
			for _, i := range op.nullSel {
				v.SetNull(int(i))
			}
		}
		outSel := b.Sel
		return op.fmWrap(b, outSel, true), nil
	}
	return nil, nil
}

// scratchSel returns a reusable, non-nil position-list buffer.
func (op *HashJoinOp) scratchSel(n int) []int32 {
	if op.probeSel == nil || cap(op.probeSel) < n {
		op.probeSel = make([]int32, 0, max(n, 1))
	}
	return op.probeSel[:0]
}

// mergeSorted merges two sorted position lists.
func mergeSorted(a, b []int32) []int32 {
	if len(b) == 0 {
		return a
	}
	out := make([]int32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] < b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// fillBuildCols decodes build columns into op.fmBuild at the matched probe
// row positions.
func (op *HashJoinOp) fillBuildCols(b *vector.Batch, matched []int32) {
	if op.fmBuild == nil {
		op.fmBuild = make([]*vector.Vector, len(op.buildTypes))
		for c, t := range op.buildTypes {
			op.fmBuild[c] = vector.New(t, b.Capacity())
		}
	}
	for c, t := range op.buildTypes {
		v := op.fmBuild[c]
		// Clear NULL flags on the rows we are about to write.
		for _, i := range matched {
			v.Nulls[i] = 0
		}
		v.SetHasNulls(false)
		for _, i := range matched {
			pay := op.tbl.PayloadBytes(op.rowIDs[i])
			decodeSlot(pay[op.buildOffs[c]:], t, v, int(i), op.tbl)
		}
	}
}

// fmWrap builds the shared-vector output batch.
func (op *HashJoinOp) fmWrap(b *vector.Batch, sel []int32, withBuild bool) *vector.Batch {
	if op.fmOut == nil {
		op.fmOut = vector.WrapBatch(op.schema, nil, nil, 0)
		op.fmOut.SetCapacity(b.Capacity())
	}
	op.fmOut.Vecs = op.fmOut.Vecs[:0]
	op.fmOut.Vecs = append(op.fmOut.Vecs, b.Vecs...)
	if withBuild {
		op.fmOut.Vecs = append(op.fmOut.Vecs, op.fmBuild...)
	}
	op.fmOut.Sel = sel
	op.fmOut.NumRows = b.NumRows
	return op.fmOut
}

// nextProbeBatch pulls from the live left child, or — in grace mode — first
// partitions the entire left input, then streams partition probe files
// (joined against per-partition tables).
func (op *HashJoinOp) nextProbeBatch() (*vector.Batch, error) {
	if !op.graced {
		b, err := op.left.Next()
		if err != nil || b == nil {
			return nil, err
		}
		op.stats.RowsIn.Add(int64(b.NumActive()))
		return b, nil
	}
	// Grace mode: ensure the probe side is fully partitioned.
	if op.probeFiles == nil {
		if err := op.partitionProbeSide(); err != nil {
			return nil, err
		}
	}
	for {
		if op.partProbeRd != nil {
			if op.partProbeB == nil {
				op.partProbeB = vector.NewBatch(op.left.Schema(), op.tc.Pool.BatchSize())
			}
			if err := fault.Hit(op.tc.Ctx, fault.SpillRead); err != nil {
				return nil, err
			}
			err := op.partProbeRd.ReadBatch(op.partProbeB)
			if err == nil {
				return op.partProbeB, nil
			}
			if err != io.EOF {
				return nil, fault.ClassifyIO(fault.SpillRead, err)
			}
			op.partProbeRd = nil
		}
		// Advance to the next partition: load its build table.
		if op.curPart >= gracePartitions {
			return nil, nil
		}
		p := op.curPart
		op.curPart++
		if err := op.loadPartition(p); err != nil {
			return nil, err
		}
	}
}

// partitionProbeSide routes every left batch to a probe partition file.
func (op *HashJoinOp) partitionProbeSide() error {
	if err := op.openPartFiles(&op.probeFiles, &op.probeWs, "join-probe"); err != nil {
		return err
	}
	for {
		b, err := op.left.Next()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		op.stats.RowsIn.Add(int64(b.NumActive()))
		op.tc.Expr.ResetPerBatch()
		if err := op.evalKeys(op.leftKeys, b); err != nil {
			return err
		}
		// All active rows are written (NULL keys hash via the null seed to
		// a stable partition and are handled by the per-partition probe).
		err = op.partitionOut(b, b.Sel, op.probeWs)
		op.releaseKeys()
		if err != nil {
			return err
		}
	}
	for _, w := range op.probeWs {
		if err := w.Close(); err != nil {
			return err
		}
	}
	return nil
}

// loadPartition builds the in-memory table for grace partition p and opens
// its probe stream.
func (op *HashJoinOp) loadPartition(p int) error {
	op.merging = true
	defer func() { op.merging = false }()
	op.tbl = ht.New(op.keyTypes, op.payloadW)
	op.tbl.Guard = op.tc.Cancelled
	bf := op.buildFiles[p]
	if _, err := bf.Seek(0, io.SeekStart); err != nil {
		return err
	}
	rd := newSerdeReader(bf, op.right.Schema())
	buf := vector.NewBatch(op.right.Schema(), op.tc.Pool.BatchSize())
	for {
		// Per-batch cancellation + transient-I/O classification while
		// rebuilding a grace partition's table from spill.
		if err := op.tc.Cancelled(); err != nil {
			return err
		}
		err := rd.ReadBatch(buf)
		if err == io.EOF {
			break
		}
		if err != nil {
			return fault.ClassifyIO(fault.SpillRead, err)
		}
		if err := op.insertBuildBatch(buf, op.tbl); err != nil {
			return err
		}
	}
	pf := op.probeFiles[p]
	if _, err := pf.Seek(0, io.SeekStart); err != nil {
		return err
	}
	op.partProbeRd = newSerdeReader(pf, op.left.Schema())
	return nil
}

// startProbe prepares per-batch probe state: adaptive compaction, key
// evaluation, hashing, and the vectorized Find.
func (op *HashJoinOp) startProbe(b *vector.Batch) error {
	// Adaptive batch compaction (§4.6, Fig. 9): sparse batches gather into
	// a private dense batch before probing so the candidate loads saturate
	// memory bandwidth and downstream gathers run dense.
	if op.tc.EnableCompaction && b.Sparsity() > op.tc.CompactionThreshold {
		if op.compacted == nil {
			op.compacted = vector.NewBatch(op.left.Schema(), b.Capacity())
		}
		b.GatherInto(op.compacted)
		b = op.compacted
		op.stats.Compactions.Add(1)
	}
	op.probeBatch = b
	n := b.NumRows
	op.ensureCap(n)
	op.tc.Expr.ResetPerBatch()
	if err := op.evalKeys(op.leftKeys, b); err != nil {
		return err
	}
	op.nullSel = op.nullSel[:0]
	sel := op.nonNullKeySel(b, &op.nullSel)
	hashKeyVectorsScratch(op.keyVecs, sel, n, op.hashes, &op.lanes)
	if err := op.tbl.Find(op.keyVecs, op.hashes, sel, n, op.rowIDs); err != nil {
		op.releaseKeys()
		return err
	}
	op.releaseKeys()

	// Initialize chain walk state.
	op.probeSel = op.probeSel[:0]
	if sel == nil {
		for i := 0; i < n; i++ {
			op.probeSel = append(op.probeSel, int32(i))
		}
	} else {
		op.probeSel = append(op.probeSel, sel...)
	}
	for _, i := range op.probeSel {
		op.chain[i] = op.rowIDs[i]
		op.matchedAny[i] = false
	}
	op.probePos = 0
	op.nullPos = 0
	return nil
}

// emitMatches continues emitting join results for the current probe batch.
// Returns true when the output batch filled up (call again to continue).
func (op *HashJoinOp) emitMatches() bool {
	b := op.probeBatch
	out := op.out
	leftW := len(b.Vecs)
	for op.probePos < len(op.probeSel) {
		i := op.probeSel[op.probePos]
		switch op.joinType {
		case InnerJoin, LeftOuterJoin:
			for op.chain[i] != -1 {
				if out.NumRows == out.Capacity() {
					return true
				}
				row := op.chain[i]
				op.chain[i] = op.tbl.Next(row)
				op.matchedAny[i] = true
				o := out.NumRows
				for c, v := range b.Vecs {
					out.Vecs[c].CopyRow(o, v, int(i))
				}
				pay := op.tbl.PayloadBytes(row)
				for c, t := range op.buildTypes {
					decodeSlot(pay[op.buildOffs[c]:], t, out.Vecs[leftW+c], o, op.tbl)
				}
				out.NumRows++
			}
			if op.joinType == LeftOuterJoin && !op.matchedAny[i] {
				if out.NumRows == out.Capacity() {
					return true
				}
				o := out.NumRows
				for c, v := range b.Vecs {
					out.Vecs[c].CopyRow(o, v, int(i))
				}
				for c := range op.buildTypes {
					out.Vecs[leftW+c].SetNull(o)
				}
				out.NumRows++
				op.matchedAny[i] = true
			}
		case LeftSemiJoin:
			if op.chain[i] != -1 {
				if out.NumRows == out.Capacity() {
					return true
				}
				o := out.NumRows
				for c, v := range b.Vecs {
					out.Vecs[c].CopyRow(o, v, int(i))
				}
				out.NumRows++
			}
		case LeftAntiJoin:
			if op.chain[i] == -1 {
				if out.NumRows == out.Capacity() {
					return true
				}
				o := out.NumRows
				for c, v := range b.Vecs {
					out.Vecs[c].CopyRow(o, v, int(i))
				}
				out.NumRows++
			}
		}
		op.probePos++
	}
	// NULL-key probe rows: never match; anti emits them, outer pads NULLs.
	for op.nullPos < len(op.nullSel) {
		i := op.nullSel[op.nullPos]
		switch op.joinType {
		case LeftAntiJoin:
			if out.NumRows == out.Capacity() {
				return true
			}
			o := out.NumRows
			for c, v := range b.Vecs {
				out.Vecs[c].CopyRow(o, v, int(i))
			}
			out.NumRows++
		case LeftOuterJoin:
			if out.NumRows == out.Capacity() {
				return true
			}
			o := out.NumRows
			for c, v := range b.Vecs {
				out.Vecs[c].CopyRow(o, v, int(i))
			}
			for c := range op.buildTypes {
				out.Vecs[leftW+c].SetNull(o)
			}
			out.NumRows++
		}
		op.nullPos++
	}
	return false
}

// Close implements Operator.
func (op *HashJoinOp) Close() error {
	op.tc.Mem.ReleaseAll(op.consumer)
	for _, f := range op.buildFiles {
		if f != nil {
			f.Close()
			os.Remove(f.Name())
		}
	}
	for _, f := range op.probeFiles {
		if f != nil {
			f.Close()
			os.Remove(f.Name())
		}
	}
	op.buildFiles, op.probeFiles = nil, nil
	if err := op.left.Close(); err != nil {
		op.right.Close()
		return err
	}
	return op.right.Close()
}

// newSerdeReader is a narrow indirection so join files avoid importing serde
// twice under different names.
func newSerdeReader(f *os.File, schema *types.Schema) *serde.Reader {
	return serde.NewReader(f, schema)
}
