package exec

import (
	"bytes"
	"container/heap"
	"context"
	"fmt"
	"io"
	"os"
	"sort"

	"photon/internal/fault"
	"photon/internal/mem"
	"photon/internal/serde"
	"photon/internal/types"
	"photon/internal/vector"
)

// SortKey orders by one column. NULLs sort first ascending, last descending
// (Spark semantics).
type SortKey struct {
	Col  int
	Desc bool
}

// compareVecRows compares column values at (va, i) vs (vb, j): -1/0/1 with
// NULLs smallest.
func compareVecRows(va *vector.Vector, i int, vb *vector.Vector, j int) int {
	an, bn := va.Nulls[i] != 0, vb.Nulls[j] != 0
	if an || bn {
		switch {
		case an && bn:
			return 0
		case an:
			return -1
		default:
			return 1
		}
	}
	switch va.Type.ID {
	case types.Bool:
		return int(va.Bool[i]) - int(vb.Bool[j])
	case types.Int32, types.Date:
		a, b := va.I32[i], vb.I32[j]
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		}
		return 0
	case types.Int64, types.Timestamp:
		a, b := va.I64[i], vb.I64[j]
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		}
		return 0
	case types.Float64:
		a, b := va.F64[i], vb.F64[j]
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		}
		return 0
	case types.Decimal:
		return va.Dec[i].Cmp(vb.Dec[j])
	case types.String:
		return bytes.Compare(va.Str[i], vb.Str[j])
	}
	return 0
}

// compareBatchRows applies the sort keys to rows of two batches.
func compareBatchRows(a *vector.Batch, i int, b *vector.Batch, j int, keys []SortKey) int {
	for _, k := range keys {
		c := compareVecRows(a.Vecs[k.Col], i, b.Vecs[k.Col], j)
		if c != 0 {
			if k.Desc {
				return -c
			}
			return c
		}
	}
	return 0
}

// estimateBatchBytes approximates a batch's retained footprint.
func estimateBatchBytes(b *vector.Batch) int64 {
	var total int64
	for _, v := range b.Vecs {
		w := v.Type.FixedWidth()
		if w == 0 {
			w = 16
			for i := 0; i < b.NumRows; i++ {
				total += int64(len(v.Str[i]))
			}
		}
		total += int64(w+1) * int64(b.NumRows)
	}
	return total
}

// SortOp is an external merge sort: input batches buffer in memory under a
// reservation; on pressure the buffer is sorted and written as a run, and
// output merges the in-memory buffer with all runs.
type SortOp struct {
	base
	child Operator
	keys  []SortKey

	buffered []*vector.Batch
	bufBytes int64
	consumer *mem.FuncConsumer

	runs []*os.File

	inputDone bool
	merge     *mergeHeap
	memIter   *memCursor
	out       *vector.Batch
}

// NewSort builds a sort operator.
func NewSort(child Operator, keys []SortKey) *SortOp {
	s := &SortOp{child: child, keys: keys}
	s.schema = child.Schema()
	s.stats.Name = "Sort"
	return s
}

// Open implements Operator.
func (s *SortOp) Open(tc *TaskCtx) error {
	s.tc = tc
	s.consumer = &mem.FuncConsumer{ConsumerName: "Sort", SpillFunc: s.spill}
	s.inputDone = false
	s.buffered = nil
	s.bufBytes = 0
	return s.child.Open(tc)
}

// sortedRowOrder sorts the buffered rows and returns (batchIdx, rowIdx)
// pairs in order.
func sortedRowOrder(buffered []*vector.Batch, keys []SortKey) [][2]int32 {
	var order [][2]int32
	for bi, b := range buffered {
		n := b.NumActive()
		for k := 0; k < n; k++ {
			order = append(order, [2]int32{int32(bi), int32(b.RowIndex(k))})
		}
	}
	sort.SliceStable(order, func(x, y int) bool {
		a, b := order[x], order[y]
		return compareBatchRows(buffered[a[0]], int(a[1]), buffered[b[0]], int(b[1]), keys) < 0
	})
	return order
}

// spill sorts the current buffer and writes it as a run file.
func (s *SortOp) spill(need int64) (int64, error) {
	if len(s.buffered) == 0 || s.tc.SpillDir == "" {
		return 0, nil
	}
	f, err := s.tc.NewSpillFile("sort-run")
	if err != nil {
		return 0, err
	}
	w := serde.NewWriter(f)
	order := sortedRowOrder(s.buffered, s.keys)
	out := vector.NewBatch(s.schema, s.tc.Pool.BatchSize())
	for _, ref := range order {
		src := s.buffered[ref[0]]
		i := out.NumRows
		for c, v := range src.Vecs {
			out.Vecs[c].CopyRow(i, v, int(ref[1]))
		}
		out.NumRows++
		if out.NumRows == out.Capacity() {
			if err := w.WriteBatch(out); err != nil {
				return 0, fault.ClassifyIO(fault.SpillWrite, err)
			}
			out.Reset()
		}
	}
	if out.NumRows > 0 {
		if err := w.WriteBatch(out); err != nil {
			return 0, fault.ClassifyIO(fault.SpillWrite, err)
		}
	}
	if err := w.Close(); err != nil {
		return 0, fault.ClassifyIO(fault.SpillWrite, err)
	}
	s.runs = append(s.runs, f)
	freed := s.bufBytes
	s.tc.Mem.Release(s.consumer, s.bufBytes)
	s.buffered = nil
	s.bufBytes = 0
	s.stats.SpillCount.Add(1)
	s.stats.SpillBytes.Add(freed)
	return freed, nil
}

// consume drains the child into the buffer.
func (s *SortOp) consume() error {
	for {
		// Batch-boundary cancellation check (sort input drain).
		if err := s.tc.Cancelled(); err != nil {
			return err
		}
		b, err := s.child.Next()
		if err != nil {
			return err
		}
		if b == nil {
			return nil
		}
		s.stats.RowsIn.Add(int64(b.NumActive()))
		s.tc.ReportProgress(int64(b.NumActive()), 0)
		if b.NumActive() == 0 {
			continue
		}
		cl := b.Clone()
		sz := estimateBatchBytes(cl)
		if err := s.tc.Mem.Reserve(s.consumer, sz); err != nil {
			return err
		}
		// A self-spill inside Reserve may have flushed the buffer; the new
		// batch still joins the (possibly empty) buffer.
		s.buffered = append(s.buffered, cl)
		s.bufBytes += sz
		s.stats.observePeak(s.bufBytes)
	}
}

// Next implements Operator.
func (s *SortOp) Next() (*vector.Batch, error) {
	var out *vector.Batch
	err := s.timed(func() error {
		if !s.inputDone {
			if err := s.consume(); err != nil {
				return err
			}
			s.inputDone = true
			if err := s.initMerge(); err != nil {
				return err
			}
		}
		var err error
		out, err = s.emit()
		return err
	})
	if err != nil {
		return nil, err
	}
	if out != nil {
		s.stats.RowsOut.Add(int64(out.NumRows))
		s.stats.BatchesOut.Add(1)
	}
	return out, nil
}

// memCursor iterates the sorted in-memory buffer.
type memCursor struct {
	buffered []*vector.Batch
	order    [][2]int32
	pos      int
}

func (m *memCursor) current() (*vector.Batch, int) {
	ref := m.order[m.pos]
	return m.buffered[ref[0]], int(ref[1])
}

// runCursor streams one spilled run.
type runCursor struct {
	rd    *serde.Reader
	batch *vector.Batch
	pos   int
	done  bool
	tc    *TaskCtx
}

func (rc *runCursor) advance() error {
	rc.pos++
	if rc.pos < rc.batch.NumRows {
		return nil
	}
	// spill-read failpoint + transient-I/O classification: a flaky read of a
	// spilled sort run retries the task rather than failing the query.
	var ctx context.Context
	if rc.tc != nil {
		ctx = rc.tc.Ctx
	}
	if err := fault.Hit(ctx, fault.SpillRead); err != nil {
		return err
	}
	err := rc.rd.ReadBatch(rc.batch)
	if err == io.EOF {
		rc.done = true
		return nil
	}
	if err != nil {
		return fault.ClassifyIO(fault.SpillRead, err)
	}
	rc.pos = 0
	return nil
}

// mergeHeap merges the memory cursor and run cursors.
type mergeHeap struct {
	keys []SortKey
	mem  *memCursor
	runs []*runCursor
	// items: -1 = memory cursor, else run index.
	items []int
}

func (h *mergeHeap) rowOf(item int) (*vector.Batch, int) {
	if item == -1 {
		return h.mem.current()
	}
	rc := h.runs[item]
	return rc.batch, rc.pos
}

func (h *mergeHeap) Len() int { return len(h.items) }
func (h *mergeHeap) Less(x, y int) bool {
	ba, ia := h.rowOf(h.items[x])
	bb, ib := h.rowOf(h.items[y])
	return compareBatchRows(ba, ia, bb, ib, h.keys) < 0
}
func (h *mergeHeap) Swap(x, y int) { h.items[x], h.items[y] = h.items[y], h.items[x] }
func (h *mergeHeap) Push(x any)    { h.items = append(h.items, x.(int)) }
func (h *mergeHeap) Pop() any {
	old := h.items
	n := len(old)
	x := old[n-1]
	h.items = old[:n-1]
	return x
}

// initMerge prepares output iteration over buffer + runs.
func (s *SortOp) initMerge() error {
	s.merge = &mergeHeap{keys: s.keys}
	if len(s.buffered) > 0 {
		s.memIter = &memCursor{buffered: s.buffered, order: sortedRowOrder(s.buffered, s.keys)}
		if len(s.memIter.order) > 0 {
			s.merge.items = append(s.merge.items, -1)
			s.merge.mem = s.memIter
		}
	}
	for ri, f := range s.runs {
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			return err
		}
		rc := &runCursor{rd: serde.NewReader(f, s.schema), batch: vector.NewBatch(s.schema, s.tc.Pool.BatchSize()), pos: -1, tc: s.tc}
		if err := rc.advance(); err != nil {
			return err
		}
		if !rc.done {
			s.merge.runs = append(s.merge.runs, rc)
			s.merge.items = append(s.merge.items, len(s.merge.runs)-1)
		} else {
			_ = ri
		}
	}
	heap.Init(s.merge)
	return nil
}

// emit produces the next sorted output batch from the merge heap. The merge
// loop checks cancellation per emitted batch, so a cancelled query aborts a
// giant merge promptly even when the consumer isn't polling the context.
func (s *SortOp) emit() (*vector.Batch, error) {
	if err := s.tc.Cancelled(); err != nil {
		return nil, err
	}
	if s.out == nil {
		s.out = vector.NewBatch(s.schema, s.tc.Pool.BatchSize())
	}
	s.out.Reset()
	for s.out.NumRows < s.out.Capacity() && s.merge.Len() > 0 {
		item := s.merge.items[0]
		b, i := s.merge.rowOf(item)
		o := s.out.NumRows
		for c, v := range b.Vecs {
			s.out.Vecs[c].CopyRow(o, v, i)
		}
		s.out.NumRows++
		// Advance the winning cursor and restore heap order.
		exhausted := false
		if item == -1 {
			s.memIter.pos++
			exhausted = s.memIter.pos >= len(s.memIter.order)
		} else {
			rc := s.merge.runs[item]
			if err := rc.advance(); err != nil {
				return nil, err
			}
			exhausted = rc.done
		}
		if exhausted {
			heap.Pop(s.merge)
		} else {
			heap.Fix(s.merge, 0)
		}
	}
	if s.out.NumRows == 0 {
		return nil, nil
	}
	return s.out, nil
}

// Close implements Operator.
func (s *SortOp) Close() error {
	s.tc.Mem.ReleaseAll(s.consumer)
	for _, f := range s.runs {
		f.Close()
		os.Remove(f.Name())
	}
	s.runs = nil
	return s.child.Close()
}

// TopKOp keeps the K smallest rows under the sort keys (ORDER BY + LIMIT).
type TopKOp struct {
	base
	child Operator
	keys  []SortKey
	k     int

	rows    *topkHeap
	emitted bool
	out     *vector.Batch
}

// topkHeap is a max-heap of materialized rows (worst row at the top).
type topkHeap struct {
	schema *types.Schema
	keys   []SortKey
	batch  *vector.Batch // storage: one slot per held row
	idx    []int32       // heap order over batch slots
}

func (h *topkHeap) Len() int { return len(h.idx) }
func (h *topkHeap) Less(x, y int) bool {
	// Max-heap: "greater" rows bubble to the top.
	return compareBatchRows(h.batch, int(h.idx[x]), h.batch, int(h.idx[y]), h.keys) > 0
}
func (h *topkHeap) Swap(x, y int) { h.idx[x], h.idx[y] = h.idx[y], h.idx[x] }
func (h *topkHeap) Push(x any)    { h.idx = append(h.idx, x.(int32)) }
func (h *topkHeap) Pop() any {
	old := h.idx
	n := len(old)
	x := old[n-1]
	h.idx = old[:n-1]
	return x
}

// NewTopK builds a top-K operator (k > 0).
func NewTopK(child Operator, keys []SortKey, k int) (*TopKOp, error) {
	if k <= 0 {
		return nil, fmt.Errorf("exec: TopK requires k > 0, got %d", k)
	}
	t := &TopKOp{child: child, keys: keys, k: k}
	t.schema = child.Schema()
	t.stats.Name = fmt.Sprintf("TopK(%d)", k)
	return t, nil
}

// Open implements Operator.
func (t *TopKOp) Open(tc *TaskCtx) error {
	t.tc = tc
	t.emitted = false
	t.rows = &topkHeap{
		schema: t.schema,
		keys:   t.keys,
		batch:  vector.NewBatch(t.schema, t.k+1),
	}
	return t.child.Open(tc)
}

// Next implements Operator.
func (t *TopKOp) Next() (*vector.Batch, error) {
	var out *vector.Batch
	err := t.timed(func() error {
		if !t.emitted {
			if err := t.consume(); err != nil {
				return err
			}
			t.emitted = true
			out = t.materialize()
			return nil
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if out != nil {
		t.stats.RowsOut.Add(int64(out.NumRows))
		t.stats.BatchesOut.Add(1)
	}
	return out, nil
}

func (t *TopKOp) consume() error {
	h := t.rows
	free := []int32{}
	for s := 0; s <= t.k; s++ {
		free = append(free, int32(s))
	}
	// Pop slots from free as rows are held; returned when evicted.
	take := func() int32 {
		s := free[len(free)-1]
		free = free[:len(free)-1]
		return s
	}
	for {
		b, err := t.child.Next()
		if err != nil {
			return err
		}
		if b == nil {
			return nil
		}
		t.stats.RowsIn.Add(int64(b.NumActive()))
		n := b.NumActive()
		for r := 0; r < n; r++ {
			i := b.RowIndex(r)
			if h.Len() == t.k {
				// Compare against the current worst; skip if not better.
				worst := h.idx[0]
				if compareBatchRowsMixed(b, i, h.batch, int(worst), t.keys) >= 0 {
					continue
				}
				heap.Pop(h)
				free = append(free, worst)
			}
			slot := take()
			for c, v := range b.Vecs {
				h.batch.Vecs[c].CopyRow(int(slot), v, i)
				// Deep-copy strings: the source batch will be reused.
				if v.Type.ID == types.String && h.batch.Vecs[c].Nulls[slot] == 0 {
					h.batch.Vecs[c].Str[slot] = append([]byte(nil), h.batch.Vecs[c].Str[slot]...)
				}
			}
			heap.Push(h, slot)
		}
	}
}

// compareBatchRowsMixed compares a row from one batch against a row of
// another (same schema).
func compareBatchRowsMixed(a *vector.Batch, i int, b *vector.Batch, j int, keys []SortKey) int {
	for _, k := range keys {
		c := compareVecRows(a.Vecs[k.Col], i, b.Vecs[k.Col], j)
		if c != 0 {
			if k.Desc {
				return -c
			}
			return c
		}
	}
	return 0
}

// materialize pops the heap into ascending order.
func (t *TopKOp) materialize() *vector.Batch {
	h := t.rows
	n := h.Len()
	slots := make([]int32, n)
	for i := n - 1; i >= 0; i-- {
		slots[i] = heap.Pop(h).(int32)
	}
	out := vector.NewBatch(t.schema, max(n, 1))
	for _, s := range slots {
		o := out.NumRows
		for c := range out.Vecs {
			out.Vecs[c].CopyRow(o, h.batch.Vecs[c], int(s))
		}
		out.NumRows++
	}
	if out.NumRows == 0 {
		return nil
	}
	return out
}

// Close implements Operator.
func (t *TopKOp) Close() error { return t.child.Close() }

// LimitOp passes through the first N rows.
type LimitOp struct {
	base
	child Operator
	n     int64
	seen  int64
}

// NewLimit builds LIMIT n.
func NewLimit(child Operator, n int64) *LimitOp {
	l := &LimitOp{child: child, n: n}
	l.schema = child.Schema()
	l.stats.Name = fmt.Sprintf("Limit(%d)", n)
	return l
}

// Open implements Operator.
func (l *LimitOp) Open(tc *TaskCtx) error {
	l.tc = tc
	l.seen = 0
	return l.child.Open(tc)
}

// Next implements Operator.
func (l *LimitOp) Next() (*vector.Batch, error) {
	if l.seen >= l.n {
		return nil, nil
	}
	b, err := l.child.Next()
	if err != nil || b == nil {
		return nil, err
	}
	act := int64(b.NumActive())
	if l.seen+act <= l.n {
		l.seen += act
		l.stats.RowsOut.Add(act)
		return b, nil
	}
	// Truncate the batch's selection to the remaining quota.
	keep := l.n - l.seen
	sel := make([]int32, 0, keep)
	for i := 0; int64(i) < keep; i++ {
		sel = append(sel, int32(b.RowIndex(i)))
	}
	b.SetSel(sel)
	l.seen = l.n
	l.stats.RowsOut.Add(keep)
	return b, nil
}

// Close implements Operator.
func (l *LimitOp) Close() error { return l.child.Close() }
