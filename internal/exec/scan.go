package exec

import (
	"photon/internal/types"
	"photon/internal/vector"
)

// MemScan streams an in-memory table (a slice of batches). The
// micro-benchmarks read from in-memory tables "to isolate the effects of
// Photon's execution improvements" (§6.1); the storage layer provides
// file-backed scans.
type MemScan struct {
	base
	batches []*vector.Batch
	pos     int
	// Projection maps output columns to source columns; nil = all.
	Projection []int
	out        *vector.Batch
}

// Stored batches are immutable: every emit wraps the stored vectors in a
// fresh batch header, so downstream selection changes never touch shared
// state and concurrent tasks may scan the same table (the multi-threaded
// executor model, §2.2).

// NewMemScan builds a scan over pre-built batches sharing schema.
func NewMemScan(schema *types.Schema, batches []*vector.Batch) *MemScan {
	s := &MemScan{batches: batches}
	s.schema = schema
	s.stats.Name = "MemScan"
	return s
}

// WithProjection restricts the scan to the given source column ordinals.
func (s *MemScan) WithProjection(cols []int) *MemScan {
	s.Projection = cols
	s.schema = s.schema.Project(cols)
	return s
}

// Open implements Operator.
func (s *MemScan) Open(tc *TaskCtx) error {
	s.tc = tc
	s.pos = 0
	return nil
}

// Next implements Operator. Batches are passed through zero-copy (projected
// scans share the underlying vectors).
func (s *MemScan) Next() (*vector.Batch, error) {
	var out *vector.Batch
	err := s.timed(func() error {
		// Batch-boundary cancellation check: a cancelled query stops its
		// scan before emitting the next batch.
		if err := s.tc.Cancelled(); err != nil {
			return err
		}
		if s.pos >= len(s.batches) {
			return nil
		}
		src := s.batches[s.pos]
		s.pos++
		if s.out == nil {
			s.out = vector.WrapBatch(s.schema, nil, nil, 0)
			s.out.SetCapacity(src.Capacity())
		}
		s.out.Vecs = s.out.Vecs[:0]
		if s.Projection == nil {
			s.out.Vecs = append(s.out.Vecs, src.Vecs...)
		} else {
			for _, c := range s.Projection {
				s.out.Vecs = append(s.out.Vecs, src.Vecs[c])
			}
		}
		s.out.Sel = nil
		s.out.NumRows = src.NumRows
		out = s.out
		s.stats.RowsOut.Add(int64(out.NumActive()))
		s.stats.BatchesOut.Add(1)
		return nil
	})
	return out, err
}

// Close implements Operator.
func (s *MemScan) Close() error { return nil }

// BuildBatches materializes rows into batches of the given size (test and
// data-generator helper).
func BuildBatches(schema *types.Schema, rows [][]any, batchSize int) []*vector.Batch {
	if batchSize <= 0 {
		batchSize = vector.DefaultBatchSize
	}
	var out []*vector.Batch
	for start := 0; start < len(rows); start += batchSize {
		end := min(start+batchSize, len(rows))
		b := vector.NewBatch(schema, batchSize)
		for _, r := range rows[start:end] {
			b.AppendRow(r...)
		}
		out = append(out, b)
	}
	return out
}
