package exec

import (
	"context"
	"errors"
	"testing"

	"photon/internal/expr"
	"photon/internal/rf"
	"photon/internal/types"
	"photon/internal/vector"
)

// cancelOnNextSource emits one giant batch and cancels the query context as
// it hands the batch over — modelling a user cancelling mid-build. A prompt
// consumer must abandon the batch at the next intra-batch checkpoint rather
// than processing all of it.
type cancelOnNextSource struct {
	base
	batch  *vector.Batch
	cancel context.CancelFunc
	done   bool
}

func (s *cancelOnNextSource) Open(tc *TaskCtx) error { s.tc = tc; return nil }
func (s *cancelOnNextSource) Close() error           { return nil }
func (s *cancelOnNextSource) Next() (*vector.Batch, error) {
	if s.done {
		return nil, nil
	}
	s.done = true
	s.cancel()
	return s.batch, nil
}

// giantBatch builds one batch of n sequential int64 keys.
func giantBatch(schema *types.Schema, n int) *vector.Batch {
	b := vector.NewBatch(schema, n)
	for i := 0; i < n; i++ {
		b.Vecs[0].I64[i] = int64(i)
	}
	b.NumRows = n
	return b
}

// TestJoinBuildCancelsWithinGiantBatch: the hash-join build loop must
// observe cancellation inside a single batch much larger than the
// cancellation window, not only at batch boundaries.
func TestJoinBuildCancelsWithinGiantBatch(t *testing.T) {
	const n = 1 << 20 // 16 cancellation windows
	schema := intSchema("rid")
	ctx, cancel := context.WithCancel(context.Background())
	src := &cancelOnNextSource{batch: giantBatch(schema, n), cancel: cancel}
	src.schema = schema

	left := NewMemScan(intSchema("lid"), BuildBatches(intSchema("lid"), [][]any{{int64(1)}}, 4))
	j, err := NewHashJoin(left, src,
		[]expr.Expr{expr.Col(0, "lid", types.Int64Type)},
		[]expr.Expr{expr.Col(0, "rid", types.Int64Type)}, InnerJoin)
	if err != nil {
		t.Fatal(err)
	}
	tc := newTC(t)
	tc.Ctx = ctx
	_, err = CollectRows(j, tc)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	// Promptness: at most one cancellation window of rows may have been
	// inserted before the build noticed.
	if got := j.tbl.NumRows(); got > cancelCheckRows {
		t.Fatalf("build inserted %d rows after cancellation (window=%d)", got, cancelCheckRows)
	}
}

// TestRuntimeFilterBuildCancelsWithinGiantBatch: the filter-build tap checks
// cancellation between windows of one giant batch too.
func TestRuntimeFilterBuildCancelsWithinGiantBatch(t *testing.T) {
	const n = 1 << 20
	schema := intSchema("k")
	ctx, cancel := context.WithCancel(context.Background())
	src := &cancelOnNextSource{batch: giantBatch(schema, n), cancel: cancel}
	src.schema = schema

	f := rf.NewFilter([]types.DataType{types.Int64Type}, n)
	op := NewRuntimeFilterBuild(src, []int{0}, f)
	tc := newTC(t)
	tc.Ctx = ctx
	err := Drain(op, tc)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if got := f.Cols[0].N; got > cancelCheckRows {
		t.Fatalf("filter folded %d rows after cancellation (window=%d)", got, cancelCheckRows)
	}
}

// TestRuntimeFilterOpSelections: the probe-side operator must compose with
// an existing selection vector and with multi-column keys, and never drop a
// row whose keys all appear on the build side.
func TestRuntimeFilterOpSelections(t *testing.T) {
	schema := intSchema("a", "b")
	rows := [][]any{
		{int64(1), int64(10)},  // build match on both cols
		{int64(2), int64(99)},  // b misses
		{int64(3), int64(30)},  // build match on both cols
		{int64(99), int64(10)}, // a misses
		{nil, int64(10)},       // NULL key: droppable
	}
	src := NewMemScan(schema, BuildBatches(schema, rows, 64))

	f := rf.NewFilter([]types.DataType{types.Int64Type, types.Int64Type}, 4)
	build := vector.NewBatch(schema, 4)
	for i, kv := range [][2]int64{{1, 10}, {3, 30}, {5, 50}, {7, 70}} {
		build.Vecs[0].I64[i] = kv[0]
		build.Vecs[1].I64[i] = kv[1]
	}
	build.NumRows = 4
	var hs rf.HashScratch
	f.Add(build, []int{0, 1}, nil, 4, &hs)

	op := NewRuntimeFilter(src, []int{0, 1}, f, 0)
	got, err := CollectRows(op, newTC(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("filtered rows = %d (%v), want 2", len(got), got)
	}
	for _, r := range got {
		if !(r[0] == int64(1) || r[0] == int64(3)) {
			t.Fatalf("unexpected surviving row %v", r)
		}
	}
	// A nil / unusable filter is a pure pass-through.
	src2 := NewMemScan(schema, BuildBatches(schema, rows, 64))
	pass := NewRuntimeFilter(src2, []int{0, 1}, nil, 0)
	got2, err := CollectRows(pass, newTC(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(got2) != len(rows) {
		t.Fatalf("nil filter dropped rows: %d of %d", len(got2), len(rows))
	}
}
