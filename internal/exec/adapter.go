package exec

import (
	"photon/internal/types"
	"photon/internal/vector"
)

// RowIterator is the row-at-a-time interface of the legacy engine side
// (internal/rowengine). A nil row signals end of input.
type RowIterator interface {
	Schema() *types.Schema
	Open() error
	NextRow() ([]any, error)
	Close() error
}

// AdapterOp is the leaf "adapter" node of a Photon plan (§5.2): it takes
// data produced by the legacy engine's scan and exposes it to Photon as
// column batches. In the paper the scan already produces off-heap columnar
// data, so the adapter passes pointers without copying and the JNI call per
// batch costs ~a virtual call; here the zero-copy case is a columnar source
// (ColumnSource), while a true row source pays an explicit pivot, which the
// §6.3 benchmark quantifies.
type AdapterOp struct {
	base
	rows RowIterator
	// Calls counts boundary crossings (one per batch, amortized — §6.3).
	Calls int64
	out   *vector.Batch
}

// NewAdapter wraps a legacy row iterator as a Photon operator.
func NewAdapter(rows RowIterator) *AdapterOp {
	a := &AdapterOp{rows: rows}
	a.schema = rows.Schema()
	a.stats.Name = "Adapter"
	return a
}

// Open implements Operator.
func (a *AdapterOp) Open(tc *TaskCtx) error {
	a.tc = tc
	return a.rows.Open()
}

// Next implements Operator.
func (a *AdapterOp) Next() (*vector.Batch, error) {
	var out *vector.Batch
	err := a.timed(func() error {
		if a.out == nil {
			a.out = vector.NewBatch(a.schema, a.tc.Pool.BatchSize())
		}
		a.out.Reset()
		a.Calls++ // one boundary crossing per batch
		for a.out.NumRows < a.out.Capacity() {
			row, err := a.rows.NextRow()
			if err != nil {
				return err
			}
			if row == nil {
				break
			}
			a.out.AppendRow(row...)
		}
		if a.out.NumRows == 0 {
			return nil
		}
		out = a.out
		a.stats.RowsOut.Add(int64(out.NumRows))
		a.stats.BatchesOut.Add(1)
		return nil
	})
	return out, err
}

// Close implements Operator.
func (a *AdapterOp) Close() error { return a.rows.Close() }

// ColumnSource is the zero-copy adapter input: a source that already
// produces column batches (like Spark's OffHeapColumnVector scan). Wrapping
// it in a Photon plan costs one pointer-passing call per batch.
type ColumnSource interface {
	Schema() *types.Schema
	NextBatch() (*vector.Batch, error)
}

// TransitionOp is the top "transition" node of a Photon plan (§5.2): it
// pivots Photon's columnar output to rows for the legacy row-oriented
// engine. One such pivot exists even in pure legacy plans (scans produce
// columnar data), which is why a single transition on top of a Photon plan
// causes no regression.
type TransitionOp struct {
	child Operator
	tc    *TaskCtx
	stats OpStats

	cur   *vector.Batch
	pos   int
	row   []any
	Calls int64
}

// NewTransition wraps a Photon operator as a legacy row iterator.
func NewTransition(child Operator, tc *TaskCtx) *TransitionOp {
	return &TransitionOp{child: child, tc: tc}
}

// Schema implements RowIterator.
func (t *TransitionOp) Schema() *types.Schema { return t.child.Schema() }

// Open implements RowIterator.
func (t *TransitionOp) Open() error {
	t.stats.Name = "Transition"
	return t.child.Open(t.tc)
}

// NextRow implements RowIterator: the column-to-row pivot.
func (t *TransitionOp) NextRow() ([]any, error) {
	for {
		if t.cur != nil && t.pos < t.cur.NumActive() {
			i := t.cur.RowIndex(t.pos)
			t.pos++
			if t.row == nil {
				t.row = make([]any, len(t.cur.Vecs))
			}
			for c, v := range t.cur.Vecs {
				t.row[c] = v.Get(i)
			}
			t.stats.RowsOut.Add(1)
			return t.row, nil
		}
		b, err := t.child.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			return nil, nil
		}
		t.Calls++ // one boundary crossing per batch
		t.cur = b
		t.pos = 0
	}
}

// Close implements RowIterator.
func (t *TransitionOp) Close() error { return t.child.Close() }

// Stats exposes transition metrics.
func (t *TransitionOp) Stats() *OpStats { return &t.stats }
