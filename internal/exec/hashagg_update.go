package exec

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"photon/internal/expr"
	"photon/internal/fault"
	"photon/internal/ht"
	"photon/internal/kernels"
	"photon/internal/serde"
	"photon/internal/types"
	"photon/internal/vector"
)

// consumeInput drains the child, updating aggregation states batch by batch.
func (op *HashAggOp) consumeInput() error {
	for {
		// Batch-boundary cancellation check (build side of the agg).
		if err := op.tc.Cancelled(); err != nil {
			return err
		}
		b, err := op.child.Next()
		if err != nil {
			return err
		}
		if b == nil {
			return nil
		}
		op.stats.RowsIn.Add(int64(b.NumActive()))
		op.tc.ReportProgress(int64(b.NumActive()), 0)
		op.tc.Expr.ResetPerBatch()
		if op.mode == AggFinal {
			err = op.mergeBatch(b, op.tbl, &op.lists, true)
		} else {
			err = op.updateBatch(b)
		}
		if err != nil {
			return err
		}
		// Reservation phase for the next batch: reserve the table + list
		// growth since the last reservation; this is where spilling can
		// trigger (ours or another operator's).
		if err := op.reserveDelta(); err != nil {
			return err
		}
	}
}

// reserveDelta tops up the operator's reservation to its current footprint.
func (op *HashAggOp) reserveDelta() error {
	want := op.tbl.MemoryUsage() + op.listPool.Footprint() + int64(len(op.lists))*64
	if want > op.reserved {
		delta := want - op.reserved
		if err := op.tc.Mem.Reserve(op.consumer, delta); err != nil {
			return err
		}
		// A recursive self-spill may have zeroed op.reserved and replaced
		// the table; only count the delta against the *current* epoch.
		op.reserved += delta
		op.stats.observePeak(op.reserved)
	}
	return nil
}

// resolveGroups evaluates key expressions, hashes them, and resolves group
// rows through the vectorized hash table. When there are no keys, the single
// global group row 0 is used (created on demand).
func (op *HashAggOp) resolveGroups(b *vector.Batch, tbl *ht.Table) error {
	n := b.NumRows
	op.ensureScratch(n)
	if len(op.keyExprs) == 0 {
		if tbl.NumRows() == 0 {
			if err := op.ensureGlobalGroup(tbl); err != nil {
				return err
			}
		}
		apply(b.Sel, n, func(i int32) { op.rowIDs[i] = 0 })
		return nil
	}
	for c, k := range op.keyExprs {
		v, err := k.Eval(op.tc.Expr, b)
		if err != nil {
			return err
		}
		_, isCol := k.(*expr.ColRef)
		op.keyVecs[c] = v
		op.keyOwned[c] = !isCol
	}
	hashKeyVectorsScratch(op.keyVecs, b.Sel, n, op.hashes, &op.lanes)
	return tbl.FindOrInsert(op.keyVecs, op.hashes, b.Sel, n, op.rowIDs, op.inserted)
}

// releaseKeys returns pooled key vectors after an update pass.
func (op *HashAggOp) releaseKeys() {
	for c, v := range op.keyVecs {
		if op.keyOwned[c] {
			op.tc.Expr.Put(v)
			op.keyVecs[c] = nil
		}
	}
}

// ensureGlobalGroup creates the single group row for keyless aggregation.
func (op *HashAggOp) ensureGlobalGroup(tbl *ht.Table) error {
	ids := []int32{0}
	ins := []bool{false}
	return tbl.FindOrInsert(nil, []uint64{0}, nil, 1, ids, ins)
}

// laneScratch provides per-operator hash-lane scratch without per-batch
// allocation.
type laneScratch struct{ buf []uint64 }

func (ls *laneScratch) get(n int) []uint64 {
	if cap(ls.buf) < n {
		ls.buf = make([]uint64, n)
	}
	return ls.buf[:n]
}

// hashKeyVectorsScratch runs the hashing kernels over the key columns with
// caller-owned lane scratch (one dispatch per batch, §4.4 step 1).
func hashKeyVectorsScratch(keys []*vector.Vector, sel []int32, n int, hashes []uint64, ls *laneScratch) {
	for c, v := range keys {
		first := c == 0
		switch v.Type.ID {
		case types.String:
			if first {
				kernels.HashBytes(v.Str, v.Nulls, v.HasNulls(), sel, n, hashes)
			} else {
				kernels.RehashBytes(v.Str, v.Nulls, v.HasNulls(), sel, n, hashes)
			}
		default:
			lanes := u64Lanes(v, sel, n, ls)
			if first {
				kernels.HashU64(lanes, v.Nulls, v.HasNulls(), sel, n, hashes)
			} else {
				kernels.RehashU64(lanes, v.Nulls, v.HasNulls(), sel, n, hashes)
			}
		}
	}
}

// u64Lanes widens a fixed-width vector into raw 64-bit lanes for hashing.
func u64Lanes(v *vector.Vector, sel []int32, n int, ls *laneScratch) []uint64 {
	out := ls.get(n)
	switch v.Type.ID {
	case types.Bool:
		apply(sel, n, func(i int32) { out[i] = uint64(v.Bool[i]) })
	case types.Int32, types.Date:
		apply(sel, n, func(i int32) { out[i] = uint64(uint32(v.I32[i])) })
	case types.Int64, types.Timestamp:
		apply(sel, n, func(i int32) { out[i] = uint64(v.I64[i]) })
	case types.Float64:
		apply(sel, n, func(i int32) { out[i] = math.Float64bits(v.F64[i]) })
	case types.Decimal:
		// Narrow-marked vectors skip the 128-bit mix; the kernel produces
		// bit-identical lanes for values that fit int64, so hash layouts
		// (and spill partitioning) are unchanged either way.
		if v.Dec64 == vector.Dec64All && sel == nil {
			kernels.Dec64HashLanes(v.Dec, out, n)
		} else {
			apply(sel, n, func(i int32) { out[i] = v.Dec[i].Lo ^ uint64(v.Dec[i].Hi)*0x9e3779b97f4a7c15 })
		}
	}
	return out
}

// apply runs body over active rows (local copy of the expr helper).
func apply(sel []int32, n int, body func(i int32)) {
	if sel == nil {
		for i := 0; i < n; i++ {
			body(int32(i))
		}
		return
	}
	for _, i := range sel {
		body(i)
	}
}

// updateBatch processes one raw input batch (Complete/Partial modes).
func (op *HashAggOp) updateBatch(b *vector.Batch) error {
	if err := op.resolveGroups(b, op.tbl); err != nil {
		return err
	}
	defer op.releaseKeys()
	// Initialize states for newly created groups.
	if len(op.keyExprs) > 0 {
		apply(b.Sel, b.NumRows, func(i int32) {
			if op.inserted[i] {
				op.initState(op.tbl, op.rowIDs[i])
			}
		})
	} else if !op.globalInit {
		op.initState(op.tbl, 0)
		op.globalInit = true
	}
	// Fused narrow-decimal sum pass: all decimal sum/avg aggregates update
	// in one flat loop when the fast path is on (see updateDecimalSums).
	handled, err := op.updateDecimalSums(b)
	if err != nil {
		return err
	}
	// Per-aggregate vectorized update loops.
	for k, info := range op.infos {
		if handled != nil && handled[k] {
			continue
		}
		if err := op.updateAgg(b, k, info, op.tbl, &op.lists); err != nil {
			return err
		}
	}
	return nil
}

// decSumAgg is one decimal sum/avg aggregate inside the fused update pass.
// Narrow arguments arrive either as raw int64 lanes (lane != nil, produced
// by expr.EvalDec64Lanes without the widen pass) or as canonical Decimal128
// (dec, whose Lo limb IS the value while the aggregate stays narrow).
type decSumAgg struct {
	k        int
	off      int
	cntOff   int
	dec      []types.Decimal128
	lane     []int64
	nulls    []byte
	ovf      uint64
	hn       bool
	wide     bool
	narrowIn bool
	escaped  bool
	av       *vector.Vector
	owned    bool
	lanesV   *vector.Vector
}

// preAggMaxGroups caps the dense pre-aggregation scratch: above this many
// table rows the per-batch slab would outgrow the cache (and the memory),
// so updates fall back to the direct per-row loop.
const preAggMaxGroups = 1 << 16

// updateDecimalSums runs every decimal sum/avg aggregate over the batch in
// one fused pass. Narrow NULL-free aggregates against small tables take the
// batch-local pre-aggregation route: per row, each argument lane is added
// (overflow-tracked branch-free) into a dense per-group int64 scratch slab —
// all of a group's partial sums share one cache line — and the hash-table
// states are touched once per live group at flush time instead of once per
// input row. This is where the narrow-decimal fast path pays off on
// aggregation-heavy shapes (Q1: seven decimal accumulators per row): the
// per-row closure dispatch, payload lookups, count read-modify-writes, and
// canonical high-limb stores of the generic loops collapse into a handful of
// adds per row. Overflow anywhere escapes to the 128-bit path with identical
// results. Returns the per-aggregate handled mask, or nil when the pass does
// not apply (fast path disabled, or no decimal sums).
func (op *HashAggOp) updateDecimalSums(b *vector.Batch) ([]bool, error) {
	ctx := op.tc.Expr
	if !ctx.Dec64 || op.numDecSums == 0 {
		return nil, nil
	}
	if op.aggHandled == nil {
		op.aggHandled = make([]bool, len(op.infos))
		op.decSums = make([]decSumAgg, 0, op.numDecSums)
	}
	clear(op.aggHandled)
	op.decSums = op.decSums[:0]
	wide := op.sumWideFor(op.tbl)
	release := ctx.Dec64CacheScope(b.Sel, b.NumRows)
	defer release()
	for k, info := range op.infos {
		if info.spec.Distinct ||
			(info.spec.Kind != expr.AggSum && info.spec.Kind != expr.AggAvg) ||
			op.infoSumType(info).ID != types.Decimal {
			continue
		}
		ag := decSumAgg{k: k, off: info.off, cntOff: info.off + info.width - 8}
		if !wide[k] {
			lv, ok, err := ctx.EvalDec64Lanes(info.spec.Arg, b)
			if err != nil {
				op.putDecSumArgs(ctx)
				return nil, err
			}
			if ok {
				ag.lane, ag.nulls, ag.hn = lv.I64, lv.Nulls, lv.HasNulls()
				ag.lanesV, ag.narrowIn = lv, true
				op.decSums = append(op.decSums, ag)
				op.aggHandled[k] = true
				continue
			}
		}
		av, owned, err := evalChildExpr(ctx, info.spec.Arg, b)
		if err != nil {
			op.putDecSumArgs(ctx)
			return nil, err
		}
		if !wide[k] && !ctx.Dec64Qualified(av, b.Sel, b.NumRows) {
			wide[k] = true
			ctx.Dec128Batches++
		}
		ag.dec, ag.nulls, ag.hn = av.Dec, av.Nulls, av.HasNulls()
		ag.av, ag.owned = av, owned
		ag.wide, ag.narrowIn = wide[k], !wide[k]
		op.decSums = append(op.decSums, ag)
		op.aggHandled[k] = true
	}

	// Partition: narrow NULL-free aggregates pre-aggregate per group; the
	// rest (wide, or NULL-bearing input) update states per row. The dense
	// route only pays when batches concentrate many rows onto few groups
	// (Q1: four groups): near one row per group per batch (Q17's per-part
	// averages), the flush+reset pass would double the work, so high
	// group counts fall back to the direct loop.
	args := op.decSums
	nPre := 0
	if g := op.tbl.NumRows(); g <= preAggMaxGroups && g*4 <= b.NumActive() {
		for a := range args {
			if !args[a].wide && !args[a].hn {
				args[nPre], args[a] = args[a], args[nPre]
				nPre++
			}
		}
	}
	slab, keyOff, stride := op.tbl.PayloadSlab()
	if nPre > 0 {
		op.preAggDecimalSums(args[:nPre], b, slab, keyOff, stride)
	}
	if direct := args[nPre:]; len(direct) > 0 {
		rowIDs := op.rowIDs
		if b.Sel == nil {
			for i := 0; i < b.NumRows; i++ {
				base := int(rowIDs[i])*stride + keyOff
				fusedSumRow(direct, slab, base, i)
			}
		} else {
			for _, i := range b.Sel {
				base := int(rowIDs[i])*stride + keyOff
				fusedSumRow(direct, slab, base, int(i))
			}
		}
	}

	for a := range args {
		ag := &args[a]
		wide[ag.k] = ag.wide
		if ag.narrowIn {
			if ag.escaped {
				ctx.Dec64Escapes++
			} else {
				ctx.Dec64Batches++
			}
		}
		if ag.owned {
			ctx.Put(ag.av)
		}
		if ag.lanesV != nil {
			ctx.Put(ag.lanesV)
		}
		ag.av, ag.lanesV, ag.dec, ag.lane, ag.nulls = nil, nil, nil, nil, nil
	}
	return op.aggHandled, nil
}

// putDecSumArgs releases argument vectors collected so far (error unwind).
func (op *HashAggOp) putDecSumArgs(ctx *expr.Ctx) {
	for i := range op.decSums {
		if op.decSums[i].owned {
			ctx.Put(op.decSums[i].av)
		}
		if op.decSums[i].lanesV != nil {
			ctx.Put(op.decSums[i].lanesV)
		}
	}
}

// preAggDecimalSums is the batch-local pre-aggregation route for narrow
// NULL-free decimal sums: accumulate each aggregate into a dense per-group
// scratch column (groups × aggregates, one cache line per group), then fold
// the scratch into the hash-table states once per touched group. Overflow of
// a scratch accumulator replays that aggregate's batch through the 128-bit
// per-row adds; overflow folding a group total into its state promotes the
// aggregate for the rest of the table epoch. Either way results are
// identical — only the representation path changes.
func (op *HashAggOp) preAggDecimalSums(pre []decSumAgg, b *vector.Batch, slab []byte, keyOff, stride int) {
	// Distinct input sources: aggregates reading the same input (Q1's
	// sum+avg pairs over one column) share a scratch column, accumulated
	// once and folded into each member's state.
	srcOf := op.decSrcOf[:0]
	srcAgg := op.decSrcAgg[:0]
	for a := range pre {
		s := -1
		for j, c := range srcAgg {
			if sameDecSrc(&pre[a], &pre[c]) {
				s = j
				break
			}
		}
		if s < 0 {
			s = len(srcAgg)
			srcAgg = append(srcAgg, a)
		}
		srcOf = append(srcOf, s)
	}
	op.decSrcOf, op.decSrcAgg = srcOf, srcAgg
	nS := len(srcAgg)

	rows := op.tbl.NumRows()
	if need := rows * nS; cap(op.decAcc) < need {
		op.decAcc = make([]int64, need)
	}
	if cap(op.decCnt) < rows {
		op.decCnt = make([]int64, rows)
	}
	acc := op.decAcc[:rows*nS]
	cnt := op.decCnt[:rows]
	touched := op.decTouched[:0]
	rowIDs := op.rowIDs

	// Pass 1: per-group batch row counts and the touched-group list.
	if b.Sel == nil {
		for i := 0; i < b.NumRows; i++ {
			rid := rowIDs[i]
			if cnt[rid] == 0 {
				touched = append(touched, rid)
			}
			cnt[rid]++
		}
	} else {
		for _, i := range b.Sel {
			rid := rowIDs[i]
			if cnt[rid] == 0 {
				touched = append(touched, rid)
			}
			cnt[rid]++
		}
	}
	op.decTouched = touched

	// Pass 2: one tight accumulation loop per distinct source, overflow
	// tracked in a register rather than a per-row store to the descriptor.
	for s, ca := range srcAgg {
		ag := &pre[ca]
		var ovf uint64
		if lane := ag.lane; lane != nil {
			if b.Sel == nil {
				for i, x := range lane[:b.NumRows] {
					idx := int(rowIDs[i])*nS + s
					v := acc[idx]
					r := v + x
					ovf |= uint64((v ^ r) & (x ^ r))
					acc[idx] = r
				}
			} else {
				for _, i := range b.Sel {
					idx := int(rowIDs[i])*nS + s
					v := acc[idx]
					x := lane[i]
					r := v + x
					ovf |= uint64((v ^ r) & (x ^ r))
					acc[idx] = r
				}
			}
		} else {
			dec := ag.dec
			if b.Sel == nil {
				for i := 0; i < b.NumRows; i++ {
					idx := int(rowIDs[i])*nS + s
					v := acc[idx]
					x := int64(dec[i].Lo)
					r := v + x
					ovf |= uint64((v ^ r) & (x ^ r))
					acc[idx] = r
				}
			} else {
				for _, i := range b.Sel {
					idx := int(rowIDs[i])*nS + s
					v := acc[idx]
					x := int64(dec[i].Lo)
					r := v + x
					ovf |= uint64((v ^ r) & (x ^ r))
					acc[idx] = r
				}
			}
		}
		ag.ovf = ovf
	}
	for a := range pre {
		pre[a].ovf = pre[srcAgg[srcOf[a]]].ovf
	}

	for a := range pre {
		ag := &pre[a]
		if ag.ovf>>63 != 0 {
			// Scratch accumulator wrapped: the batch-local totals are
			// unusable for this aggregate, so replay its rows in 128-bit.
			ag.ovf = 0
			ag.wide, ag.escaped = true, true
			op.replayWideSum(ag, b, slab, keyOff, stride)
			continue
		}
		col := srcOf[a]
		for _, rid := range touched {
			v := acc[int(rid)*nS+col]
			c := cnt[rid]
			base := int(rid)*stride + keyOff
			st := slab[base+ag.off:]
			if !ag.wide {
				s := int64(binary.LittleEndian.Uint64(st))
				r := s + v
				if (s^r)&(v^r) >= 0 {
					binary.LittleEndian.PutUint64(st, uint64(r))
					binary.LittleEndian.PutUint64(st[8:], uint64(r>>63))
					cs := slab[base+ag.cntOff:]
					binary.LittleEndian.PutUint64(cs, binary.LittleEndian.Uint64(cs)+uint64(c))
					continue
				}
				// State overflow: the epoch's sums no longer fit int64.
				ag.wide, ag.escaped = true, true
			}
			cur := types.Decimal128{
				Lo: binary.LittleEndian.Uint64(st),
				Hi: int64(binary.LittleEndian.Uint64(st[8:])),
			}
			cur = cur.Add(types.SignExtend64(v))
			binary.LittleEndian.PutUint64(st, cur.Lo)
			binary.LittleEndian.PutUint64(st[8:], uint64(cur.Hi))
			cs := slab[base+ag.cntOff:]
			binary.LittleEndian.PutUint64(cs, binary.LittleEndian.Uint64(cs)+uint64(c))
		}
	}

	// Restore the all-zero scratch invariant for the next batch.
	for _, rid := range touched {
		cnt[rid] = 0
		base := int(rid) * nS
		for s := 0; s < nS; s++ {
			acc[base+s] = 0
		}
	}
}

// sameDecSrc reports whether two pre-aggregated arguments read the same
// input — pointer-identical lane or decimal storage — so they can share one
// scratch column.
func sameDecSrc(x, y *decSumAgg) bool {
	if x.lane != nil || y.lane != nil {
		return x.lane != nil && y.lane != nil && &x.lane[0] == &y.lane[0]
	}
	return &x.dec[0] == &y.dec[0]
}

// replayWideSum folds one aggregate's whole batch into its states through
// the 128-bit adds (pre-aggregation escape path; inputs are NULL-free).
func (op *HashAggOp) replayWideSum(ag *decSumAgg, b *vector.Batch, slab []byte, keyOff, stride int) {
	rowIDs := op.rowIDs
	apply(b.Sel, b.NumRows, func(i int32) {
		base := int(rowIDs[i])*stride + keyOff
		st := slab[base+ag.off:]
		var x types.Decimal128
		if ag.lane != nil {
			x = types.SignExtend64(ag.lane[i])
		} else {
			x = ag.dec[i]
		}
		cur := types.Decimal128{
			Lo: binary.LittleEndian.Uint64(st),
			Hi: int64(binary.LittleEndian.Uint64(st[8:])),
		}
		cur = cur.Add(x)
		binary.LittleEndian.PutUint64(st, cur.Lo)
		binary.LittleEndian.PutUint64(st[8:], uint64(cur.Hi))
		cs := slab[base+ag.cntOff:]
		binary.LittleEndian.PutUint64(cs, binary.LittleEndian.Uint64(cs)+1)
	})
}

// fusedSumRow folds input row i into every decimal sum state of its group's
// payload row (starting at slab[base]). States stay canonical Decimal128 —
// the narrow store writes the sign-extended high limb too, so spill, emit,
// and merge readers never see a second format.
func fusedSumRow(args []decSumAgg, slab []byte, base, i int) {
	for a := range args {
		ag := &args[a]
		if ag.hn && ag.nulls[i] != 0 {
			continue
		}
		st := slab[base+ag.off:]
		if !ag.wide {
			s := int64(binary.LittleEndian.Uint64(st))
			var x int64
			if ag.lane != nil {
				x = ag.lane[i]
			} else {
				x = int64(ag.dec[i].Lo)
			}
			r := s + x
			if (s^r)&(x^r) >= 0 {
				binary.LittleEndian.PutUint64(st, uint64(r))
				binary.LittleEndian.PutUint64(st[8:], uint64(r>>63))
				cnt := slab[base+ag.cntOff:]
				binary.LittleEndian.PutUint64(cnt, binary.LittleEndian.Uint64(cnt)+1)
				continue
			}
			// Overflow: promote this aggregate to 128-bit mid-row.
			ag.wide = true
			ag.escaped = true
		}
		var x types.Decimal128
		if ag.lane != nil {
			x = types.SignExtend64(ag.lane[i])
		} else {
			x = ag.dec[i]
		}
		cur := types.Decimal128{
			Lo: binary.LittleEndian.Uint64(st),
			Hi: int64(binary.LittleEndian.Uint64(st[8:])),
		}
		cur = cur.Add(x)
		binary.LittleEndian.PutUint64(st, cur.Lo)
		binary.LittleEndian.PutUint64(st[8:], uint64(cur.Hi))
		cnt := slab[base+ag.cntOff:]
		binary.LittleEndian.PutUint64(cnt, binary.LittleEndian.Uint64(cnt)+1)
	}
}

// initState zeroes a new group's payload and allocates list states.
func (op *HashAggOp) initState(tbl *ht.Table, row int32) {
	p := tbl.PayloadBytes(row)
	clear(p)
	for _, info := range op.infos {
		if info.spec.Distinct || info.spec.Kind == expr.AggCollectList {
			id := uint32(len(op.listsFor(tbl)))
			binary.LittleEndian.PutUint32(p[info.off:], id)
			if tbl == op.tbl {
				op.lists = append(op.lists, op.newListState(info))
			} else {
				op.partLists = append(op.partLists, op.newListState(info))
			}
		}
	}
}

func (op *HashAggOp) newListState(info aggInfo) listState {
	ls := listState{}
	if info.spec.Distinct {
		ls.distinct = make(map[string]struct{})
	}
	return ls
}

func (op *HashAggOp) listsFor(tbl *ht.Table) []listState {
	if tbl == op.tbl {
		return op.lists
	}
	return op.partLists
}

// updateAgg runs one aggregate's update loop over the batch. k is the
// aggregate's position in op.infos (indexes the narrow-sum flags).
func (op *HashAggOp) updateAgg(b *vector.Batch, k int, info aggInfo, tbl *ht.Table, lists *[]listState) error {
	var av *vector.Vector
	var owned bool
	if info.spec.Arg != nil {
		var err error
		av, owned, err = evalChildExpr(op.tc.Expr, info.spec.Arg, b)
		if err != nil {
			return err
		}
		defer func() {
			if owned {
				op.tc.Expr.Put(av)
			}
		}()
	}
	hn := av != nil && av.HasNulls()

	switch {
	case info.spec.Distinct:
		apply(b.Sel, b.NumRows, func(i int32) {
			if hn && av.Nulls[i] != 0 {
				return
			}
			id := binary.LittleEndian.Uint32(tbl.PayloadBytes(op.rowIDs[i])[info.off:])
			key := encodeValueKey(av, int(i))
			(*lists)[id].distinct[key] = struct{}{}
		})
	case info.spec.Kind == expr.AggCount:
		apply(b.Sel, b.NumRows, func(i int32) {
			if hn && av.Nulls[i] != 0 {
				return
			}
			st := tbl.PayloadBytes(op.rowIDs[i])[info.off:]
			binary.LittleEndian.PutUint64(st, binary.LittleEndian.Uint64(st)+1)
		})
	case info.spec.Kind == expr.AggSum || info.spec.Kind == expr.AggAvg:
		op.updateSum(b, k, info, av, hn, tbl, 1)
	case info.spec.Kind == expr.AggMin:
		op.updateMinMax(b, info, av, hn, tbl, true)
	case info.spec.Kind == expr.AggMax:
		op.updateMinMax(b, info, av, hn, tbl, false)
	case info.spec.Kind == expr.AggCollectList:
		arena := &op.listPool
		apply(b.Sel, b.NumRows, func(i int32) {
			if hn && av.Nulls[i] != 0 {
				return
			}
			id := binary.LittleEndian.Uint32(tbl.PayloadBytes(op.rowIDs[i])[info.off:])
			ls := &(*lists)[id]
			elem := encodeListElem(av, int(i), arena)
			ls.blob = appendLenPrefixed(ls.blob, elem)
			ls.count++
		})
	}
	return nil
}

// sumWideFor returns the per-aggregate wide flags valid for tbl, resetting
// them when the target table changes (a fresh table — new spill epoch or
// partition merge — holds all-zero sums, so the narrow path is safe again).
// Flags start wide when the fast path is disabled.
func (op *HashAggOp) sumWideFor(tbl *ht.Table) []bool {
	if op.sumWideT != tbl {
		op.sumWideT = tbl
		wide := !op.tc.Expr.Dec64
		for k := range op.sumWide {
			op.sumWide[k] = wide
		}
	}
	return op.sumWide
}

// updateSum accumulates sums (weight = per-row count contribution, which is
// 1 for raw input and the partial count when merging).
func (op *HashAggOp) updateSum(b *vector.Batch, k int, info aggInfo, av *vector.Vector, hn bool, tbl *ht.Table, weight int64) {
	sumT := op.infoSumType(info)
	cntOff := info.off + info.width - 8
	switch sumT.ID {
	case types.Decimal:
		ctx := op.tc.Expr
		wide := op.sumWideFor(tbl)
		if !wide[k] && !ctx.Dec64Qualified(av, b.Sel, b.NumRows) {
			// Input not provably narrow: values may push sums past int64
			// undetected, so promote this aggregate's accumulator for good.
			wide[k] = true
			ctx.Dec128Batches++
		}
		narrowIn := !wide[k]
		escaped := false
		apply(b.Sel, b.NumRows, func(i int32) {
			if hn && av.Nulls[i] != 0 {
				return
			}
			p := tbl.PayloadBytes(op.rowIDs[i])
			st := p[info.off:]
			if !wide[k] {
				// int64 accumulator. The state stays canonical Decimal128
				// (lo plus sign-extended hi, one extra store) so the
				// spill/emit/merge readers never see a second format.
				s := int64(binary.LittleEndian.Uint64(st))
				x := int64(av.Dec[i].Lo)
				r := s + x
				if (s^r)&(x^r) >= 0 {
					binary.LittleEndian.PutUint64(st, uint64(r))
					binary.LittleEndian.PutUint64(st[8:], uint64(r>>63))
					binary.LittleEndian.PutUint64(p[cntOff:], binary.LittleEndian.Uint64(p[cntOff:])+uint64(weight))
					return
				}
				// Overflow: finish the batch (and table epoch) in 128-bit.
				wide[k] = true
				escaped = true
			}
			cur := types.Decimal128{
				Lo: binary.LittleEndian.Uint64(st),
				Hi: int64(binary.LittleEndian.Uint64(st[8:])),
			}
			cur = cur.Add(av.Dec[i])
			binary.LittleEndian.PutUint64(st, cur.Lo)
			binary.LittleEndian.PutUint64(st[8:], uint64(cur.Hi))
			binary.LittleEndian.PutUint64(p[cntOff:], binary.LittleEndian.Uint64(p[cntOff:])+uint64(weight))
		})
		if narrowIn {
			if escaped {
				ctx.Dec64Escapes++
			} else {
				ctx.Dec64Batches++
			}
		}
	case types.Float64:
		apply(b.Sel, b.NumRows, func(i int32) {
			if hn && av.Nulls[i] != 0 {
				return
			}
			p := tbl.PayloadBytes(op.rowIDs[i])
			st := p[info.off:]
			cur := math.Float64frombits(binary.LittleEndian.Uint64(st))
			var x float64
			if av.Type.ID == types.Float64 {
				x = av.F64[i]
			} else if av.Type.ID == types.Int32 {
				x = float64(av.I32[i])
			} else {
				x = float64(av.I64[i])
			}
			binary.LittleEndian.PutUint64(st, math.Float64bits(cur+x))
			binary.LittleEndian.PutUint64(p[cntOff:], binary.LittleEndian.Uint64(p[cntOff:])+uint64(weight))
		})
	default: // int64 accumulator
		apply(b.Sel, b.NumRows, func(i int32) {
			if hn && av.Nulls[i] != 0 {
				return
			}
			p := tbl.PayloadBytes(op.rowIDs[i])
			st := p[info.off:]
			var x int64
			if av.Type.ID == types.Int32 || av.Type.ID == types.Date {
				x = int64(av.I32[i])
			} else {
				x = av.I64[i]
			}
			binary.LittleEndian.PutUint64(st, binary.LittleEndian.Uint64(st)+uint64(x))
			binary.LittleEndian.PutUint64(p[cntOff:], binary.LittleEndian.Uint64(p[cntOff:])+uint64(weight))
		})
	}
}

// infoSumType resolves the accumulator type, honoring AggAvg over ints
// accumulating in float (Spark semantics: avg(int) is double).
func (op *HashAggOp) infoSumType(info aggInfo) types.DataType {
	t := info.argOrResType()
	if info.spec.Kind == expr.AggAvg && t.ID != types.Decimal {
		return types.Float64Type
	}
	return info.sumStateType()
}

// updateMinMax folds min/max over the batch.
func (op *HashAggOp) updateMinMax(b *vector.Batch, info aggInfo, av *vector.Vector, hn bool, tbl *ht.Table, isMin bool) {
	apply(b.Sel, b.NumRows, func(i int32) {
		if hn && av.Nulls[i] != 0 {
			return
		}
		st := tbl.PayloadBytes(op.rowIDs[i])[info.off:]
		if st[0] == 0 {
			st[0] = 1
			op.storeMinMax(st[1:], av, int(i), tbl)
			return
		}
		if cmpStateVsValue(st[1:], av, int(i), tbl) > 0 == isMin {
			op.storeMinMax(st[1:], av, int(i), tbl)
		}
	})
}

// storeMinMax writes av[i] into a min/max slot.
func (op *HashAggOp) storeMinMax(st []byte, av *vector.Vector, i int, tbl *ht.Table) {
	switch av.Type.ID {
	case types.Bool:
		st[0] = av.Bool[i]
	case types.Int32, types.Date:
		binary.LittleEndian.PutUint32(st, uint32(av.I32[i]))
	case types.Int64, types.Timestamp:
		binary.LittleEndian.PutUint64(st, uint64(av.I64[i]))
	case types.Float64:
		binary.LittleEndian.PutUint64(st, math.Float64bits(av.F64[i]))
	case types.Decimal:
		binary.LittleEndian.PutUint64(st, av.Dec[i].Lo)
		binary.LittleEndian.PutUint64(st[8:], uint64(av.Dec[i].Hi))
	case types.String:
		off, ln := tbl.AppendHeap(av.Str[i])
		binary.LittleEndian.PutUint32(st, off)
		binary.LittleEndian.PutUint32(st[4:], ln)
	}
}

// cmpStateVsValue compares the stored slot against av[i]: -1/0/1.
func cmpStateVsValue(st []byte, av *vector.Vector, i int, tbl *ht.Table) int {
	switch av.Type.ID {
	case types.Bool:
		return int(st[0]) - int(av.Bool[i])
	case types.Int32, types.Date:
		s := int32(binary.LittleEndian.Uint32(st))
		if s < av.I32[i] {
			return -1
		} else if s > av.I32[i] {
			return 1
		}
		return 0
	case types.Int64, types.Timestamp:
		s := int64(binary.LittleEndian.Uint64(st))
		if s < av.I64[i] {
			return -1
		} else if s > av.I64[i] {
			return 1
		}
		return 0
	case types.Float64:
		s := math.Float64frombits(binary.LittleEndian.Uint64(st))
		if s < av.F64[i] {
			return -1
		} else if s > av.F64[i] {
			return 1
		}
		return 0
	case types.Decimal:
		s := types.Decimal128{
			Lo: binary.LittleEndian.Uint64(st),
			Hi: int64(binary.LittleEndian.Uint64(st[8:])),
		}
		return s.Cmp(av.Dec[i])
	case types.String:
		off := binary.LittleEndian.Uint32(st)
		ln := binary.LittleEndian.Uint32(st[4:])
		return bytes.Compare(tbl.HeapBytes(off, ln), av.Str[i])
	}
	return 0
}

// encodeValueKey renders av[i] as a map key for DISTINCT sets.
func encodeValueKey(av *vector.Vector, i int) string {
	switch av.Type.ID {
	case types.String:
		return string(av.Str[i])
	case types.Int32, types.Date:
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], uint32(av.I32[i]))
		return string(b[:])
	case types.Float64:
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(av.F64[i]))
		return string(b[:])
	case types.Decimal:
		var b [16]byte
		binary.LittleEndian.PutUint64(b[:], av.Dec[i].Lo)
		binary.LittleEndian.PutUint64(b[8:], uint64(av.Dec[i].Hi))
		return string(b[:])
	default:
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], uint64(av.I64[i]))
		return string(b[:])
	}
}

// encodeListElem renders av[i] as display bytes for collect_list, copied
// into the shared arena (allocation coalescing across groups, Fig. 5).
func encodeListElem(av *vector.Vector, i int, arena interface{ Copy([]byte) []byte }) []byte {
	switch av.Type.ID {
	case types.String:
		return arena.Copy(av.Str[i])
	default:
		return arena.Copy([]byte(fmt.Sprintf("%v", av.Get(i))))
	}
}

// appendLenPrefixed appends a u32-length-prefixed element to a blob.
func appendLenPrefixed(blob, elem []byte) []byte {
	var l [4]byte
	binary.LittleEndian.PutUint32(l[:], uint32(len(elem)))
	blob = append(blob, l[:]...)
	return append(blob, elem...)
}

// mergeBatch folds a batch of partial states (AggFinal input, or spilled
// partition rows) into tbl.
func (op *HashAggOp) mergeBatch(b *vector.Batch, tbl *ht.Table, lists *[]listState, topLevel bool) error {
	// Key columns are the first len(keyTypes) columns of the partial schema.
	n := b.NumRows
	if len(op.keyTypes) > 0 {
		keys := b.Vecs[:len(op.keyTypes)]
		hashKeyVectorsScratch(keys, b.Sel, n, op.hashes, &op.lanes)
		if err := tbl.FindOrInsert(keys, op.hashes, b.Sel, n, op.rowIDs, op.inserted); err != nil {
			return err
		}
		apply(b.Sel, n, func(i int32) {
			if op.inserted[i] {
				op.initStateIn(tbl, op.rowIDs[i], lists)
			}
		})
	} else {
		if tbl.NumRows() == 0 {
			if err := op.ensureGlobalGroup(tbl); err != nil {
				return err
			}
			op.initStateIn(tbl, 0, lists)
		}
		apply(b.Sel, n, func(i int32) { op.rowIDs[i] = 0 })
	}

	col := len(op.keyTypes)
	for k, info := range op.infos {
		switch {
		case info.spec.Distinct:
			blob := b.Vecs[col]
			apply(b.Sel, n, func(i int32) {
				if blob.Nulls[i] != 0 {
					return
				}
				id := binary.LittleEndian.Uint32(tbl.PayloadBytes(op.rowIDs[i])[info.off:])
				set := (*lists)[id].distinct
				iterLenPrefixed(blob.Str[i], func(elem []byte) {
					set[string(elem)] = struct{}{}
				})
			})
			col++
		case info.spec.Kind == expr.AggCollectList:
			blob := b.Vecs[col]
			apply(b.Sel, n, func(i int32) {
				if blob.Nulls[i] != 0 {
					return
				}
				id := binary.LittleEndian.Uint32(tbl.PayloadBytes(op.rowIDs[i])[info.off:])
				ls := &(*lists)[id]
				ls.blob = append(ls.blob, blob.Str[i]...)
				iterLenPrefixed(blob.Str[i], func([]byte) { ls.count++ })
			})
			col++
		case info.spec.Kind == expr.AggCount:
			cnt := b.Vecs[col]
			apply(b.Sel, n, func(i int32) {
				st := tbl.PayloadBytes(op.rowIDs[i])[info.off:]
				binary.LittleEndian.PutUint64(st, binary.LittleEndian.Uint64(st)+uint64(cnt.I64[i]))
			})
			col++
		case info.spec.Kind == expr.AggSum || info.spec.Kind == expr.AggAvg:
			sumV, cntV := b.Vecs[col], b.Vecs[col+1]
			cntOff := info.off + info.width - 8
			sumT := op.infoSumType(info)
			if sumT.ID == types.Decimal {
				op.mergeDecimalSum(b, k, info, sumV, cntV, cntOff, tbl)
			} else {
				apply(b.Sel, n, func(i int32) {
					if sumV.Nulls[i] != 0 {
						return
					}
					p := tbl.PayloadBytes(op.rowIDs[i])
					st := p[info.off:]
					if sumT.ID == types.Float64 {
						cur := math.Float64frombits(binary.LittleEndian.Uint64(st))
						binary.LittleEndian.PutUint64(st, math.Float64bits(cur+sumV.F64[i]))
					} else {
						binary.LittleEndian.PutUint64(st, binary.LittleEndian.Uint64(st)+uint64(sumV.I64[i]))
					}
					binary.LittleEndian.PutUint64(p[cntOff:], binary.LittleEndian.Uint64(p[cntOff:])+uint64(cntV.I64[i]))
				})
			}
			col += 2
		default: // min/max merge
			val := b.Vecs[col]
			isMin := info.spec.Kind == expr.AggMin
			apply(b.Sel, n, func(i int32) {
				if val.Nulls[i] != 0 {
					return
				}
				st := tbl.PayloadBytes(op.rowIDs[i])[info.off:]
				if st[0] == 0 {
					st[0] = 1
					op.storeMinMax(st[1:], val, int(i), tbl)
					return
				}
				if cmpStateVsValue(st[1:], val, int(i), tbl) > 0 == isMin {
					op.storeMinMax(st[1:], val, int(i), tbl)
				}
			})
			col++
		}
	}
	if topLevel {
		return op.reserveDelta()
	}
	return nil
}

// mergeDecimalSum folds partial decimal sums into tbl, using the int64
// accumulator while every state and input still fits. Partial batches come
// out of serde readers and shuffles whose buffers are reused, so the input
// is checked directly each batch instead of through the metadata cache.
func (op *HashAggOp) mergeDecimalSum(b *vector.Batch, k int, info aggInfo, sumV, cntV *vector.Vector, cntOff int, tbl *ht.Table) {
	ctx := op.tc.Expr
	wide := op.sumWideFor(tbl)
	if !wide[k] && !kernels.Dec64CheckV(sumV.Dec, sumV.Nulls, sumV.HasNulls(), b.Sel, b.NumRows) {
		wide[k] = true
		ctx.Dec128Batches++
	}
	narrowIn := !wide[k]
	escaped := false
	apply(b.Sel, b.NumRows, func(i int32) {
		if sumV.Nulls[i] != 0 {
			return
		}
		p := tbl.PayloadBytes(op.rowIDs[i])
		st := p[info.off:]
		if !wide[k] {
			s := int64(binary.LittleEndian.Uint64(st))
			x := int64(sumV.Dec[i].Lo)
			r := s + x
			if (s^r)&(x^r) >= 0 {
				binary.LittleEndian.PutUint64(st, uint64(r))
				binary.LittleEndian.PutUint64(st[8:], uint64(r>>63))
				binary.LittleEndian.PutUint64(p[cntOff:], binary.LittleEndian.Uint64(p[cntOff:])+uint64(cntV.I64[i]))
				return
			}
			wide[k] = true
			escaped = true
		}
		cur := types.Decimal128{
			Lo: binary.LittleEndian.Uint64(st),
			Hi: int64(binary.LittleEndian.Uint64(st[8:])),
		}
		cur = cur.Add(sumV.Dec[i])
		binary.LittleEndian.PutUint64(st, cur.Lo)
		binary.LittleEndian.PutUint64(st[8:], uint64(cur.Hi))
		binary.LittleEndian.PutUint64(p[cntOff:], binary.LittleEndian.Uint64(p[cntOff:])+uint64(cntV.I64[i]))
	})
	if narrowIn {
		if escaped {
			ctx.Dec64Escapes++
		} else {
			ctx.Dec64Batches++
		}
	}
}

// initStateIn initializes a group's payload in the given table/lists pair.
func (op *HashAggOp) initStateIn(tbl *ht.Table, row int32, lists *[]listState) {
	p := tbl.PayloadBytes(row)
	clear(p)
	for _, info := range op.infos {
		if info.spec.Distinct || info.spec.Kind == expr.AggCollectList {
			id := uint32(len(*lists))
			binary.LittleEndian.PutUint32(p[info.off:], id)
			*lists = append(*lists, op.newListState(info))
		}
	}
}

// iterLenPrefixed walks a u32-length-prefixed element blob.
func iterLenPrefixed(blob []byte, f func(elem []byte)) {
	for len(blob) >= 4 {
		l := binary.LittleEndian.Uint32(blob)
		blob = blob[4:]
		f(blob[:l])
		blob = blob[l:]
	}
}

// ----- output -----

// Next implements Operator.
func (op *HashAggOp) Next() (*vector.Batch, error) {
	var out *vector.Batch
	err := op.timed(func() error {
		if !op.inputDone {
			if err := op.consumeInput(); err != nil {
				return err
			}
			op.inputDone = true
			// SQL semantics: a keyless aggregation over empty input still
			// produces one row (count 0, sums NULL).
			if len(op.keyExprs) == 0 && op.mode != AggFinal && !op.globalInit && !op.spilled {
				op.ensureGlobalGroup(op.tbl)
				op.initState(op.tbl, 0)
				op.globalInit = true
			}
			// Once any state has spilled, the live table may share groups
			// with the partitions; flush it too so every group is emitted
			// exactly once via the partition merge.
			if op.spilled && op.tbl.Len() > 0 {
				if _, err := op.spill(0); err != nil {
					return err
				}
			}
			// Flush and reopen spill partitions for reading.
			for _, w := range op.spillWriters {
				if err := w.Close(); err != nil {
					return err
				}
			}
		}
		var err error
		out, err = op.emitNext()
		return err
	})
	if err != nil {
		return nil, err
	}
	if out != nil {
		op.stats.RowsOut.Add(int64(out.NumRows))
		op.stats.BatchesOut.Add(1)
	}
	return out, nil
}

// emitNext produces the next output batch: first the in-memory table, then
// each spilled partition merged one at a time.
func (op *HashAggOp) emitNext() (*vector.Batch, error) {
	for {
		// Phase 1: drain the live table.
		if op.tbl != nil {
			heads := op.tbl.HeadRows()
			if op.emitPos < len(heads) {
				return op.emitFrom(op.tbl, op.lists, heads)
			}
			op.tbl = nil // live table drained
		}
		// Phase 2: drain the current merged partition table.
		if op.partTbl != nil {
			heads := op.partTbl.HeadRows()
			if op.emitPos < len(heads) {
				return op.emitFrom(op.partTbl, op.partLists, heads)
			}
			op.partTbl = nil
		}
		// Phase 3: merge the next spilled partition.
		if op.emitPart >= len(op.spillFiles) {
			return nil, nil
		}
		f := op.spillFiles[op.emitPart]
		op.emitPart++
		if f == nil {
			continue
		}
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			return nil, err
		}
		if err := op.mergePartition(f); err != nil {
			return nil, err
		}
		f.Close()
		os.Remove(f.Name())
	}
}

// mergePartition rebuilds a fresh table from one spill partition. The merge
// loop checks cancellation per batch (a giant spilled partition must not pin
// a cancelled query), probes the spill-read failpoint, and classifies
// transient OS read errors as retryable.
func (op *HashAggOp) mergePartition(f *os.File) error {
	op.merging = true
	defer func() { op.merging = false }()
	ps := op.partialSchema()
	rd := serde.NewReader(f, ps)
	op.partTbl = ht.New(op.keyTypes, op.payloadW)
	op.partTbl.Guard = op.tc.Cancelled
	op.partLists = op.partLists[:0]
	op.emitPos = 0
	buf := vector.NewBatch(ps, op.tc.Pool.BatchSize())
	for {
		if err := op.tc.Cancelled(); err != nil {
			return err
		}
		if err := fault.Hit(op.tc.Ctx, fault.SpillRead); err != nil {
			return err
		}
		err := rd.ReadBatch(buf)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fault.ClassifyIO(fault.SpillRead, err)
		}
		if err := op.mergeBatch(buf, op.partTbl, &op.partLists, false); err != nil {
			return err
		}
	}
}

// emitFrom materializes up to one batch of groups from tbl.
func (op *HashAggOp) emitFrom(tbl *ht.Table, lists []listState, heads []int32) (*vector.Batch, error) {
	if op.out == nil {
		op.out = vector.NewBatch(op.schema, op.tc.Pool.BatchSize())
	}
	op.out.Reset()
	limit := min(op.emitPos+op.out.Capacity(), len(heads))
	for ; op.emitPos < limit; op.emitPos++ {
		row := heads[op.emitPos]
		i := op.out.NumRows
		col := 0
		for c := range op.keyTypes {
			tbl.ReadKey(row, c, op.out.Vecs[col], i)
			col++
		}
		if op.mode == AggPartial {
			// Reuse partial row writer (it appends keys too), so instead
			// write states column-wise here to the partial columns.
			op.writePartialStates(tbl, lists, row, i, col)
		} else {
			op.writeFinalStates(tbl, lists, row, i, col)
		}
		op.out.NumRows++
	}
	return op.out, nil
}

// writePartialStates fills partial-state columns for one group row.
func (op *HashAggOp) writePartialStates(tbl *ht.Table, lists []listState, row int32, i, col int) {
	p := tbl.PayloadBytes(row)
	for _, info := range op.infos {
		st := p[info.off:]
		switch {
		case info.spec.Distinct:
			id := binary.LittleEndian.Uint32(st)
			var buf bytes.Buffer
			for v := range lists[id].distinct {
				var l [4]byte
				binary.LittleEndian.PutUint32(l[:], uint32(len(v)))
				buf.Write(l[:])
				buf.WriteString(v)
			}
			op.out.Vecs[col].Set(i, buf.Bytes())
			col++
		case info.spec.Kind == expr.AggCollectList:
			id := binary.LittleEndian.Uint32(st)
			op.out.Vecs[col].Set(i, append([]byte(nil), lists[id].blob...))
			col++
		case info.spec.Kind == expr.AggCount:
			op.out.Vecs[col].Set(i, int64(binary.LittleEndian.Uint64(st)))
			col++
		case info.spec.Kind == expr.AggSum || info.spec.Kind == expr.AggAvg:
			cnt := int64(binary.LittleEndian.Uint64(st[info.width-8:]))
			if cnt == 0 {
				op.out.Vecs[col].Set(i, nil)
			} else {
				op.readSumInto(op.out.Vecs[col], i, st, info)
			}
			col++
			op.out.Vecs[col].Set(i, cnt)
			col++
		default:
			if st[0] == 0 {
				op.out.Vecs[col].Set(i, nil)
			} else {
				op.decodeMinMax(op.out.Vecs[col], i, st[1:], info, tbl)
			}
			col++
		}
	}
}

// readSumInto decodes the accumulated sum into v[i].
func (op *HashAggOp) readSumInto(v *vector.Vector, i int, st []byte, info aggInfo) {
	switch op.infoSumType(info).ID {
	case types.Decimal:
		v.Set(i, types.Decimal128{
			Lo: binary.LittleEndian.Uint64(st),
			Hi: int64(binary.LittleEndian.Uint64(st[8:])),
		})
	case types.Float64:
		v.Set(i, math.Float64frombits(binary.LittleEndian.Uint64(st)))
	default:
		v.Set(i, int64(binary.LittleEndian.Uint64(st)))
	}
}

// writeFinalStates fills final aggregate values for one group row.
func (op *HashAggOp) writeFinalStates(tbl *ht.Table, lists []listState, row int32, i, col int) {
	p := tbl.PayloadBytes(row)
	for _, info := range op.infos {
		st := p[info.off:]
		v := op.out.Vecs[col]
		switch {
		case info.spec.Distinct:
			id := binary.LittleEndian.Uint32(st)
			v.Set(i, int64(len(lists[id].distinct)))
		case info.spec.Kind == expr.AggCollectList:
			id := binary.LittleEndian.Uint32(st)
			v.Set(i, renderList(lists[id].blob))
		case info.spec.Kind == expr.AggCount:
			v.Set(i, int64(binary.LittleEndian.Uint64(st)))
		case info.spec.Kind == expr.AggSum:
			cnt := int64(binary.LittleEndian.Uint64(st[info.width-8:]))
			if cnt == 0 {
				v.Set(i, nil)
			} else {
				op.readSumInto(v, i, st, info)
			}
		case info.spec.Kind == expr.AggAvg:
			cnt := int64(binary.LittleEndian.Uint64(st[info.width-8:]))
			if cnt == 0 {
				v.Set(i, nil)
			} else if op.infoSumType(info).ID == types.Decimal {
				sum := types.Decimal128{
					Lo: binary.LittleEndian.Uint64(st),
					Hi: int64(binary.LittleEndian.Uint64(st[8:])),
				}
				// avg scale = result scale; sum has arg scale.
				argScale := info.spec.Arg.Type().Scale
				resScale := info.resType.Scale
				scaled := sum.Rescale(argScale, resScale+1) // extra digit for rounding
				q, _ := scaled.DivInt64(cnt)
				v.Set(i, q.Rescale(resScale+1, resScale))
			} else {
				sum := math.Float64frombits(binary.LittleEndian.Uint64(st))
				v.Set(i, sum/float64(cnt))
			}
		default: // min/max
			if st[0] == 0 {
				v.Set(i, nil)
			} else {
				op.decodeMinMax(v, i, st[1:], info, tbl)
			}
		}
		col++
	}
}

// renderList formats a collect_list blob as "[a, b, c]".
func renderList(blob []byte) string {
	var b bytes.Buffer
	b.WriteByte('[')
	first := true
	iterLenPrefixed(blob, func(elem []byte) {
		if !first {
			b.WriteString(", ")
		}
		first = false
		b.Write(elem)
	})
	b.WriteByte(']')
	return b.String()
}

// Close implements Operator.
func (op *HashAggOp) Close() error {
	op.tc.Mem.ReleaseAll(op.consumer)
	for _, f := range op.spillFiles {
		if f != nil {
			f.Close()
			os.Remove(f.Name())
		}
	}
	op.spillFiles = nil
	return op.child.Close()
}

// globalInit tracks one-time state creation for keyless aggregation.
// (Declared here to keep the main struct definition readable.)
//
// evalChildExpr mirrors expr's internal child-eval helper for operators.
func evalChildExpr(ctx *expr.Ctx, e expr.Expr, b *vector.Batch) (*vector.Vector, bool, error) {
	v, err := e.Eval(ctx, b)
	if err != nil {
		return nil, false, err
	}
	_, isCol := e.(*expr.ColRef)
	return v, !isCol, nil
}
