package exec

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"os"

	"photon/internal/expr"
	"photon/internal/ht"
	"photon/internal/kernels"
	"photon/internal/mem"
	"photon/internal/serde"
	"photon/internal/types"
	"photon/internal/vector"
)

// AggMode selects which phase of a (possibly distributed) aggregation this
// operator performs.
type AggMode uint8

const (
	// AggComplete consumes raw input and emits final values.
	AggComplete AggMode = iota
	// AggPartial consumes raw input and emits partial states (pre-shuffle).
	AggPartial
	// AggFinal consumes partial states and emits final values (post-shuffle).
	AggFinal
)

// HashAggOp is Photon's vectorized grouping aggregation (§4.4, Fig. 5).
// Groups are resolved through the vectorized hash table; aggregation states
// live in fixed-width payload slots updated by per-aggregate batch loops.
// Variable-size states (collect_list, count distinct) live in operator-side
// storage with payload indices, their element bytes coalesced into a shared
// arena across groups rather than allocated per group (the Fig. 5
// optimization). Memory is acquired reservation-first (§5.3); on pressure
// the operator spills partial states partitioned by hash and merges
// partition-at-a-time during finalization.
type HashAggOp struct {
	base
	child    Operator
	mode     AggMode
	keyExprs []expr.Expr
	keyNames []string
	aggs     []expr.AggSpec

	keyTypes []types.DataType
	infos    []aggInfo
	payloadW int

	tbl      *ht.Table
	lists    []listState
	listPool mem.Arena

	// Narrow-decimal sum fast path: sumWide[k] is set once aggregate k's
	// int64 accumulator has been abandoned for the table in sumWideT
	// (overflow promotion, or a non-narrow input batch). The flags state
	// an invariant over the table's current sums ("every decimal sum
	// still fits int64"), so they reset whenever the target table changes
	// — a fresh table (spill epoch, partition merge) holds zero states.
	sumWide  []bool
	sumWideT *ht.Table
	// Fused-pass scratch: the count of decimal sum/avg aggregates, the
	// per-aggregate handled mask, and the argument descriptors reused
	// across batches by updateDecimalSums.
	numDecSums int
	aggHandled []bool
	decSums    []decSumAgg
	// Batch-local pre-aggregation scratch (dense per-group int64 sums and
	// row counts, plus the list of groups touched this batch). Invariant:
	// all-zero between batches — the flush resets only touched entries.
	decAcc     []int64
	decCnt     []int64
	decTouched []int32
	decSrcOf   []int // scratch column per pre-aggregated argument
	decSrcAgg  []int // representative argument per distinct input source

	// Scratch.
	lanes    laneScratch
	hashes   []uint64
	rowIDs   []int32
	inserted []bool
	keyVecs  []*vector.Vector
	keyOwned []bool

	// Spilling.
	consumer     *mem.FuncConsumer
	reserved     int64
	spillFiles   []*os.File
	spillWriters []*serde.Writer
	spilled      bool
	merging      bool

	// Output iteration state.
	inputDone  bool
	globalInit bool
	emitPos    int
	emitPart   int
	partTbl    *ht.Table
	partLists  []listState
	out        *vector.Batch
}

// listState holds a variable-size aggregation state: the concatenated
// elements (each u32-length-prefixed) for collect_list, or the distinct set
// for count(distinct).
type listState struct {
	blob     []byte
	count    int64
	distinct map[string]struct{}
}

// aggInfo is the compiled layout of one aggregate's state.
type aggInfo struct {
	spec    expr.AggSpec
	off     int
	width   int
	resType types.DataType
	argType types.DataType
	// partialCols is how many output columns the partial form occupies.
	partialCols int
}

// NewHashAgg builds a grouping aggregation. keyExprs may be empty (global
// aggregation). In AggFinal mode the child's schema must be the partial
// schema produced by an AggPartial operator with the same specs.
func NewHashAgg(child Operator, mode AggMode, keyExprs []expr.Expr, keyNames []string, aggs []expr.AggSpec) (*HashAggOp, error) {
	op := &HashAggOp{child: child, mode: mode, keyExprs: keyExprs, keyNames: keyNames, aggs: aggs}
	op.stats.Name = fmt.Sprintf("HashAgg(%v)", mode)
	for _, k := range keyExprs {
		op.keyTypes = append(op.keyTypes, k.Type())
	}
	off := 0
	for _, a := range aggs {
		info := aggInfo{spec: a, off: off}
		if a.Arg != nil {
			info.argType = a.Arg.Type()
		}
		rt, err := a.ResultType()
		if err != nil {
			return nil, err
		}
		info.resType = rt
		switch {
		case a.Distinct:
			if a.Kind != expr.AggCount {
				return nil, fmt.Errorf("exec: DISTINCT only supported for count")
			}
			info.width = 4 // list-state id
			info.partialCols = 1
		default:
			switch a.Kind {
			case expr.AggCount:
				info.width = 8
				info.partialCols = 1
			case expr.AggSum, expr.AggAvg:
				switch info.argOrResType().ID {
				case types.Decimal:
					info.width = 24
				default:
					info.width = 16
				}
				info.partialCols = 2
			case expr.AggMin, expr.AggMax:
				w := a.Arg.Type().FixedWidth()
				if w == 0 {
					w = 8 // heap ref for strings
				}
				info.width = 1 + w
				info.partialCols = 1
			case expr.AggCollectList:
				info.width = 4
				info.partialCols = 1
			default:
				return nil, fmt.Errorf("exec: unsupported aggregate %v", a.Kind)
			}
		}
		off += info.width
		op.infos = append(op.infos, info)
	}
	op.payloadW = off

	// Output schema.
	fields := make([]types.Field, 0, len(keyExprs)+len(aggs))
	for i, k := range keyExprs {
		name := ""
		if i < len(keyNames) {
			name = keyNames[i]
		}
		if name == "" {
			name = k.String()
		}
		fields = append(fields, types.Field{Name: name, Type: k.Type(), Nullable: true})
	}
	if mode == AggPartial {
		for i, info := range op.infos {
			base := info.spec.Name
			if base == "" {
				base = fmt.Sprintf("agg%d", i)
			}
			fields = append(fields, op.partialFields(info, base)...)
		}
	} else {
		for i, info := range op.infos {
			name := info.spec.Name
			if name == "" {
				name = fmt.Sprintf("agg%d", i)
			}
			fields = append(fields, types.Field{Name: name, Type: info.resType, Nullable: true})
		}
	}
	op.schema = &types.Schema{Fields: fields}
	return op, nil
}

// PartialAggSchema returns the schema an AggPartial operator with these
// specs emits (and an AggFinal operator consumes). The stage planner uses
// it to type exchange boundaries before any operator exists.
func PartialAggSchema(keyExprs []expr.Expr, keyNames []string, aggs []expr.AggSpec) (*types.Schema, error) {
	// Schema derivation never touches the child, so a child-less operator
	// is safe here.
	op, err := NewHashAgg(nil, AggPartial, keyExprs, keyNames, aggs)
	if err != nil {
		return nil, err
	}
	return op.Schema(), nil
}

// argOrResType returns the type driving the state representation.
func (in *aggInfo) argOrResType() types.DataType {
	if in.spec.Arg != nil {
		return in.spec.Arg.Type()
	}
	return in.resType
}

// sumStateType is the widened type a sum/avg accumulates in.
func (in *aggInfo) sumStateType() types.DataType {
	t := in.argOrResType()
	switch t.ID {
	case types.Decimal:
		return types.DecimalType(38, t.Scale)
	case types.Float64:
		return types.Float64Type
	default:
		return types.Int64Type
	}
}

// partialFields lists the partial-state output columns for one aggregate.
func (op *HashAggOp) partialFields(info aggInfo, base string) []types.Field {
	switch {
	case info.spec.Distinct, info.spec.Kind == expr.AggCollectList:
		return []types.Field{{Name: base + "_blob", Type: types.StringType, Nullable: true}}
	case info.spec.Kind == expr.AggCount:
		return []types.Field{{Name: base + "_cnt", Type: types.Int64Type}}
	case info.spec.Kind == expr.AggSum || info.spec.Kind == expr.AggAvg:
		return []types.Field{
			{Name: base + "_sum", Type: op.infoSumType(info), Nullable: true},
			{Name: base + "_cnt", Type: types.Int64Type},
		}
	default: // min/max
		return []types.Field{{Name: base + "_val", Type: info.spec.Arg.Type(), Nullable: true}}
	}
}

// partialSchema is the schema AggPartial emits and AggFinal consumes.
func (op *HashAggOp) partialSchema() *types.Schema {
	fields := make([]types.Field, 0)
	for i, k := range op.keyExprs {
		name := fmt.Sprintf("k%d", i)
		fields = append(fields, types.Field{Name: name, Type: k.Type(), Nullable: true})
	}
	for i, info := range op.infos {
		fields = append(fields, op.partialFields(info, fmt.Sprintf("agg%d", i))...)
	}
	return &types.Schema{Fields: fields}
}

// Open implements Operator.
func (op *HashAggOp) Open(tc *TaskCtx) error {
	op.tc = tc
	op.tbl = ht.New(op.keyTypes, op.payloadW)
	op.tbl.Guard = tc.Cancelled
	op.consumer = &mem.FuncConsumer{ConsumerName: op.stats.Name, SpillFunc: op.spill}
	op.listPool = *mem.NewArena(0)
	op.ensureScratch(tc.Pool.BatchSize())
	op.keyVecs = make([]*vector.Vector, len(op.keyExprs))
	op.keyOwned = make([]bool, len(op.keyExprs))
	op.sumWide = make([]bool, len(op.infos))
	op.sumWideT = nil
	op.numDecSums = 0
	for _, info := range op.infos {
		if !info.spec.Distinct &&
			(info.spec.Kind == expr.AggSum || info.spec.Kind == expr.AggAvg) &&
			op.infoSumType(info).ID == types.Decimal {
			op.numDecSums++
		}
	}
	op.inputDone = false
	op.globalInit = false
	op.spilled = false
	op.emitPos = 0
	op.emitPart = 0
	return op.child.Open(tc)
}

// ensureScratch sizes the per-batch scratch arrays.
func (op *HashAggOp) ensureScratch(n int) {
	if len(op.hashes) < n {
		op.hashes = make([]uint64, n)
		op.rowIDs = make([]int32, n)
		op.inserted = make([]bool, n)
	}
}

// spill implements the memory consumer callback: serialize all current
// groups as partial-state batches, hash-partitioned across P files, and
// reset the table (§5.3). Disabled while merging a spilled partition.
func (op *HashAggOp) spill(need int64) (int64, error) {
	if op.merging || op.tbl.Len() == 0 || op.tc.SpillDir == "" {
		return 0, nil
	}
	const parts = 16
	if op.spillFiles == nil {
		op.spillFiles = make([]*os.File, parts)
		op.spillWriters = make([]*serde.Writer, parts)
		for i := range op.spillFiles {
			f, err := op.tc.NewSpillFile(fmt.Sprintf("agg-p%d", i))
			if err != nil {
				return 0, err
			}
			op.spillFiles[i] = f
			op.spillWriters[i] = serde.NewWriter(f)
		}
	}
	ps := op.partialSchema()
	batch := vector.NewBatch(ps, op.tc.Pool.BatchSize())
	written := int64(0)
	emit := func(part int) error {
		if batch.NumRows == 0 {
			return nil
		}
		if err := op.spillWriters[part].WriteBatch(batch); err != nil {
			return err
		}
		written += int64(batch.NumRows)
		batch.Reset()
		return nil
	}
	// Group rows by partition, flushing per-partition batches.
	heads := op.tbl.HeadRows()
	byPart := make([][]int32, parts)
	for _, row := range heads {
		p := int(kernels.Mix64(op.rowHashOf(row)) % parts)
		byPart[p] = append(byPart[p], row)
	}
	for p, rows := range byPart {
		for _, row := range rows {
			op.writePartialRow(batch, row, op.tbl, op.lists)
			if batch.NumRows == batch.Capacity() {
				if err := emit(p); err != nil {
					return 0, err
				}
			}
		}
		if err := emit(p); err != nil {
			return 0, err
		}
	}
	freedBytes := op.reserved
	op.tc.Mem.Release(op.consumer, op.reserved)
	op.reserved = 0
	op.tbl = ht.New(op.keyTypes, op.payloadW)
	op.tbl.Guard = op.tc.Cancelled
	op.lists = op.lists[:0]
	op.listPool.Reset()
	op.spilled = true
	op.stats.SpillCount.Add(1)
	op.stats.SpillBytes.Add(freedBytes)
	return freedBytes, nil
}

// rowHashOf recovers a stable hash for partitioning spilled rows: rehash the
// first key column from the stored row (all partitions of the same key must
// agree across spill epochs).
func (op *HashAggOp) rowHashOf(row int32) uint64 {
	// Reuse the table-retained hash: it is exactly the original key hash.
	return op.tbl.RowHashes()[row]
}

// writePartialRow appends group `row`'s key and partial states to batch.
func (op *HashAggOp) writePartialRow(batch *vector.Batch, row int32, tbl *ht.Table, lists []listState) {
	i := batch.NumRows
	col := 0
	for c := range op.keyTypes {
		tbl.ReadKey(row, c, batch.Vecs[col], i)
		col++
	}
	p := tbl.PayloadBytes(row)
	for _, info := range op.infos {
		st := p[info.off:]
		switch {
		case info.spec.Distinct:
			id := binary.LittleEndian.Uint32(st)
			ls := &lists[id]
			var buf bytes.Buffer
			for v := range ls.distinct {
				var l [4]byte
				binary.LittleEndian.PutUint32(l[:], uint32(len(v)))
				buf.Write(l[:])
				buf.WriteString(v)
			}
			batch.Vecs[col].Set(i, buf.Bytes())
			col++
		case info.spec.Kind == expr.AggCollectList:
			id := binary.LittleEndian.Uint32(st)
			batch.Vecs[col].Set(i, append([]byte(nil), lists[id].blob...))
			col++
		case info.spec.Kind == expr.AggCount:
			batch.Vecs[col].Set(i, int64(binary.LittleEndian.Uint64(st)))
			col++
		case info.spec.Kind == expr.AggSum || info.spec.Kind == expr.AggAvg:
			sumT := op.infoSumType(info)
			cnt := int64(binary.LittleEndian.Uint64(st[info.width-8:]))
			if cnt == 0 {
				batch.Vecs[col].Set(i, nil)
			} else {
				switch sumT.ID {
				case types.Decimal:
					batch.Vecs[col].Set(i, types.Decimal128{
						Lo: binary.LittleEndian.Uint64(st),
						Hi: int64(binary.LittleEndian.Uint64(st[8:])),
					})
				case types.Float64:
					batch.Vecs[col].Set(i, math.Float64frombits(binary.LittleEndian.Uint64(st)))
				default:
					batch.Vecs[col].Set(i, int64(binary.LittleEndian.Uint64(st)))
				}
			}
			col++
			batch.Vecs[col].Set(i, cnt)
			col++
		default: // min/max
			if st[0] == 0 {
				batch.Vecs[col].Set(i, nil)
			} else {
				op.decodeMinMax(batch.Vecs[col], i, st[1:], info, tbl)
			}
			col++
		}
	}
	batch.NumRows++
}

// decodeMinMax reads a min/max value slot into v[i].
func (op *HashAggOp) decodeMinMax(v *vector.Vector, i int, st []byte, info aggInfo, tbl *ht.Table) {
	switch info.spec.Arg.Type().ID {
	case types.Bool:
		v.Set(i, st[0] != 0)
	case types.Int32, types.Date:
		v.Set(i, int32(binary.LittleEndian.Uint32(st)))
	case types.Int64, types.Timestamp:
		v.Set(i, int64(binary.LittleEndian.Uint64(st)))
	case types.Float64:
		v.Set(i, math.Float64frombits(binary.LittleEndian.Uint64(st)))
	case types.Decimal:
		v.Set(i, types.Decimal128{
			Lo: binary.LittleEndian.Uint64(st),
			Hi: int64(binary.LittleEndian.Uint64(st[8:])),
		})
	case types.String:
		off := binary.LittleEndian.Uint32(st)
		ln := binary.LittleEndian.Uint32(st[4:])
		v.Set(i, append([]byte(nil), tbl.HeapBytes(off, ln)...))
	}
}
