package exec

import (
	"context"
	"errors"
	"testing"

	"photon/internal/expr"
	"photon/internal/fault"
	"photon/internal/mem"
	"photon/internal/types"
	"photon/internal/vector"
)

// spillingAgg builds a grouped aggregation over enough rows, under a tight
// enough memory limit, that it must spill partitions and read them back.
func spillingAgg(t *testing.T) (*HashAggOp, *TaskCtx) {
	t.Helper()
	schema := intSchema("g", "v")
	var rows [][]any
	for i := 0; i < 5000; i++ {
		rows = append(rows, []any{int64(i % 997), int64(i)})
	}
	scan := NewMemScan(schema, BuildBatches(schema, rows, 64))
	agg, err := NewHashAgg(scan, AggComplete,
		[]expr.Expr{expr.Col(0, "g", types.Int64Type)}, []string{"g"},
		[]expr.AggSpec{
			{Kind: expr.AggCount, Name: "c"},
			{Kind: expr.AggSum, Arg: expr.Col(1, "v", types.Int64Type), Name: "s"},
		})
	if err != nil {
		t.Fatal(err)
	}
	tc := NewTaskCtx(mem.NewManager(32<<10), 64)
	tc.SpillDir = t.TempDir()
	return agg, tc
}

// TestSpillFailpointsRetryable arms the spill-write and spill-read sites with
// a fail-once policy and re-runs a spilling aggregation until it succeeds:
// every injected failure must surface as a *transient* fault error (the
// scheduler's retry classification), both sites must fire, and the final
// clean run must match an unconstrained execution. Part of the CI failpoint-
// coverage check alongside the driver's distributed-site test.
func TestSpillFailpointsRetryable(t *testing.T) {
	// Unconstrained baseline.
	agg, _ := spillingAgg(t)
	want, err := CollectRows(agg, newTC(t))
	if err != nil {
		t.Fatal(err)
	}

	r := fault.NewRegistry(5)
	r.Arm(fault.SpillWrite, fault.Policy{FailN: 1})
	r.Arm(fault.SpillRead, fault.Policy{FailN: 1})
	defer fault.Activate(r)()

	var got [][]any
	failures := 0
	for attempt := 0; attempt < 6; attempt++ {
		agg, tc := spillingAgg(t)
		got, err = CollectRows(agg, tc)
		if err == nil {
			break
		}
		failures++
		var fe *fault.Error
		if !errors.As(err, &fe) || !fe.Transient {
			t.Fatalf("attempt %d: err = %v, want transient *fault.Error", attempt, err)
		}
	}
	if err != nil {
		t.Fatalf("no clean run within retry budget: %v", err)
	}
	if failures == 0 {
		t.Fatal("no injected failure observed; spill sites unreachable?")
	}
	if r.Fires(fault.SpillWrite) == 0 {
		t.Error("spill-write site never fired")
	}
	if r.Fires(fault.SpillRead) == 0 {
		t.Error("spill-read site never fired")
	}

	sortRows(want)
	sortRows(got)
	if len(got) != len(want) {
		t.Fatalf("rows = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i][0] != want[i][0] || got[i][1] != want[i][1] || got[i][2] != want[i][2] {
			t.Fatalf("row %d differs after fault retries: %v vs %v", i, got[i], want[i])
		}
	}
}

// TestSortCancelsPromptlyMidEmit: a giant fully in-memory (single-run) sort
// must observe cancellation between emitted batches, not only at input
// boundaries — a cancelled consumer stops the emit loop within one batch.
func TestSortCancelsPromptlyMidEmit(t *testing.T) {
	schema := intSchema("v")
	const n = 1 << 16
	rows := make([][]any, n)
	for i := range rows {
		rows[i] = []any{int64(n - i)}
	}
	scan := NewMemScan(schema, BuildBatches(schema, rows, 1024))
	s := NewSort(scan, []SortKey{{Col: 0}})

	ctx, cancel := context.WithCancel(context.Background())
	tc := NewTaskCtx(nil, 1024)
	tc.Ctx = ctx
	if err := s.Open(tc); err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// First batch: the whole input is consumed and sorted, one batch out.
	b, err := s.Next()
	if err != nil || b == nil {
		t.Fatalf("first batch: %v %v", b, err)
	}
	cancel()
	// The very next emit must abandon the remaining ~63 batches.
	if _, err := s.Next(); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestMergeSortedRunsCancelled: the driver-side k-way merge loop checks the
// query context between output windows, so a cancelled query cannot burn the
// driver on a giant merge.
func TestMergeSortedRunsCancelled(t *testing.T) {
	schema := intSchema("v")
	mk := func(start int) [][]any {
		rows := make([][]any, 20000)
		for i := range rows {
			rows[i] = []any{int64(start + i*2)}
		}
		return rows
	}
	runA := BuildBatches(schema, mk(0), 1024)
	runB := BuildBatches(schema, mk(1), 1024)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := MergeSortedRuns(ctx, [][]*vector.Batch{runA, runB},
		[]SortKey{{Col: 0}}, -1)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}

	// Sanity: the same merge with a live context completes.
	rows, err := MergeSortedRuns(context.Background(), [][]*vector.Batch{runA, runB},
		[]SortKey{{Col: 0}}, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 40000 {
		t.Fatalf("merged %d rows, want 40000", len(rows))
	}
}
