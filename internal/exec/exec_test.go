package exec

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"photon/internal/expr"
	"photon/internal/kernels"
	"photon/internal/mem"
	"photon/internal/types"
)

func intSchema(names ...string) *types.Schema {
	fields := make([]types.Field, len(names))
	for i, n := range names {
		fields[i] = types.Field{Name: n, Type: types.Int64Type, Nullable: true}
	}
	return &types.Schema{Fields: fields}
}

func newTC(t *testing.T) *TaskCtx {
	t.Helper()
	tc := NewTaskCtx(nil, 64)
	tc.SpillDir = t.TempDir()
	return tc
}

func sortRows(rows [][]any) {
	sort.Slice(rows, func(i, j int) bool {
		return fmt.Sprint(rows[i]) < fmt.Sprint(rows[j])
	})
}

func TestScanFilterProject(t *testing.T) {
	schema := intSchema("a", "b")
	var rows [][]any
	for i := 0; i < 200; i++ {
		rows = append(rows, []any{int64(i), int64(i * 2)})
	}
	scan := NewMemScan(schema, BuildBatches(schema, rows, 64))
	filt := NewFilter(scan, expr.MustCmp(kernels.CmpGe, expr.Col(0, "a", types.Int64Type), expr.Int64Lit(195)))
	proj := NewProject(filt, []expr.Expr{
		expr.Col(1, "b", types.Int64Type),
		expr.MustArith(expr.OpAdd, expr.Col(0, "a", types.Int64Type), expr.Int64Lit(1000)),
	}, []string{"b", "a1k"})

	got, err := CollectRows(proj, newTC(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("rows = %d", len(got))
	}
	if got[0][0].(int64) != 390 || got[0][1].(int64) != 1195 {
		t.Errorf("first row = %v", got[0])
	}
}

func TestFilterAllOrNothing(t *testing.T) {
	schema := intSchema("a")
	rows := [][]any{{int64(1)}, {int64(2)}, {int64(3)}}
	scan := NewMemScan(schema, BuildBatches(schema, rows, 64))
	none := NewFilter(scan, expr.MustCmp(kernels.CmpGt, expr.Col(0, "a", types.Int64Type), expr.Int64Lit(99)))
	got, err := CollectRows(none, newTC(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("expected no rows, got %v", got)
	}
	scan2 := NewMemScan(schema, BuildBatches(schema, rows, 64))
	all := NewFilter(scan2, expr.MustCmp(kernels.CmpGt, expr.Col(0, "a", types.Int64Type), expr.Int64Lit(0)))
	got, err = CollectRows(all, newTC(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Errorf("expected all rows, got %d", len(got))
	}
}

func TestHashAggGrouped(t *testing.T) {
	schema := intSchema("g", "v")
	var rows [][]any
	for i := 0; i < 100; i++ {
		rows = append(rows, []any{int64(i % 4), int64(i)})
	}
	rows = append(rows, []any{nil, int64(1000)}) // NULL group
	scan := NewMemScan(schema, BuildBatches(schema, rows, 32))
	agg, err := NewHashAgg(scan, AggComplete,
		[]expr.Expr{expr.Col(0, "g", types.Int64Type)}, []string{"g"},
		[]expr.AggSpec{
			{Kind: expr.AggCount, Name: "cnt"},
			{Kind: expr.AggSum, Arg: expr.Col(1, "v", types.Int64Type), Name: "s"},
			{Kind: expr.AggMin, Arg: expr.Col(1, "v", types.Int64Type), Name: "mn"},
			{Kind: expr.AggMax, Arg: expr.Col(1, "v", types.Int64Type), Name: "mx"},
			{Kind: expr.AggAvg, Arg: expr.Col(1, "v", types.Int64Type), Name: "av"},
		})
	if err != nil {
		t.Fatal(err)
	}
	got, err := CollectRows(agg, newTC(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("groups = %d, want 5", len(got))
	}
	byGroup := map[any][]any{}
	for _, r := range got {
		byGroup[r[0]] = r
	}
	// Group 0: values 0,4,...,96 → count 25, sum 1200, min 0, max 96, avg 48.
	g0 := byGroup[int64(0)]
	if g0[1].(int64) != 25 || g0[2].(int64) != 1200 || g0[3].(int64) != 0 || g0[4].(int64) != 96 || g0[5].(float64) != 48 {
		t.Errorf("group 0 = %v", g0)
	}
	gn := byGroup[nil]
	if gn == nil || gn[1].(int64) != 1 || gn[2].(int64) != 1000 {
		t.Errorf("NULL group = %v", gn)
	}
}

func TestHashAggGlobalAndNullHandling(t *testing.T) {
	schema := intSchema("v")
	rows := [][]any{{int64(10)}, {nil}, {int64(20)}, {nil}}
	scan := NewMemScan(schema, BuildBatches(schema, rows, 64))
	agg, err := NewHashAgg(scan, AggComplete, nil, nil, []expr.AggSpec{
		{Kind: expr.AggCount, Name: "cnt_star"},                                      // count(*) counts all rows
		{Kind: expr.AggCount, Arg: expr.Col(0, "v", types.Int64Type), Name: "cnt_v"}, // skips NULLs
		{Kind: expr.AggSum, Arg: expr.Col(0, "v", types.Int64Type), Name: "s"},
		{Kind: expr.AggAvg, Arg: expr.Col(0, "v", types.Int64Type), Name: "a"},
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := CollectRows(agg, newTC(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("rows = %d", len(got))
	}
	r := got[0]
	if r[0].(int64) != 4 || r[1].(int64) != 2 || r[2].(int64) != 30 || r[3].(float64) != 15 {
		t.Errorf("global agg = %v", r)
	}
}

func TestHashAggSumAllNullIsNull(t *testing.T) {
	schema := intSchema("v")
	rows := [][]any{{nil}, {nil}}
	scan := NewMemScan(schema, BuildBatches(schema, rows, 64))
	agg, _ := NewHashAgg(scan, AggComplete, nil, nil, []expr.AggSpec{
		{Kind: expr.AggSum, Arg: expr.Col(0, "v", types.Int64Type), Name: "s"},
	})
	got, err := CollectRows(agg, newTC(t))
	if err != nil {
		t.Fatal(err)
	}
	if got[0][0] != nil {
		t.Errorf("sum of all NULLs = %v, want NULL", got[0][0])
	}
}

func TestHashAggDecimalSumAvg(t *testing.T) {
	dt := types.DecimalType(12, 2)
	schema := types.NewSchema(
		types.Field{Name: "g", Type: types.Int64Type},
		types.Field{Name: "d", Type: dt, Nullable: true},
	)
	dec := func(s string) types.Decimal128 {
		d, _ := types.ParseDecimal(s, 2)
		return d
	}
	rows := [][]any{
		{int64(1), dec("10.50")},
		{int64(1), dec("0.25")},
		{int64(2), dec("99.99")},
	}
	scan := NewMemScan(schema, BuildBatches(schema, rows, 64))
	agg, err := NewHashAgg(scan, AggComplete, []expr.Expr{expr.Col(0, "g", types.Int64Type)}, []string{"g"},
		[]expr.AggSpec{
			{Kind: expr.AggSum, Arg: expr.Col(1, "d", dt), Name: "s"},
			{Kind: expr.AggAvg, Arg: expr.Col(1, "d", dt), Name: "a"},
		})
	if err != nil {
		t.Fatal(err)
	}
	got, err := CollectRows(agg, newTC(t))
	if err != nil {
		t.Fatal(err)
	}
	byG := map[any][]any{}
	for _, r := range got {
		byG[r[0]] = r
	}
	if s := byG[int64(1)][1].(types.Decimal128); types.FormatDecimal(s, 2) != "10.75" {
		t.Errorf("sum = %s", types.FormatDecimal(s, 2))
	}
	// avg scale = 2+4 = 6: 10.75/2 = 5.375000
	if a := byG[int64(1)][2].(types.Decimal128); types.FormatDecimal(a, 6) != "5.375000" {
		t.Errorf("avg = %s", types.FormatDecimal(a, 6))
	}
}

func TestHashAggCollectList(t *testing.T) {
	schema := types.NewSchema(
		types.Field{Name: "g", Type: types.Int64Type},
		types.Field{Name: "s", Type: types.StringType, Nullable: true},
	)
	rows := [][]any{
		{int64(1), "a"}, {int64(2), "x"}, {int64(1), "b"}, {int64(1), "c"}, {int64(2), nil},
	}
	scan := NewMemScan(schema, BuildBatches(schema, rows, 2))
	agg, err := NewHashAgg(scan, AggComplete, []expr.Expr{expr.Col(0, "g", types.Int64Type)}, []string{"g"},
		[]expr.AggSpec{{Kind: expr.AggCollectList, Arg: expr.Col(1, "s", types.StringType), Name: "l"}})
	if err != nil {
		t.Fatal(err)
	}
	got, err := CollectRows(agg, newTC(t))
	if err != nil {
		t.Fatal(err)
	}
	byG := map[any]any{}
	for _, r := range got {
		byG[r[0]] = r[1]
	}
	if byG[int64(1)] != "[a, b, c]" {
		t.Errorf("collect_list g1 = %v", byG[int64(1)])
	}
	if byG[int64(2)] != "[x]" {
		t.Errorf("collect_list g2 = %v (NULLs are skipped)", byG[int64(2)])
	}
}

func TestHashAggCountDistinct(t *testing.T) {
	schema := intSchema("g", "v")
	rows := [][]any{
		{int64(1), int64(5)}, {int64(1), int64(5)}, {int64(1), int64(6)},
		{int64(2), int64(7)}, {int64(2), nil},
	}
	scan := NewMemScan(schema, BuildBatches(schema, rows, 64))
	agg, err := NewHashAgg(scan, AggComplete, []expr.Expr{expr.Col(0, "g", types.Int64Type)}, []string{"g"},
		[]expr.AggSpec{{Kind: expr.AggCount, Arg: expr.Col(1, "v", types.Int64Type), Distinct: true, Name: "cd"}})
	if err != nil {
		t.Fatal(err)
	}
	got, err := CollectRows(agg, newTC(t))
	if err != nil {
		t.Fatal(err)
	}
	byG := map[any]any{}
	for _, r := range got {
		byG[r[0]] = r[1]
	}
	if byG[int64(1)].(int64) != 2 || byG[int64(2)].(int64) != 1 {
		t.Errorf("count distinct: %v", byG)
	}
}

func TestHashAggPartialFinalEquivalence(t *testing.T) {
	schema := intSchema("g", "v")
	var rows [][]any
	for i := 0; i < 500; i++ {
		v := any(int64(i))
		if i%7 == 0 {
			v = nil
		}
		rows = append(rows, []any{int64(i % 13), v})
	}
	specs := []expr.AggSpec{
		{Kind: expr.AggCount, Name: "c"},
		{Kind: expr.AggSum, Arg: expr.Col(1, "v", types.Int64Type), Name: "s"},
		{Kind: expr.AggMin, Arg: expr.Col(1, "v", types.Int64Type), Name: "mn"},
		{Kind: expr.AggMax, Arg: expr.Col(1, "v", types.Int64Type), Name: "mx"},
		{Kind: expr.AggAvg, Arg: expr.Col(1, "v", types.Int64Type), Name: "av"},
	}
	keys := []expr.Expr{expr.Col(0, "g", types.Int64Type)}

	// Complete in one shot.
	scan1 := NewMemScan(schema, BuildBatches(schema, rows, 64))
	complete, _ := NewHashAgg(scan1, AggComplete, keys, []string{"g"}, specs)
	want, err := CollectRows(complete, newTC(t))
	if err != nil {
		t.Fatal(err)
	}

	// Partial → Final, with partial keys re-referenced by ordinal.
	scan2 := NewMemScan(schema, BuildBatches(schema, rows, 64))
	partial, _ := NewHashAgg(scan2, AggPartial, keys, []string{"g"}, specs)
	finalKeys := []expr.Expr{expr.Col(0, "g", types.Int64Type)}
	final, err := NewHashAgg(partial, AggFinal, finalKeys, []string{"g"}, specs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := CollectRows(final, newTC(t))
	if err != nil {
		t.Fatal(err)
	}

	sortRows(want)
	sortRows(got)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("partial+final != complete\n got %v\nwant %v", got, want)
	}
}

func TestHashAggSpilling(t *testing.T) {
	schema := intSchema("g", "v")
	var rows [][]any
	for i := 0; i < 5000; i++ {
		rows = append(rows, []any{int64(i % 997), int64(i)})
	}
	scan := NewMemScan(schema, BuildBatches(schema, rows, 64))
	agg, _ := NewHashAgg(scan, AggComplete, []expr.Expr{expr.Col(0, "g", types.Int64Type)}, []string{"g"},
		[]expr.AggSpec{
			{Kind: expr.AggCount, Name: "c"},
			{Kind: expr.AggSum, Arg: expr.Col(1, "v", types.Int64Type), Name: "s"},
		})
	tc := NewTaskCtx(mem.NewManager(32<<10), 64) // tiny limit forces spills
	tc.SpillDir = t.TempDir()
	got, err := CollectRows(agg, tc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 997 {
		t.Fatalf("groups = %d, want 997", len(got))
	}
	if agg.Stats().SpillCount.Load() == 0 {
		t.Error("expected at least one spill under a 32KB limit")
	}
	// Verify against unconstrained run.
	scan2 := NewMemScan(schema, BuildBatches(schema, rows, 64))
	agg2, _ := NewHashAgg(scan2, AggComplete, []expr.Expr{expr.Col(0, "g", types.Int64Type)}, []string{"g"},
		[]expr.AggSpec{
			{Kind: expr.AggCount, Name: "c"},
			{Kind: expr.AggSum, Arg: expr.Col(1, "v", types.Int64Type), Name: "s"},
		})
	want, err := CollectRows(agg2, newTC(t))
	if err != nil {
		t.Fatal(err)
	}
	sortRows(got)
	sortRows(want)
	if !reflect.DeepEqual(got, want) {
		t.Error("spilled aggregation differs from in-memory aggregation")
	}
}
