package fault

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"syscall"
	"testing"
	"time"

	"photon/internal/obs"
)

func TestDisarmedHitIsNil(t *testing.T) {
	Deactivate()
	for _, s := range Sites() {
		if err := Hit(context.Background(), s); err != nil {
			t.Fatalf("disarmed %s: %v", s, err)
		}
	}
}

func TestFailNThenRecovers(t *testing.T) {
	r := NewRegistry(1)
	r.Arm(ShuffleWrite, Policy{FailN: 2})
	defer Activate(r)()

	for i := 0; i < 2; i++ {
		err := Hit(nil, ShuffleWrite)
		var fe *Error
		if !errors.As(err, &fe) {
			t.Fatalf("hit %d: err = %v, want *Error", i, err)
		}
		if !fe.Transient || fe.Site != ShuffleWrite {
			t.Fatalf("hit %d: wrong classification %+v", i, fe)
		}
	}
	if err := Hit(nil, ShuffleWrite); err != nil {
		t.Fatalf("after FailN window: %v", err)
	}
	if got := r.Fires(ShuffleWrite); got != 2 {
		t.Errorf("fires = %d, want 2", got)
	}
	// Other sites are untouched.
	if err := Hit(nil, SpillRead); err != nil {
		t.Fatalf("unarmed site fired: %v", err)
	}
}

func TestPermanentPolicyAndCustomErr(t *testing.T) {
	sentinel := errors.New("disk gone")
	r := NewRegistry(1)
	r.Arm(SpillWrite, Policy{FailN: 1, Permanent: true, Err: sentinel})
	defer Activate(r)()

	err := Hit(nil, SpillWrite)
	var fe *Error
	if !errors.As(err, &fe) || fe.Transient {
		t.Fatalf("err = %v, want permanent *Error", err)
	}
	if !errors.Is(err, sentinel) {
		t.Errorf("cause not preserved: %v", err)
	}
}

// TestSeededDeterminism: same seed and policy, same injected sequence.
func TestSeededDeterminism(t *testing.T) {
	seq := func(seed int64) []bool {
		r := NewRegistry(seed)
		r.ArmAll(Policy{Prob: 0.3})
		restore := Activate(r)
		defer restore()
		var out []bool
		for i := 0; i < 200; i++ {
			for _, s := range Sites() {
				out = append(out, Hit(nil, s) != nil)
			}
		}
		return out
	}
	a, b := seq(42), seq(42)
	c := seq(43)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatal("same seed produced different fault sequences")
	}
	if fmt.Sprint(a) == fmt.Sprint(c) {
		t.Fatal("different seeds produced identical fault sequences (suspicious)")
	}
}

func TestInjectedLatencyHonorsCancellation(t *testing.T) {
	r := NewRegistry(7)
	r.Arm(TaskStart, Policy{Latency: time.Minute})
	defer Activate(r)()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err := Hit(ctx, TaskStart)
	if time.Since(start) > 5*time.Second {
		t.Fatal("latency injection ignored cancellation")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if r.Fires(TaskStart) != 1 {
		t.Errorf("fires = %d, want 1", r.Fires(TaskStart))
	}
}

func TestLatencyNLimitsDelays(t *testing.T) {
	r := NewRegistry(7)
	r.Arm(ShuffleRead, Policy{Latency: 5 * time.Millisecond, LatencyN: 1})
	defer Activate(r)()

	start := time.Now()
	if err := Hit(nil, ShuffleRead); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < 4*time.Millisecond {
		t.Error("first hit not delayed")
	}
	start = time.Now()
	for i := 0; i < 10; i++ {
		if err := Hit(nil, ShuffleRead); err != nil {
			t.Fatal(err)
		}
	}
	if time.Since(start) > 4*time.Millisecond {
		t.Error("later hits delayed beyond LatencyN")
	}
}

func TestInstrumentMirrorsFires(t *testing.T) {
	reg := obs.NewRegistry()
	r := NewRegistry(1)
	r.Arm(MemReserve, Policy{FailN: 3})
	r.Instrument(reg)
	defer Activate(r)()
	for i := 0; i < 5; i++ {
		_ = Hit(nil, MemReserve)
	}
	c := reg.Counter(`photon_failpoint_fires_total{site="mem-reserve"}`, "")
	if c.Load() != 3 {
		t.Errorf("metric = %d, want 3", c.Load())
	}
	if r.TotalFires() != 3 {
		t.Errorf("TotalFires = %d, want 3", r.TotalFires())
	}
}

func TestActivateRestores(t *testing.T) {
	Deactivate()
	r1 := NewRegistry(1)
	restore1 := Activate(r1)
	if Active() != r1 {
		t.Fatal("r1 not active")
	}
	r2 := NewRegistry(2)
	restore2 := Activate(r2)
	if Active() != r2 {
		t.Fatal("r2 not active")
	}
	restore2()
	if Active() != r1 {
		t.Fatal("restore did not reinstate r1")
	}
	restore1()
	if Active() != nil {
		t.Fatal("restore did not disarm")
	}
}

func TestClassifyIO(t *testing.T) {
	for _, transient := range []error{
		syscall.EINTR,
		syscall.EAGAIN,
		syscall.EPIPE,
		os.ErrClosed,
		&fs.PathError{Op: "read", Path: "x", Err: syscall.EINTR},
	} {
		err := ClassifyIO(SpillRead, transient)
		var fe *Error
		if !errors.As(err, &fe) || !fe.Transient || fe.Site != SpillRead {
			t.Errorf("ClassifyIO(%v) = %v, want transient *Error", transient, err)
		}
	}
	// Permanent errors pass through unchanged.
	perm := &fs.PathError{Op: "open", Path: "x", Err: syscall.ENOENT}
	if got := ClassifyIO(SpillRead, perm); got != perm {
		t.Errorf("permanent error rewrapped: %v", got)
	}
	if ClassifyIO(SpillRead, nil) != nil {
		t.Error("nil error classified non-nil")
	}
	// Already-classified errors keep their original site.
	orig := &Error{Site: ShuffleWrite, Transient: true, Err: syscall.EINTR}
	if got := ClassifyIO(SpillRead, orig); got != orig {
		t.Errorf("reclassified: %v", got)
	}
}

// BenchmarkDisarmedHit is the zero-cost guard: a disarmed failpoint must stay
// a single atomic load (a couple of ns, zero allocations), cheap enough to
// leave compiled into every production I/O path.
func BenchmarkDisarmedHit(b *testing.B) {
	Deactivate()
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := Hit(ctx, ShuffleWrite); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkArmedMissHit(b *testing.B) {
	r := NewRegistry(1)
	r.Arm(ShuffleWrite, Policy{}) // armed registry, inert policy
	defer Activate(r)()
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := Hit(ctx, ShuffleWrite); err != nil {
			b.Fatal(err)
		}
	}
}
