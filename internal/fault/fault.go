// Package fault implements deterministic fault injection for Photon's
// distributed execution layer.
//
// The engine registers a small catalog of named failpoints ("sites") at the
// I/O and lifecycle boundaries where real systems fail: shuffle block
// write/read, broadcast fetch, spill write/read, task start, and memory
// reservation. A test (or the photon-sql -chaos-seed flag) arms a Registry
// with per-site policies — fail once, fail the first N hits, fail with
// probability p, injected latency to simulate stragglers — all driven by a
// seeded per-site RNG so a chaos run is exactly reproducible from its seed.
//
// When no registry is armed the cost of a failpoint is a single atomic
// pointer load (see BenchmarkDisarmedHit: a couple of nanoseconds, zero
// allocations), so the hooks stay compiled into production code paths.
package fault

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"photon/internal/obs"
)

// Site names one failpoint location in the engine. Sites are a closed
// catalog: tests iterate Sites() to assert coverage.
type Site string

// The failpoint catalog. Each constant is referenced from exactly the layer
// it names; CI asserts every site fires in at least one test.
const (
	// ShuffleWrite fires in shuffle.Writer before a partition block is
	// appended to its (temporary) partition file.
	ShuffleWrite Site = "shuffle-write"
	// ShuffleRead fires in shuffle.Reader before a partition file is read.
	ShuffleRead Site = "shuffle-read"
	// BroadcastFetch fires in shuffle broadcast readers before the
	// broadcast blob is fetched.
	BroadcastFetch Site = "broadcast-fetch"
	// SpillWrite fires when an operator opens a spill file for writing.
	SpillWrite Site = "spill-write"
	// SpillRead fires when a spilled run/partition is read back.
	SpillRead Site = "spill-read"
	// TaskStart fires in the scheduler immediately before a task attempt
	// runs.
	TaskStart Site = "task-start"
	// MemReserve fires in the root memory manager's Reserve path.
	MemReserve Site = "mem-reserve"
)

// Sites returns the full failpoint catalog.
func Sites() []Site {
	return []Site{ShuffleWrite, ShuffleRead, BroadcastFetch, SpillWrite, SpillRead, TaskStart, MemReserve}
}

// Error is the error injected by an armed failpoint (or wrapped around a
// transient OS error by ClassifyIO). Transient errors are classified as
// retryable by sched.IsRetryable; permanent ones fail the query.
type Error struct {
	Site      Site
	Transient bool
	Err       error
}

func (e *Error) Error() string {
	kind := "permanent"
	if e.Transient {
		kind = "transient"
	}
	return fmt.Sprintf("fault: injected %s failure at %s: %v", kind, e.Site, e.Err)
}

func (e *Error) Unwrap() error { return e.Err }

// ErrInjected is the default underlying error for injected failures.
var ErrInjected = errors.New("injected fault")

// Policy describes when and how one site misbehaves. The zero value never
// fires. Failure triggers (FailN / Prob) and latency triggers (LatencyN /
// LatencyProb) are evaluated independently, so one policy can both delay and
// occasionally fail a site.
type Policy struct {
	// FailN > 0: the first FailN hits fail deterministically.
	FailN int
	// Prob in (0,1]: after the FailN window, each hit fails with this
	// probability (per-site seeded RNG).
	Prob float64
	// Permanent marks injected failures non-retryable. Default false:
	// injected failures are transient, mirroring the paper's "service
	// retries failed tasks" model.
	Permanent bool
	// Err overrides the injected error cause (defaults to ErrInjected).
	Err error
	// Latency is injected (honoring ctx cancellation) before the failure
	// decision. LatencyN > 0 limits latency to the first LatencyN hits;
	// LatencyProb in (0,1] applies it probabilistically. If both are zero
	// and Latency > 0, every hit is delayed.
	Latency     time.Duration
	LatencyN    int
	LatencyProb float64
}

type siteState struct {
	mu     sync.Mutex
	policy Policy
	rng    *rand.Rand
	hits   int // total Hit evaluations at this site
	fires  atomic.Int64
}

// Registry is an armed set of failpoint policies with deterministic,
// seed-derived randomness. A Registry is inert until passed to Activate.
type Registry struct {
	seed  int64
	sites map[Site]*siteState
	// counters mirrors fires into obs, when instrumented.
	counters map[Site]*obs.Counter
}

// NewRegistry returns a registry whose per-site RNG streams derive from
// seed, so two registries with the same seed and policies inject the same
// fault sequence.
func NewRegistry(seed int64) *Registry {
	r := &Registry{seed: seed, sites: make(map[Site]*siteState)}
	for _, s := range Sites() {
		r.sites[s] = &siteState{rng: rand.New(rand.NewSource(seed ^ int64(siteHash(s))))}
	}
	return r
}

func siteHash(s Site) uint64 {
	// FNV-1a; stable across runs, only used to decorrelate per-site streams.
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Arm installs (replaces) the policy for one site.
func (r *Registry) Arm(site Site, p Policy) {
	st := r.sites[site]
	if st == nil {
		panic(fmt.Sprintf("fault: unknown site %q", site))
	}
	st.mu.Lock()
	st.policy = p
	st.mu.Unlock()
}

// ArmAll installs the same policy at every site.
func (r *Registry) ArmAll(p Policy) {
	for _, s := range Sites() {
		r.Arm(s, p)
	}
}

// Instrument mirrors per-site fire counts into the obs registry as
// photon_failpoint_fires_total{site="..."}.
func (r *Registry) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	r.counters = make(map[Site]*obs.Counter)
	for _, s := range Sites() {
		r.counters[s] = reg.Counter(
			fmt.Sprintf("photon_failpoint_fires_total{site=%q}", string(s)),
			"Injected failpoint fires by site.")
	}
}

// Fires returns how many times the site has actually injected a fault
// (failure or latency) since the registry was created.
func (r *Registry) Fires(site Site) int64 {
	st := r.sites[site]
	if st == nil {
		return 0
	}
	return st.fires.Load()
}

// TotalFires sums fires across all sites.
func (r *Registry) TotalFires() int64 {
	var n int64
	for _, s := range Sites() {
		n += r.Fires(s)
	}
	return n
}

// Seed returns the seed the registry was created with.
func (r *Registry) Seed() int64 { return r.seed }

// hit evaluates the site's policy. It returns (delay, err) where delay > 0
// asks the caller to sleep (ctx-aware) before returning err (possibly nil).
func (r *Registry) hit(site Site) (time.Duration, error) {
	st := r.sites[site]
	if st == nil {
		return 0, nil
	}
	st.mu.Lock()
	p := st.policy
	st.hits++
	n := st.hits
	var delay time.Duration
	if p.Latency > 0 {
		switch {
		case p.LatencyN > 0:
			if n <= p.LatencyN {
				delay = p.Latency
			}
		case p.LatencyProb > 0:
			if st.rng.Float64() < p.LatencyProb {
				delay = p.Latency
			}
		default:
			delay = p.Latency
		}
	}
	fail := false
	if p.FailN > 0 && n <= p.FailN {
		fail = true
	} else if p.Prob > 0 && st.rng.Float64() < p.Prob {
		fail = true
	}
	st.mu.Unlock()
	var err error
	if fail {
		cause := p.Err
		if cause == nil {
			cause = ErrInjected
		}
		err = &Error{Site: site, Transient: !p.Permanent, Err: cause}
	}
	if fail || delay > 0 {
		st.fires.Add(1)
		if c := r.counters[site]; c != nil {
			c.Inc()
		}
	}
	return delay, err
}

// active is the process-wide armed registry. nil (the common case) means
// every failpoint is disarmed and Hit is a single atomic load.
var active atomic.Pointer[Registry]

// Activate arms r process-wide and returns a function restoring the previous
// state. Typical test usage: defer fault.Activate(r)().
func Activate(r *Registry) func() {
	prev := active.Swap(r)
	return func() { active.Store(prev) }
}

// Deactivate disarms all failpoints.
func Deactivate() { active.Store(nil) }

// Active returns the currently armed registry, or nil.
func Active() *Registry { return active.Load() }

// Hit evaluates the failpoint at site. Disarmed cost is one atomic load.
// An armed site may inject latency (ctx-aware: cancellation cuts the sleep
// short and returns the ctx cause) and/or return an injected *Error.
func Hit(ctx context.Context, site Site) error {
	r := active.Load()
	if r == nil {
		return nil
	}
	return r.slowHit(ctx, site)
}

//go:noinline
func (r *Registry) slowHit(ctx context.Context, site Site) error {
	delay, err := r.hit(site)
	if delay > 0 {
		t := time.NewTimer(delay)
		if ctx == nil {
			<-t.C
		} else {
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return context.Cause(ctx)
			}
		}
	}
	return err
}

// ClassifyIO wraps transient OS-level I/O errors (interrupted syscalls,
// EAGAIN, pipes/files closed underneath a cancelled task) in a transient
// *Error at the given site so sched.IsRetryable treats them as retryable
// instead of failing the query. Non-transient errors pass through unchanged.
func ClassifyIO(site Site, err error) error {
	if err == nil {
		return nil
	}
	var fe *Error
	if errors.As(err, &fe) {
		return err // already classified
	}
	if errors.Is(err, syscall.EINTR) || errors.Is(err, syscall.EAGAIN) ||
		errors.Is(err, syscall.EPIPE) || errors.Is(err, os.ErrClosed) {
		return &Error{Site: site, Transient: true, Err: err}
	}
	return err
}
