package mem

import (
	"errors"
	"testing"
)

// TestChildForwardsToParent: child reservations are visible in the parent's
// total under the query identity, and releases flow back.
func TestChildForwardsToParent(t *testing.T) {
	root := NewManager(1000)
	q := root.Child("q1")
	c := &spillRec{name: "op", mgr: q}
	if err := q.Reserve(c, 400); err != nil {
		t.Fatal(err)
	}
	if root.Used() != 400 {
		t.Errorf("parent used = %d, want 400", root.Used())
	}
	if q.Used() != 400 {
		t.Errorf("child used = %d, want 400", q.Used())
	}
	q.Release(c, 150)
	if root.Used() != 250 || q.Used() != 250 {
		t.Errorf("after release: parent=%d child=%d, want 250/250", root.Used(), q.Used())
	}
	q.ReleaseAll(c)
	if root.Used() != 0 || q.Used() != 0 {
		t.Errorf("after releaseAll: parent=%d child=%d", root.Used(), q.Used())
	}
}

// TestChildSpillsOwnConsumersFirst: when a query's reservation pushes past
// the limit, its own consumers spill before a sibling query's.
func TestChildSpillsOwnConsumersFirst(t *testing.T) {
	root := NewManager(1000)
	q1 := root.Child("q1")
	q2 := root.Child("q2")

	other := &spillRec{name: "otherOp", freed: 1 << 40, mgr: q1}
	if err := q1.Reserve(other, 300); err != nil {
		t.Fatal(err)
	}
	mine := &spillRec{name: "myOp", freed: 1 << 40, mgr: q2}
	if err := q2.Reserve(mine, 600); err != nil {
		t.Fatal(err)
	}
	// q2 needs 200 more; without isolation the old policy would spill q1
	// (smallest sufficient = 300). With per-query isolation q2 spills its
	// own operator.
	extra := &spillRec{name: "myOp2", mgr: q2}
	if err := q2.Reserve(extra, 300); err != nil {
		t.Fatal(err)
	}
	if other.calls != 0 {
		t.Errorf("sibling query spilled (calls=%d); own consumers should spill first", other.calls)
	}
	if mine.calls == 0 {
		t.Error("own consumer never spilled")
	}
}

// TestChildRecursiveSpillOfSibling: when the pressuring query cannot free
// enough itself, a sibling query is spilled recursively.
func TestChildRecursiveSpillOfSibling(t *testing.T) {
	root := NewManager(1000)
	q1 := root.Child("q1")
	q2 := root.Child("q2")

	big := &spillRec{name: "bigOp", freed: 1 << 40, mgr: q1}
	if err := q1.Reserve(big, 900); err != nil {
		t.Fatal(err)
	}
	// q2 holds nothing, needs 500: only q1 can yield it.
	c := &spillRec{name: "newOp", mgr: q2}
	if err := q2.Reserve(c, 500); err != nil {
		t.Fatal(err)
	}
	if big.calls == 0 {
		t.Error("sibling was not recursively spilled")
	}
	if root.Used() > 1000 {
		t.Errorf("limit exceeded: %d", root.Used())
	}
}

// TestChildCloseReleasesWholeQuota: a dying query's entire reservation
// returns to the parent in one step, even with multiple live consumers.
func TestChildCloseReleasesWholeQuota(t *testing.T) {
	root := NewManager(1000)
	q := root.Child("q")
	a := &spillRec{name: "a", mgr: q}
	b := &spillRec{name: "b", mgr: q}
	_ = q.Reserve(a, 200)
	_ = q.Reserve(b, 300)
	if root.Used() != 500 {
		t.Fatalf("parent used = %d", root.Used())
	}
	q.Close()
	if root.Used() != 0 {
		t.Errorf("quota leaked after Close: parent used = %d", root.Used())
	}
	if q.Used() != 0 {
		t.Errorf("child used = %d after Close", q.Used())
	}
}

// TestChildPeakBytes tracks the per-query high-water mark.
func TestChildPeakBytes(t *testing.T) {
	root := NewManager(0)
	q := root.Child("q")
	c := &spillRec{name: "c", mgr: q}
	_ = q.Reserve(c, 700)
	q.Release(c, 600)
	_ = q.Reserve(c, 100)
	if q.PeakBytes() != 700 {
		t.Errorf("peak = %d, want 700", q.PeakBytes())
	}
}

// TestChildOOMSurfaces: an unsatisfiable child reservation reports OOM.
func TestChildOOMSurfaces(t *testing.T) {
	root := NewManager(100)
	q := root.Child("q")
	c := &spillRec{name: "c", mgr: q} // cannot free anything
	if err := q.Reserve(c, 50); err != nil {
		t.Fatal(err)
	}
	err := q.Reserve(c, 100)
	var oom *OOMError
	if !errors.As(err, &oom) {
		t.Fatalf("err = %v, want OOMError", err)
	}
}

// TestAvailable resolves at the root for child scopes.
func TestAvailable(t *testing.T) {
	root := NewManager(1000)
	q := root.Child("q")
	c := &spillRec{name: "c", mgr: q}
	_ = q.Reserve(c, 400)
	if got := q.Available(); got != 600 {
		t.Errorf("child available = %d, want 600", got)
	}
	if got := root.Available(); got != 600 {
		t.Errorf("root available = %d, want 600", got)
	}
}
