package mem

import (
	"testing"

	"photon/internal/types"
)

func TestArenaAllocAndReset(t *testing.T) {
	a := NewArena(64)
	b1 := a.Alloc(10)
	if len(b1) != 10 {
		t.Fatalf("alloc len = %d", len(b1))
	}
	b2 := a.Copy([]byte("hello"))
	if string(b2) != "hello" {
		t.Fatalf("copy = %q", b2)
	}
	if a.Used() != 15 {
		t.Errorf("used = %d", a.Used())
	}
	// Oversized allocation gets its own chunk.
	big := a.Alloc(1000)
	if len(big) != 1000 {
		t.Fatal("big alloc failed")
	}
	if a.Footprint() < 1000 {
		t.Error("footprint should include big chunk")
	}
	a.Reset()
	if a.Used() != 0 {
		t.Error("reset did not clear used")
	}
	// After reset, allocations still work and reuse the retained chunk.
	b3 := a.Alloc(8)
	if len(b3) != 8 {
		t.Fatal("post-reset alloc failed")
	}
}

func TestArenaSliceIsolation(t *testing.T) {
	a := NewArena(0)
	x := a.Alloc(4)
	y := a.Alloc(4)
	copy(x, "aaaa")
	copy(y, "bbbb")
	if string(x) != "aaaa" {
		t.Error("adjacent allocations overlap")
	}
	// Appending to x must not clobber y (three-index slice).
	x = append(x, 'z')
	if string(y) != "bbbb" {
		t.Error("append to earlier allocation clobbered later one")
	}
}

func TestBatchPoolMRU(t *testing.T) {
	p := NewBatchPool(16)
	s := types.NewSchema(types.Field{Name: "x", Type: types.Int64Type})
	b1 := p.Get(s)
	b2 := p.Get(s)
	if p.Misses != 2 {
		t.Errorf("misses = %d", p.Misses)
	}
	p.Put(b1)
	p.Put(b2)
	// MRU: most recently returned comes back first.
	got := p.Get(s)
	if got != b2 {
		t.Error("pool is not MRU")
	}
	if p.Hits != 1 {
		t.Errorf("hits = %d", p.Hits)
	}
	// Reused batch is reset.
	if got.NumRows != 0 || got.Sel != nil {
		t.Error("reused batch not reset")
	}
}

func TestBatchPoolDisabled(t *testing.T) {
	p := NewBatchPool(16)
	p.Disabled = true
	s := types.NewSchema(types.Field{Name: "x", Type: types.Int64Type})
	b := p.Get(s)
	p.Put(b)
	if got := p.Get(s); got == b {
		t.Error("disabled pool returned cached batch")
	}
}

type spillRec struct {
	name  string
	freed int64
	mgr   *Manager
	calls int
}

func (s *spillRec) Name() string { return s.name }
func (s *spillRec) Spill(n int64) (int64, error) {
	s.calls++
	f := min(s.freed, s.mgr.UsedBy(s))
	s.mgr.Release(s, f)
	return f, nil
}

func TestManagerReserveRelease(t *testing.T) {
	m := NewManager(1000)
	c := &spillRec{name: "a", mgr: m}
	if err := m.Reserve(c, 600); err != nil {
		t.Fatal(err)
	}
	if m.Used() != 600 {
		t.Errorf("used = %d", m.Used())
	}
	m.Release(c, 100)
	if m.Used() != 500 {
		t.Errorf("used after release = %d", m.Used())
	}
	m.ReleaseAll(c)
	if m.Used() != 0 {
		t.Errorf("used after releaseAll = %d", m.Used())
	}
}

func TestSpillPolicyPicksSmallestSufficient(t *testing.T) {
	m := NewManager(1000)
	small := &spillRec{name: "small", freed: 1 << 40, mgr: m}
	big := &spillRec{name: "big", freed: 1 << 40, mgr: m}
	if err := m.Reserve(small, 300); err != nil {
		t.Fatal(err)
	}
	if err := m.Reserve(big, 600); err != nil {
		t.Fatal(err)
	}
	// Need 200 more; policy spills the *smallest* consumer holding >= 200,
	// which is `small` (300), not `big` (600).
	newC := &spillRec{name: "new", mgr: m}
	if err := m.Reserve(newC, 300); err != nil {
		t.Fatal(err)
	}
	if small.calls != 1 {
		t.Errorf("small.calls = %d, want 1", small.calls)
	}
	if big.calls != 0 {
		t.Errorf("big.calls = %d, want 0", big.calls)
	}
	if m.SpillCount != 1 {
		t.Errorf("SpillCount = %d", m.SpillCount)
	}
}

func TestSpillFallsBackToLargest(t *testing.T) {
	m := NewManager(1000)
	a := &spillRec{name: "a", freed: 1 << 40, mgr: m}
	b := &spillRec{name: "b", freed: 1 << 40, mgr: m}
	_ = m.Reserve(a, 300)
	_ = m.Reserve(b, 400)
	// Need 700: no single consumer holds 700, so spill the largest (b),
	// then the remaining shortfall comes from a.
	c := &spillRec{name: "c", mgr: m}
	if err := m.Reserve(c, 1000); err != nil {
		t.Fatal(err)
	}
	if b.calls == 0 {
		t.Error("largest consumer was not spilled")
	}
}

func TestOOMWhenNothingToSpill(t *testing.T) {
	m := NewManager(100)
	c := &spillRec{name: "c", mgr: m} // freed = 0: cannot spill
	if err := m.Reserve(c, 50); err != nil {
		t.Fatal(err)
	}
	err := m.Reserve(c, 100)
	if err == nil {
		t.Fatal("expected OOM")
	}
	if _, ok := err.(*OOMError); !ok {
		t.Errorf("error type = %T", err)
	}
}

func TestRecursiveSpillSelfVictim(t *testing.T) {
	// A consumer's own reservation can be the spill victim ("self-spill").
	m := NewManager(100)
	c := &spillRec{name: "c", freed: 1 << 40, mgr: m}
	if err := m.Reserve(c, 90); err != nil {
		t.Fatal(err)
	}
	if err := m.Reserve(c, 90); err != nil {
		t.Fatal(err)
	}
	if c.calls != 1 {
		t.Errorf("self-spill calls = %d", c.calls)
	}
}

func TestFuncConsumer(t *testing.T) {
	called := int64(0)
	f := &FuncConsumer{ConsumerName: "fn", SpillFunc: func(n int64) (int64, error) {
		called = n
		return n, nil
	}}
	if f.Name() != "fn" {
		t.Error("name")
	}
	freed, err := f.Spill(42)
	if err != nil || freed != 42 || called != 42 {
		t.Error("spill func not wired")
	}
	empty := &FuncConsumer{ConsumerName: "e"}
	if freed, _ := empty.Spill(10); freed != 0 {
		t.Error("nil spill func should free 0")
	}
}

func TestUnlimitedManager(t *testing.T) {
	m := NewManager(0)
	c := &spillRec{name: "c", mgr: m}
	if err := m.Reserve(c, 1<<50); err != nil {
		t.Fatal("unlimited manager refused reservation:", err)
	}
}
