package mem

import (
	"photon/internal/types"
	"photon/internal/vector"
)

// BatchPool caches transient column batches with a most-recently-used
// mechanism (§4.5): Put pushes onto a per-schema stack and Get pops the most
// recent batch, keeping hot memory in use for the fixed allocation pattern a
// query repeats per input batch.
//
// The pool is not safe for concurrent use; each task owns one pool, matching
// Photon's single-threaded task model.
type BatchPool struct {
	stacks map[*types.Schema][]*vector.Batch

	// views caches vector-less batch headers for operators whose output
	// vectors are expression results or zero-copy column references
	// (ProjectOp, fused pipelines): the header recycles, the vectors do not.
	// Headers are schema-agnostic while pooled, so any released header
	// satisfies any GetView.
	views []*vector.Batch

	// Stats for the buffer-pool ablation bench.
	Hits      int64
	Misses    int64
	batchSize int

	// Disabled bypasses caching entirely (allocation-churn ablation).
	Disabled bool
}

// NewBatchPool returns a pool producing batches with the given row capacity
// (0 = vector.DefaultBatchSize).
func NewBatchPool(batchSize int) *BatchPool {
	if batchSize <= 0 {
		batchSize = vector.DefaultBatchSize
	}
	return &BatchPool{stacks: make(map[*types.Schema][]*vector.Batch), batchSize: batchSize}
}

// BatchSize returns the row capacity of batches produced by this pool.
func (p *BatchPool) BatchSize() int { return p.batchSize }

// Get returns a reset batch for the schema, reusing the most recently
// returned one when available.
func (p *BatchPool) Get(schema *types.Schema) *vector.Batch {
	if !p.Disabled {
		if s := p.stacks[schema]; len(s) > 0 {
			b := s[len(s)-1]
			p.stacks[schema] = s[:len(s)-1]
			b.Reset()
			p.Hits++
			return b
		}
	}
	p.Misses++
	return vector.NewBatch(schema, p.batchSize)
}

// Put returns a batch to the pool. The caller must not touch it afterwards.
func (p *BatchPool) Put(b *vector.Batch) {
	if p.Disabled || b == nil {
		return
	}
	p.stacks[b.Schema] = append(p.stacks[b.Schema], b)
}

// GetView returns a batch header with ncols empty vector slots and the
// pool's row capacity, reusing a released header when available.
func (p *BatchPool) GetView(schema *types.Schema, ncols int) *vector.Batch {
	if !p.Disabled && len(p.views) > 0 {
		b := p.views[len(p.views)-1]
		p.views = p.views[:len(p.views)-1]
		b.Schema = schema
		if cap(b.Vecs) < ncols {
			b.Vecs = make([]*vector.Vector, ncols)
		} else {
			b.Vecs = b.Vecs[:ncols]
			for i := range b.Vecs {
				b.Vecs[i] = nil
			}
		}
		b.SetCapacity(p.batchSize)
		p.Hits++
		return b
	}
	p.Misses++
	b := vector.WrapBatch(schema, make([]*vector.Vector, ncols), nil, 0)
	b.SetCapacity(p.batchSize)
	return b
}

// PutView returns a header obtained from GetView. The caller must have
// released or disowned the vectors; the pool retains only the header.
func (p *BatchPool) PutView(b *vector.Batch) {
	if p.Disabled || b == nil {
		return
	}
	for i := range b.Vecs {
		b.Vecs[i] = nil
	}
	b.Sel = nil
	b.NumRows = 0
	p.views = append(p.views, b)
}
