// Package mem implements Photon's three-tier memory management (§4.5, §5.3):
//
//   - an MRU buffer pool caching transient column batches so the fixed
//     per-input-batch allocation pattern of a query reuses hot memory;
//   - an append-only arena for variable-length data (string payloads) that
//     is freed wholesale before each new input batch;
//   - a unified memory Manager that separates reservations from allocations
//     and implements Spark's spill policy, so operators (and the baseline
//     engine) share one consistent view of memory and can spill on behalf of
//     one another ("recursive spill").
package mem

// Arena is an append-only variable-length allocator. All memory is released
// at once by Reset, which the engine calls before processing each new input
// batch. Allocations are tracked so the engine could shrink batch sizes when
// large strings appear (§4.5).
type Arena struct {
	chunks    [][]byte
	cur       []byte
	off       int
	chunkSize int
	used      int64
}

// DefaultArenaChunk is the granularity of arena growth.
const DefaultArenaChunk = 64 << 10

// NewArena returns an arena that grows in chunkSize steps (0 = default).
func NewArena(chunkSize int) *Arena {
	if chunkSize <= 0 {
		chunkSize = DefaultArenaChunk
	}
	return &Arena{chunkSize: chunkSize}
}

// Alloc returns an n-byte slice valid until the next Reset.
func (a *Arena) Alloc(n int) []byte {
	if n == 0 {
		return nil
	}
	if a.off+n > len(a.cur) {
		size := a.chunkSize
		if n > size {
			size = n
		}
		a.cur = make([]byte, size)
		a.chunks = append(a.chunks, a.cur)
		a.off = 0
	}
	out := a.cur[a.off : a.off+n : a.off+n]
	a.off += n
	a.used += int64(n)
	return out
}

// Copy allocates and fills a copy of src.
func (a *Arena) Copy(src []byte) []byte {
	dst := a.Alloc(len(src))
	copy(dst, src)
	return dst
}

// Used returns bytes handed out since the last Reset.
func (a *Arena) Used() int64 { return a.used }

// Footprint returns total bytes held by the arena's chunks.
func (a *Arena) Footprint() int64 {
	var n int64
	for _, c := range a.chunks {
		n += int64(len(c))
	}
	return n
}

// Reset releases all allocations at once, retaining the most recent chunk
// for reuse (keeping hot memory in use across batches).
func (a *Arena) Reset() {
	if len(a.chunks) > 0 {
		last := a.chunks[len(a.chunks)-1]
		a.chunks = a.chunks[:1]
		a.chunks[0] = last
		a.cur = last
	}
	a.off = 0
	a.used = 0
}
