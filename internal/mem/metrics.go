package mem

import "photon/internal/obs"

// Metrics is the unified memory manager's observability bundle (§5.3):
// reservation traffic, spill activity, OOM rejections, and the distribution
// of per-query memory peaks. Attach with Instrument on the *root* manager;
// child (per-query) scopes report through their parent, so one bundle covers
// the whole process.
type Metrics struct {
	ReserveCalls *obs.Counter
	Spills       *obs.Counter
	SpilledBytes *obs.Counter
	OOMs         *obs.Counter
	// QueryPeakBytes observes each query scope's reservation high-water
	// mark when the scope closes.
	QueryPeakBytes *obs.Histogram
}

// NewMetrics resolves the memory metric handles on r (get-or-create).
// A nil registry returns nil; all uses are nil-guarded.
func NewMetrics(r *obs.Registry) *Metrics {
	if r == nil {
		return nil
	}
	return &Metrics{
		ReserveCalls: r.Counter("photon_mem_reserve_calls_total",
			"Reservation requests against the unified memory manager"),
		Spills: r.Counter("photon_mem_spills_total",
			"Spill victim invocations under memory pressure"),
		SpilledBytes: r.Counter("photon_mem_spilled_bytes_total",
			"Bytes freed by spilling consumers to disk"),
		OOMs: r.Counter("photon_mem_oom_total",
			"Reservations failed after spilling every eligible consumer"),
		QueryPeakBytes: r.Histogram("photon_mem_query_peak_bytes",
			"Per-query reservation high-water marks at query close"),
	}
}

// Instrument attaches a metrics bundle resolved on r to the root manager and
// registers occupancy gauges sampled at scrape time. Call once, before
// concurrent use; child scopes created later report through this bundle.
func (m *Manager) Instrument(r *obs.Registry) *Metrics {
	if r == nil {
		return nil
	}
	if m.parent != nil {
		panic("mem: Instrument must be called on the root manager")
	}
	met := NewMetrics(r)
	r.GaugeFunc("photon_mem_limit_bytes",
		"Configured unified memory limit",
		func() int64 { return m.Limit() })
	r.GaugeFunc("photon_mem_reserved_bytes",
		"Bytes currently reserved across all consumers",
		func() int64 { return m.Used() })
	r.GaugeFunc("photon_mem_peak_bytes",
		"Process-wide reservation high-water mark",
		func() int64 { return m.PeakBytes() })
	m.mu.Lock()
	m.metrics = met
	m.mu.Unlock()
	return met
}

// rootMetrics resolves the metrics bundle at the root of the scope chain
// (nil when uninstrumented). Callers must not hold m.mu.
func (m *Manager) rootMetrics() *Metrics {
	root := m
	if m.parent != nil {
		root = m.parent
	}
	root.mu.Lock()
	defer root.mu.Unlock()
	return root.metrics
}
