package mem

import "fmt"

// Per-query memory isolation (§5.3 in a multi-tenant service): each query
// gets a *child* Manager scoped under the session's Manager. Operators keep
// using the familiar Reserve/Release/ReleaseAll API against the child; the
// child forwards every byte to the parent under a single consumer identity,
// so:
//
//   - one query's pressure spills its *own* consumers first (the parent's
//     victim policy prefers the requesting query when it holds enough);
//   - a sibling query can still be chosen as a recursive-spill victim when
//     the pressuring query cannot free enough on its own;
//   - a query's death releases its whole quota atomically (Close), so no
//     partial reservations leak past query lifetime.

// childConsumer is the query's single identity on the parent manager.
type childConsumer struct {
	child *Manager
	name  string
}

// Name implements Consumer.
func (c *childConsumer) Name() string { return c.name }

// Spill implements Consumer: the parent asks the query to free n bytes, and
// the query spills among its own operators using the standard victim policy.
func (c *childConsumer) Spill(n int64) (int64, error) { return c.child.spillOwn(n) }

// Child creates a per-query memory scope under m. The returned Manager is
// used exactly like a root manager by operators; call Close when the query
// ends to release any remaining quota atomically.
func (m *Manager) Child(name string) *Manager {
	if m.parent != nil {
		panic("mem: nested query scopes are not supported")
	}
	c := &Manager{
		limit:    m.limit,
		reserved: make(map[Consumer]int64),
		parent:   m,
	}
	c.self = &childConsumer{child: c, name: "query:" + name}
	return c
}

// Close releases the query's entire remaining reservation back to the
// parent in one step (a query's death frees its whole quota atomically) and
// reports the query's memory peak to the root metrics bundle.
// No-op on root managers.
func (m *Manager) Close() {
	if m.parent == nil {
		return
	}
	m.mu.Lock()
	total := m.total
	peak := m.peak
	m.total = 0
	m.reserved = make(map[Consumer]int64)
	m.mu.Unlock()
	if total > 0 {
		m.parent.Release(m.self, total)
	}
	if met := m.rootMetrics(); met != nil {
		met.QueryPeakBytes.Observe(peak)
	}
}

// PeakBytes reports the manager's reservation high-water mark.
func (m *Manager) PeakBytes() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.peak
}

// Available reports the bytes still reservable under the limit (resolved at
// the root for query scopes). A point-in-time value: concurrent queries may
// reserve or spill at any moment.
func (m *Manager) Available() int64 {
	if m.parent != nil {
		return m.parent.Available()
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.limit - m.total
}

// SetSoftLimit installs a degraded memory grant on a query scope: once the
// scope's reservation would exceed n bytes, further reservations first ask
// the scope's own consumers to spill the overage (spill-first execution)
// before growing. The limit is advisory — if the scope's consumers cannot
// free enough, the reservation still proceeds against the shared limit —
// so degradation shrinks a query's footprint without ever failing it.
// n <= 0 clears the limit. No-op on root managers.
func (m *Manager) SetSoftLimit(n int64) {
	if m.parent != nil {
		m.soft.Store(n)
	}
}

// SoftLimit reports the scope's degraded grant (0 = none).
func (m *Manager) SoftLimit() int64 { return m.soft.Load() }

// reserveChild is the child-manager Reserve path: spill own consumers
// down toward the soft limit when one is set (graceful degradation), then
// acquire from the parent under the query's identity and record locally.
func (m *Manager) reserveChild(c Consumer, n int64) error {
	if soft := m.soft.Load(); soft > 0 {
		m.mu.Lock()
		over := m.total + n - soft
		m.mu.Unlock()
		if over > 0 {
			// Best effort: a failed or short spill never fails the
			// reservation; the shared limit below remains the backstop.
			_, _ = m.spillOwn(over)
		}
	}
	if err := m.parent.Reserve(m.self, n); err != nil {
		return fmt.Errorf("mem: query %s: %w", m.self.Name(), err)
	}
	m.mu.Lock()
	m.reserved[c] += n
	m.total += n
	if m.total > m.peak {
		m.peak = m.total
	}
	m.mu.Unlock()
	return nil
}

// spillOwn frees at least `need` bytes by spilling the query's own
// consumers, preferring the standard victim policy (smallest sufficient,
// else largest). Called by the parent when this query is the victim —
// either under its own pressure (own-first isolation) or a sibling's
// (recursive spill).
func (m *Manager) spillOwn(need int64) (int64, error) {
	var freed int64
	for freed < need {
		m.mu.Lock()
		victim := m.pickVictimLocked(nil, need-freed)
		m.mu.Unlock()
		if victim == nil {
			break
		}
		f, err := victim.Spill(need - freed)
		if err != nil {
			return freed, err
		}
		if f <= 0 {
			break
		}
		freed += f
		m.mu.Lock()
		m.SpillCount++
		m.SpilledBytes += f
		m.mu.Unlock()
		// Root-path spills are mirrored inside Reserve; child-scope spills
		// happen here, so mirror them to the root bundle explicitly.
		if met := m.rootMetrics(); met != nil {
			met.Spills.Inc()
			met.SpilledBytes.Add(f)
		}
	}
	return freed, nil
}
