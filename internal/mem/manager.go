package mem

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"photon/internal/fault"
)

// Consumer is a memory-consuming operator registered with the Manager.
// Spill asks the consumer to release at least n bytes (by writing state to
// disk); it returns the bytes actually freed. A consumer may be asked to
// spill on behalf of another consumer's reservation — the "recursive spill"
// of §5.3.
type Consumer interface {
	Name() string
	Spill(n int64) (int64, error)
}

// Manager is the unified memory manager shared by Photon operators, the
// baseline row engine, and user code, mirroring Spark's unified memory
// manager. It separates reservations from allocations: an operator first
// Reserves memory (which may force spilling somewhere in the system) and can
// then allocate up to its reservation without any further risk of spilling
// (§5.3's reserve phase / allocate phase split).
type Manager struct {
	mu       sync.Mutex
	limit    int64
	reserved map[Consumer]int64
	total    int64
	peak     int64

	// Per-query scoping (see query.go): a child manager forwards its
	// reservations to parent under the self identity.
	parent *Manager
	self   *childConsumer
	// soft, when > 0 on a child scope, is the query's degraded grant:
	// reservations pushing the scope past it spill the scope's own
	// consumers first instead of growing (see SetSoftLimit). Advisory —
	// it shrinks footprint under pressure but never fails a reservation.
	soft atomic.Int64

	// Metrics.
	SpillCount   int64
	SpilledBytes int64

	// metrics, when set via Instrument (root managers only), mirrors
	// reservation/spill/OOM activity into the obs registry.
	metrics *Metrics
}

// OOMError is returned when a reservation cannot be satisfied even after
// spilling every eligible consumer.
type OOMError struct {
	Requested int64
	Available int64
}

func (e *OOMError) Error() string {
	return fmt.Sprintf("mem: out of memory: requested %d bytes, %d available after spilling", e.Requested, e.Available)
}

// NewManager returns a manager enforcing the given byte limit
// (limit <= 0 means effectively unlimited).
func NewManager(limit int64) *Manager {
	if limit <= 0 {
		limit = 1 << 62
	}
	return &Manager{limit: limit, reserved: make(map[Consumer]int64)}
}

// Limit returns the configured memory limit in bytes.
func (m *Manager) Limit() int64 { return m.limit }

// Limited reports whether the manager enforces a real memory bound (an
// "unlimited" manager carries the 1<<62 sentinel limit). Spilling can only
// trigger under a real bound, which lets the small-query fast path skip
// spill-directory setup entirely for unlimited sessions.
func (m *Manager) Limited() bool { return m.limit < 1<<62 }

// Used returns the total reserved bytes.
func (m *Manager) Used() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.total
}

// UsedBy returns the bytes reserved by one consumer.
func (m *Manager) UsedBy(c Consumer) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.reserved[c]
}

// Reserve acquires n bytes for consumer c, spilling other consumers (or c
// itself) if needed. The spill victim selection follows open-source Spark's
// policy (§5.3): sort consumers from least to most allocated and spill the
// first that holds at least the missing bytes; if none does, spill the
// largest consumers until enough is freed. This minimizes the number of
// spills while avoiding spilling more data than necessary.
func (m *Manager) Reserve(c Consumer, n int64) error {
	if n < 0 {
		panic("mem: negative reservation")
	}
	if m.parent != nil {
		return m.reserveChild(c, n)
	}
	// Failpoint: the root reserve path (child scopes forward here, so one
	// logical reservation fires at most once). Injected transient failures
	// surface as retryable task errors.
	if err := fault.Hit(nil, fault.MemReserve); err != nil {
		return err
	}
	m.mu.Lock()
	met := m.metrics
	if met != nil {
		met.ReserveCalls.Inc()
	}
	for m.total+n > m.limit {
		need := m.total + n - m.limit
		victim := m.pickVictimLocked(c, need)
		if victim == nil {
			avail := m.limit - m.total
			m.mu.Unlock()
			if met != nil {
				met.OOMs.Inc()
			}
			return &OOMError{Requested: n, Available: avail}
		}
		// Release the lock during the spill: the victim will call Release
		// as it frees memory.
		m.mu.Unlock()
		freed, err := victim.Spill(need)
		if err != nil {
			return fmt.Errorf("mem: spill of %s failed: %w", victim.Name(), err)
		}
		m.mu.Lock()
		m.SpillCount++
		m.SpilledBytes += freed
		if met != nil {
			met.Spills.Inc()
			met.SpilledBytes.Add(freed)
		}
		if freed <= 0 {
			// The victim could not free anything; exclude it by treating
			// this as terminal if no progress is possible.
			if m.total+n > m.limit {
				avail := m.limit - m.total
				m.mu.Unlock()
				if met != nil {
					met.OOMs.Inc()
				}
				return &OOMError{Requested: n, Available: avail}
			}
		}
	}
	m.reserved[c] += n
	m.total += n
	if m.total > m.peak {
		m.peak = m.total
	}
	m.mu.Unlock()
	return nil
}

// pickVictimLocked chooses a spill victim for a reservation that is `need`
// bytes short. It prefers, among consumers sorted by ascending reservation,
// the first holding at least `need`; otherwise the largest consumer.
// Consumers with zero reservation are skipped. The requester itself is
// eligible ("self-spill" and recursive spill both occur in practice).
func (m *Manager) pickVictimLocked(requester Consumer, need int64) Consumer {
	type entry struct {
		c Consumer
		n int64
	}
	var entries []entry
	for c, n := range m.reserved {
		if n > 0 {
			entries = append(entries, entry{c, n})
		}
	}
	if len(entries) == 0 {
		return nil
	}
	// Per-query isolation: a query under its own memory pressure spills its
	// own consumers before touching sibling queries (query.go). The
	// preference applies only when the query holds enough to cover the
	// shortfall; otherwise the standard policy may pick a sibling
	// (recursive spill across queries, §5.3).
	if _, isQuery := requester.(*childConsumer); isQuery && m.reserved[requester] >= need {
		return requester
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].n != entries[j].n {
			return entries[i].n < entries[j].n
		}
		return entries[i].c.Name() < entries[j].c.Name()
	})
	for _, e := range entries {
		if e.n >= need {
			return e.c
		}
	}
	return entries[len(entries)-1].c
}

// Release returns n bytes of c's reservation to the manager.
func (m *Manager) Release(c Consumer, n int64) {
	m.mu.Lock()
	cur := m.reserved[c]
	if n > cur {
		n = cur
	}
	m.reserved[c] = cur - n
	if m.reserved[c] == 0 {
		delete(m.reserved, c)
	}
	m.total -= n
	parent, self := m.parent, m.self
	m.mu.Unlock()
	if parent != nil && n > 0 {
		parent.Release(self, n)
	}
}

// ReleaseAll returns c's entire reservation (called on operator close, tying
// operator state to query lifetime rather than a GC generation, §5.4).
func (m *Manager) ReleaseAll(c Consumer) {
	m.mu.Lock()
	n := m.reserved[c]
	m.total -= n
	delete(m.reserved, c)
	parent, self := m.parent, m.self
	m.mu.Unlock()
	if parent != nil && n > 0 {
		parent.Release(self, n)
	}
}

// FuncConsumer adapts a name and a spill function into a Consumer.
type FuncConsumer struct {
	ConsumerName string
	SpillFunc    func(n int64) (int64, error)
}

// Name implements Consumer.
func (f *FuncConsumer) Name() string { return f.ConsumerName }

// Spill implements Consumer.
func (f *FuncConsumer) Spill(n int64) (int64, error) {
	if f.SpillFunc == nil {
		return 0, nil
	}
	return f.SpillFunc(n)
}
