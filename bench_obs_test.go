package photon

// Serving-latency and flight-recorder benchmarks: the observability PR's
// acceptance numbers. BenchmarkServingLatency answers the ROADMAP item
// "p50/p99 measurement at 1k+ QPS mixed workloads" with a concurrent
// mixed-class workload; BenchmarkQueryRecorderOverhead is the guard that
// always-on recording stays under 1% of end-to-end wall time.

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sync"
	"testing"
	"time"

	"photon/internal/catalog"
	"photon/internal/tpch"
)

// servingLatencyResult is one latency distribution of
// BenchmarkServingLatency, persisted to BENCH_serving_latency.json.
// Client-side rows measure wall time at the caller; the engine_histogram
// row cross-checks them against the session's own base-4 log-scale
// photon_query_run_micros quantiles (the introspection surface measuring
// itself).
type servingLatencyResult struct {
	Class   string  `json:"class"`
	Source  string  `json:"source"` // client | engine_histogram
	Clients int     `json:"clients"`
	Ops     int     `json:"ops"`
	P50Ms   float64 `json:"p50_ms"`
	P95Ms   float64 `json:"p95_ms"`
	P99Ms   float64 `json:"p99_ms"`
}

// servingSession builds a TPC-H session that keeps the photon_* system
// tables registered (tables installed through the public API, not by
// swapping the catalog).
func servingSession(cfg Config, sf float64) *Session {
	sess := NewSession(cfg)
	cat := tpch.NewGen(sf).Generate()
	for _, name := range cat.Names() {
		t, _ := cat.Lookup(name)
		mt := t.(*catalog.MemTable)
		sess.RegisterBatches(name, mt.Sch, mt.Batches)
	}
	return sess
}

// BenchmarkServingLatency drives one session with 8 concurrent clients over
// a mixed workload — 70% prepared point lookups (plan-cache + fast-path
// serving traffic), 20% prepared two-table join lookups, 10% ad-hoc
// grouped aggregates — and reports per-class client-side p50/p95/p99
// alongside the engine's own run-latency histogram quantiles. Results land
// in BENCH_serving_latency.json.
func BenchmarkServingLatency(b *testing.B) {
	const clients = 8
	const opsPerClient = 120

	sess := servingSession(Config{Parallelism: 2}, 0.01)
	point, err := sess.Prepare("SELECT o_orderdate, o_totalprice FROM orders WHERE o_orderkey = ?")
	if err != nil {
		b.Fatal(err)
	}
	join, err := sess.Prepare("SELECT n_name, r_name FROM nation, region WHERE n_regionkey = r_regionkey AND n_nationkey = ?")
	if err != nil {
		b.Fatal(err)
	}
	aggQuery := func(i int) string {
		return fmt.Sprintf("SELECT o_orderpriority, count(*), max(o_totalprice) FROM orders WHERE o_orderkey < %d GROUP BY o_orderpriority", 2000+i%100)
	}
	// Warm the plan cache out of band so every measured op is serving-path.
	if _, err := point.Execute(context.Background(), 1); err != nil {
		b.Fatal(err)
	}
	if _, err := join.Execute(context.Background(), 1); err != nil {
		b.Fatal(err)
	}
	if _, err := sess.SQL(aggQuery(0)); err != nil {
		b.Fatal(err)
	}

	classes := []string{"point_lookup", "join_lookup", "group_agg"}
	perClass := map[string][]time.Duration{}
	var ops int
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		lat := make([][3][]time.Duration, clients) // per-client, no shared writes
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				ctx := context.Background()
				for i := 0; i < opsPerClient; i++ {
					var class int
					start := time.Now()
					switch (c + i*3) % 10 { // deterministic 70/20/10 mix
					case 0, 1, 2, 3, 4, 5, 6:
						class = 0
						if _, err := point.Execute(ctx, 1+(c*opsPerClient+i)*7%29999); err != nil {
							b.Error(err)
							return
						}
					case 7, 8:
						class = 1
						if _, err := join.Execute(ctx, (c+i)%25); err != nil {
							b.Error(err)
							return
						}
					default:
						class = 2
						if _, err := sess.SQL(aggQuery(c*opsPerClient + i)); err != nil {
							b.Error(err)
							return
						}
					}
					lat[c][class] = append(lat[c][class], time.Since(start))
				}
			}(c)
		}
		wg.Wait()
		for c := range lat {
			for cl, name := range classes {
				perClass[name] = append(perClass[name], lat[c][cl]...)
			}
		}
		ops += clients * opsPerClient
	}
	b.StopTimer()

	out := make([]servingLatencyResult, 0, len(classes)+2)
	var all []time.Duration
	for _, name := range classes {
		d := perClass[name]
		all = append(all, d...)
		sortDurations(d)
		res := servingLatencyResult{
			Class: name, Source: "client", Clients: clients, Ops: len(d),
			P50Ms: servingPercentile(d, 0.50),
			P95Ms: servingPercentile(d, 0.95),
			P99Ms: servingPercentile(d, 0.99),
		}
		b.ReportMetric(res.P50Ms, name+"_p50_ms")
		b.ReportMetric(res.P99Ms, name+"_p99_ms")
		out = append(out, res)
	}
	sortDurations(all)
	out = append(out, servingLatencyResult{
		Class: "all", Source: "client", Clients: clients, Ops: len(all),
		P50Ms: servingPercentile(all, 0.50),
		P95Ms: servingPercentile(all, 0.95),
		P99Ms: servingPercentile(all, 0.99),
	})
	// Engine-side cross-check: the session's own run-latency histogram.
	for _, m := range sess.Metrics().Export() {
		if m.Name == "photon_query_run_micros" {
			round := func(micros float64) float64 { return math.Round(micros) / 1000 }
			out = append(out, servingLatencyResult{
				Class: "all", Source: "engine_histogram", Clients: clients,
				Ops:   int(m.Count),
				P50Ms: round(m.P50), P95Ms: round(m.P95), P99Ms: round(m.P99),
			})
		}
	}
	b.ReportMetric(float64(ops)/b.Elapsed().Seconds(), "qps")

	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_serving_latency.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkQueryRecorderOverhead is the always-on guard: all 22 TPC-H
// queries through the full session lifecycle with the flight recorder on
// (default ring) vs off (QueryHistorySize -1), interleaved to cancel
// machine drift. The acceptance gate (EXPERIMENTS.md) is < 1% median
// overhead; recorder_overhead_pct reports the measured value.
func BenchmarkQueryRecorderOverhead(b *testing.B) {
	cat := tpch.NewGen(0.01).Generate()
	mk := func(history int) *Session {
		sess := NewSession(Config{QueryHistorySize: history})
		sess.cat = cat
		return sess
	}
	pass := func(sess *Session) time.Duration {
		start := time.Now()
		for _, q := range tpch.QueryNumbers() {
			if _, err := sess.SQL(tpch.Queries[q]); err != nil {
				b.Fatal(err)
			}
		}
		return time.Since(start)
	}
	on, off := mk(0), mk(-1)
	pass(on) // warm plan caches so measured passes are steady-state
	pass(off)

	var onWalls, offWalls []time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		onWalls = append(onWalls, pass(on))
		offWalls = append(offWalls, pass(off))
	}
	b.StopTimer()

	sortDurations(onWalls)
	sortDurations(offWalls)
	onMed := onWalls[len(onWalls)/2]
	offMed := offWalls[len(offWalls)/2]
	overhead := (float64(onMed) - float64(offMed)) / float64(offMed) * 100
	b.ReportMetric(float64(onMed.Microseconds())/1000, "on_median_ms")
	b.ReportMetric(float64(offMed.Microseconds())/1000, "off_median_ms")
	b.ReportMetric(overhead, "recorder_overhead_pct")
}
