package photon

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"photon/internal/fault"
	"photon/internal/sched"
	"photon/internal/tpch"
)

// TestOverloadSoak is the multi-tenant overload acceptance test: four
// tenants with mixed weights and quotas drive 32 concurrent clients
// through all 22 TPC-H queries against one session whose admission gate is
// far narrower than the offered load, with seeded mem-reserve and
// task-start failpoints armed, under -race. Every query must end in
// exactly one of {ok, rejected, timeout, cancelled} or fail with an
// injected fault error — nothing else. Successful queries must match the
// clean sequential baseline; a follow-up contention burst must show the
// weight-3 tenant out-earning its weight-1 peer in slot-seconds; and
// afterwards no memory reservations, shuffle files, or goroutines may
// remain.
func TestOverloadSoak(t *testing.T) {
	const sf = 0.002
	queries := tpch.QueryNumbers()
	baseGoroutines := runtime.NumGoroutine()

	// Clean sequential baseline, computed before any failpoint is armed.
	baseSess := tpchSession(sf, Config{})
	baseline := map[int][]string{}
	for _, q := range queries {
		res, err := baseSess.SQL(tpch.Queries[q])
		if err != nil {
			t.Fatalf("baseline Q%d: %v", q, err)
		}
		baseline[q] = renderSorted(res.Rows)
	}

	r := fault.NewRegistry(11)
	r.Arm(fault.MemReserve, fault.Policy{Prob: 0.002})
	r.Arm(fault.TaskStart, fault.Policy{
		Prob:        0.005,
		Latency:     2 * time.Millisecond,
		LatencyProb: 0.02,
	})
	defer fault.Activate(r)()

	dir := t.TempDir()
	// Parallelism 2: the slot pool, not admission, is the bottleneck, so
	// the weighted-fair dispatch policy is what sets tenant throughput.
	sess := tpchSession(sf, Config{
		Parallelism:    2,
		SpillDir:       dir,
		MemoryLimit:    64 << 20,
		MinQueryMemory: 1 << 20,
		// Admission wide open globally (tenant quotas still bind): a
		// narrow global FIFO gate would serialize tenants round-robin and
		// mask the pool's weighted-fair dispatch, which is what sets
		// tenant throughput here. The global concurrency cap and
		// queue-memory bound have their own unit tests
		// (TestAdmissionQueueAndReject, TestQueueMemoryBound).
		MaxConcurrentQueries: 0,
		AdmissionQueueMemory: 8 << 20,
		Tenants: map[string]TenantConfig{
			"gold":   {Weight: 3},
			"silver": {Weight: 1},
			"bronze": {Weight: 1, MaxConcurrent: 2, MaxQueued: 4},
			"batch":  {Weight: 1, MaxConcurrent: 1, MaxQueued: -1},
		},
	})
	// tpchSession swaps in a generated catalog; put the photon_* virtual
	// tables back so the post-soak introspection queries run.
	sess.registerSystemTables()
	r.Instrument(sess.Metrics())
	// Retry headroom for the armed transient failpoints on staged paths;
	// fast-path and single-task executions surface them instead, which the
	// classification below allows as injected.
	sess.slotPool().SetOptions(sched.PoolOptions{
		MaxAttempts:     8,
		RetryBackoff:    50 * time.Microsecond,
		RetryBackoffCap: time.Millisecond,
	})

	tenants := []string{"gold", "silver", "bronze", "batch"}
	// 8 clients per tenant: deep enough backlog at the 2-slot pool that
	// every tenant keeps waiters queued and the weighted shares express.
	const clientsPerTenant = 8
	var wg sync.WaitGroup
	var ok, rejected, timeout, cancelled, injected atomic.Int64
	for ti, tenant := range tenants {
		for c := 0; c < clientsPerTenant; c++ {
			tenant, client := tenant, ti*clientsPerTenant+c
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range queries {
					q := queries[(i+client)%len(queries)] // rotate start per client
					ctx := WithTenant(context.Background(), tenant)
					var cancel context.CancelFunc = func() {}
					switch {
					case (i+client)%8 == 7:
						// Pre-cancelled submission: must fast-fail as cancelled.
						ctx, cancel = context.WithCancel(ctx)
						cancel()
					case client%4 == 3:
						// Tight deadline under overload: timeout or shed.
						ctx, cancel = context.WithTimeout(ctx, 30*time.Millisecond)
					}
					res, stats, err := sess.SQLContextStats(ctx, tpch.Queries[q])
					cancel()
					if err == nil && stats.Tenant != tenant {
						t.Errorf("Q%d ran as tenant %q, want %q", q, stats.Tenant, tenant)
					}
					var fe *fault.Error
					switch {
					case err == nil:
						ok.Add(1)
						if got := renderSorted(res.Rows); !equalStrings(got, baseline[q]) {
							t.Errorf("%s Q%d diverged under overload: %d rows, want %d",
								tenant, q, len(got), len(baseline[q]))
						}
					case errors.Is(err, ErrQueryRejected):
						rejected.Add(1)
					case errors.Is(err, context.DeadlineExceeded):
						timeout.Add(1)
					case errors.Is(err, context.Canceled):
						cancelled.Add(1)
					case errors.As(err, &fe):
						// A seeded fault surfaced on a non-retried path.
						injected.Add(1)
					default:
						t.Errorf("%s Q%d: unexplained failure: %v", tenant, q, err)
					}
				}
			}()
		}
	}
	wg.Wait()

	total := ok.Load() + rejected.Load() + timeout.Load() + cancelled.Load() + injected.Load()
	want := int64(len(tenants) * clientsPerTenant * len(queries))
	if total != want {
		t.Errorf("classified %d outcomes, want %d", total, want)
	}
	if ok.Load() == 0 {
		t.Error("soak completed zero queries")
	}
	if cancelled.Load() == 0 {
		t.Error("pre-cancelled submissions produced no cancelled outcomes")
	}
	t.Logf("outcomes: ok=%d rejected=%d timeout=%d cancelled=%d injected=%d (faults fired: %d)",
		ok.Load(), rejected.Load(), timeout.Load(), cancelled.Load(), injected.Load(), r.TotalFires())

	// Storm-phase slot-seconds are demand-limited (closed-loop clients
	// spend most of each cycle off-pool, so the work-conserving pool
	// backfills idle share) — log them, but prove weighted fairness with
	// a dedicated burst where both tenants stay backlogged at the pool.
	for _, u := range sess.slotPool().TenantUsages() {
		t.Logf("storm pool tenant %s: weight=%d slot-seconds=%.3f", u.Name, u.Weight, u.SlotSeconds)
	}

	// Weighted fairness under sustained pool contention: gold (weight 3)
	// and silver (weight 1) hammer one query with enough goroutines that
	// both always have pool waiters; the slot-second deltas must favor
	// gold. The exact ±15% bound on the 3:1 ratio is asserted by the
	// sched-level property test (TestPoolWeightedFairness); end to end,
	// off-slot time (parse, fetch) dilutes the ratio, so assert a
	// conservative floor.
	before := map[string]float64{}
	for _, u := range sess.slotPool().TenantUsages() {
		before[u.Name] = u.SlotSeconds
	}
	burstStop := make(chan struct{})
	var burst sync.WaitGroup
	for _, tenant := range []string{"gold", "silver"} {
		for c := 0; c < 6; c++ {
			tenant := tenant
			burst.Add(1)
			go func() {
				defer burst.Done()
				ctx := WithTenant(context.Background(), tenant)
				for {
					select {
					case <-burstStop:
						return
					default:
					}
					var fe *fault.Error
					if _, err := sess.SQLContext(ctx, tpch.Queries[1]); err != nil && !errors.As(err, &fe) {
						t.Errorf("%s burst query: %v", tenant, err)
						return
					}
				}
			}()
		}
	}
	time.Sleep(3 * time.Second)
	close(burstStop)
	burst.Wait()
	var goldSec, silverSec float64
	for _, u := range sess.slotPool().TenantUsages() {
		switch u.Name {
		case "gold":
			goldSec = u.SlotSeconds - before[u.Name]
		case "silver":
			silverSec = u.SlotSeconds - before[u.Name]
		}
	}
	if silverSec <= 0 || goldSec/silverSec < 1.5 {
		t.Errorf("burst slot-seconds gold=%.3f silver=%.3f (ratio %.2f), want ratio >= 1.5 for weights 3:1",
			goldSec, silverSec, goldSec/silverSec)
	}
	t.Logf("burst slot-seconds: gold=%.3f silver=%.3f (ratio %.2f)", goldSec, silverSec, goldSec/silverSec)

	// The system tables stay queryable after the storm and carry tenant
	// identity end to end.
	res, err := sess.SQL("SELECT tenant, admitted, rejected, shed FROM photon_tenants")
	if err != nil {
		t.Fatalf("photon_tenants after soak: %v", err)
	}
	if len(res.Rows) < 4 {
		t.Errorf("photon_tenants rows = %d, want >= 4 (one per tenant)", len(res.Rows))
	}
	res, err = sess.SQL("SELECT tenant, count(*) FROM photon_queries GROUP BY tenant")
	if err != nil {
		t.Fatalf("photon_queries by tenant: %v", err)
	}
	seen := map[string]bool{}
	for _, row := range res.Rows {
		seen[fmt.Sprint(row[0])] = true
	}
	for _, tenant := range tenants {
		if !seen[tenant] {
			t.Errorf("photon_queries history has no rows for tenant %q", tenant)
		}
	}

	// Zero leaks: memory, shuffle/spill files, goroutines.
	if used := sess.mm.Used(); used != 0 {
		t.Errorf("leaked %d reserved bytes after soak", used)
	}
	assertNoShuffleFiles(t, dir)
	waitGoroutines(t, baseGoroutines)
}
